//! Durable state and crash recovery for the TD-AM deployment.
//!
//! A deployed FeFET associative memory is a *non-volatile* store: the
//! programmed thresholds survive power cycles, and so must the software
//! twin's picture of them — which rows were remapped to spares, which
//! columns are masked, how far the devices have aged. This module gives
//! the serving stack that durability, honestly modeling what happens
//! when persistence itself fails mid-write:
//!
//! - **Checkpoints** — [`DeploymentState`] captures the complete
//!   deployment (per-cell programmed levels *and* achieved thresholds,
//!   timing calibration, the [`FaultMap`], spare-row remapping, runtime
//!   backend/breaker/stats) into a versioned, CRC-checksummed binary
//!   file written via temp-file + atomic rename ([`atomic_write`]).
//! - **Write-ahead journal** — mutations between checkpoints
//!   ([`JournalOp`]: stores, fault injections, aging, repairs) append to
//!   a per-generation journal of individually checksummed records; a
//!   torn tail is truncated at the last valid record instead of
//!   poisoning recovery.
//! - **Recovery** — [`CheckpointStore::recover`] walks generations
//!   newest-first, *quarantines* any checkpoint or journal that fails
//!   validation (magic, version, length, CRC), falls back to the last
//!   good generation, and replays the journal's valid prefix.
//!   [`ResilientEngine::restore`] then rebuilds the engine on the
//!   behavioral backend with a bumped array generation — every
//!   pre-checkpoint [`CompiledSnapshot`](crate::array::CompiledSnapshot)
//!   is stale by construction — and the existing known-answer health
//!   probes revalidate the array before promoting back to the
//!   compiled-LUT path.
//! - **Crash chaos** — [`run_crash_chaos`] replays thousands of seeded
//!   kill/corruption scenarios (a simulated kill at *every byte
//!   boundary* of the commit sequence, bit flips, truncations) and
//!   cross-checks each recovery against an independently computed
//!   expected state, counting any undetected divergence as a silent
//!   corruption.
//!
//! All serialization is hand-rolled little-endian ([`Writer`] /
//! [`Reader`] / [`Codec`]): `f64` fields travel as raw IEEE-754 bits so
//! a restored array decodes **bit-identically** to the one that was
//! checkpointed.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fs::{self, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::clock::{Clock, Timestamp};

use crate::array::TdamArray;
use crate::cell::Cell;
use crate::config::{ArrayConfig, TechParams};
use crate::corpus::{ClusterData, CorpusConfig, CorpusEngine, CorpusTierStatus};
use crate::encoding::Encoding;
use crate::faults::{FaultKind, FaultMap};
use crate::resilience::{ResilienceConfig, ResilientArray, RowHealth, WearPolicy};
use crate::runtime::{
    BackendKind, BatchOutcome, CircuitBreaker, EpochSnapshots, ResilientEngine, RetryConfig,
    RuntimeConfig, RuntimeStats,
};
use crate::timing::StageTiming;
use crate::{BatchQuery, TdamError};
use tdam_fefet::disturb::InhibitScheme;
use tdam_fefet::mosfet::{MosParams, MosPolarity};
use tdam_fefet::programming::RetryPolicy;
use tdam_fefet::retention::{EnduranceParams, Lifetime, RetentionParams};

/// On-disk format version. Bumped on any layout change; recovery
/// refuses newer versions instead of guessing at their layout.
/// Version 3 added the wear-leveling policy to [`ResilienceConfig`] and
/// the online-mutation counters to [`RuntimeStats`]. Version 4 added the
/// retention-scrub counters (`scrub_ticks`/`scrub_probes`/`scrub_heals`)
/// to [`RuntimeStats`]. Version 5 added the corpus-tier snapshot-cache
/// counters (`corpus_cache_hits`/`corpus_cache_misses`/
/// `corpus_cache_evictions`/`corpus_compile_micros`) to [`RuntimeStats`]
/// and the corpus checkpoint file ([`CORPUS_MAGIC`]).
pub const FORMAT_VERSION: u32 = 5;

/// Checkpoint file magic (first 8 bytes).
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"TDAMCKPT";

/// Journal file magic (first 8 bytes).
pub const JOURNAL_MAGIC: [u8; 8] = *b"TDAMJRNL";

/// Corpus checkpoint file magic (first 8 bytes): the centroid table +
/// shard manifests of a [`crate::corpus::CorpusEngine`].
pub const CORPUS_MAGIC: [u8; 8] = *b"TDAMCORP";

/// Checkpoint generations retained after a successful commit (the new
/// one plus fallback history).
pub const KEEP_GENERATIONS: usize = 2;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Errors from the persistence subsystem.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure (not data corruption).
    Io(io::Error),
    /// A file failed validation: bad magic, wrong length, CRC mismatch,
    /// or an undecodable payload.
    Corrupt {
        /// What failed to validate.
        what: String,
    },
    /// The file declares a format version this build does not support.
    UnsupportedVersion {
        /// The version found in the file.
        found: u32,
    },
    /// No recoverable checkpoint generation exists.
    NoCheckpoint,
    /// Rebuilding the simulation from a (structurally valid) state
    /// failed.
    Sim(TdamError),
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Corrupt { what } => write!(f, "corrupt store data: {what}"),
            Self::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported format version {found} (supported: {FORMAT_VERSION})"
                )
            }
            Self::NoCheckpoint => write!(f, "no recoverable checkpoint generation"),
            Self::Sim(e) => write!(f, "state rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<TdamError> for StoreError {
    fn from(e: TdamError) -> Self {
        Self::Sim(e)
    }
}

fn corrupt(what: impl Into<String>) -> StoreError {
    StoreError::Corrupt { what: what.into() }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected)
// ---------------------------------------------------------------------------

/// CRC-32/ISO-HDLC over `bytes` (the common zlib/PNG polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Codec primitives
// ---------------------------------------------------------------------------

/// Little-endian byte sink for [`Codec`] encoding.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its raw IEEE-754 bits (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }
}

/// Little-endian byte source for [`Codec`] decoding. Every read is
/// bounds-checked; running out of bytes is a [`StoreError::Corrupt`].
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reads from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(corrupt("unexpected end of data"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` (stored as `u64`).
    pub fn get_usize(&mut self) -> Result<usize, StoreError> {
        usize::try_from(self.get_u64()?).map_err(|_| corrupt("usize overflow"))
    }

    /// Reads an `f64` from its raw IEEE-754 bits.
    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `bool` (one byte, 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, StoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(corrupt("invalid boolean byte")),
        }
    }
}

/// A type with a stable little-endian wire layout. Implementations pin
/// field order; the round-trip tests in this module pin it further with
/// golden byte vectors so format drift is caught in review.
pub trait Codec: Sized {
    /// Appends this value's wire form to `w`.
    fn encode(&self, w: &mut Writer);
    /// Decodes one value, consuming exactly its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] for truncated or invalid data.
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError>;
}

impl Codec for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        r.get_u8()
    }
}

impl Codec for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        r.get_u64()
    }
}

impl Codec for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        r.get_usize()
    }
}

impl Codec for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        r.get_f64()
    }
}

impl Codec for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_bool(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        r.get_bool()
    }
}

impl Codec for (f64, f64) {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.0);
        w.put_f64(self.1);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok((r.get_f64()?, r.get_f64()?))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let n = r.get_usize()?;
        // Every element occupies at least one byte, so a length beyond
        // the remaining buffer is corruption — reject before allocating.
        if n > r.remaining() {
            return Err(corrupt("collection length exceeds payload"));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl Codec for Encoding {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.bits());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Encoding::new(r.get_u8()?).map_err(|_| corrupt("invalid encoding bit width"))
    }
}

impl Codec for MosParams {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self.polarity {
            MosPolarity::Nmos => 0,
            MosPolarity::Pmos => 1,
        });
        w.put_f64(self.vth);
        w.put_f64(self.beta);
        w.put_f64(self.n);
        w.put_f64(self.lambda);
        w.put_f64(self.v_t);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let polarity = match r.get_u8()? {
            0 => MosPolarity::Nmos,
            1 => MosPolarity::Pmos,
            _ => return Err(corrupt("invalid MOS polarity tag")),
        };
        Ok(Self {
            polarity,
            vth: r.get_f64()?,
            beta: r.get_f64()?,
            n: r.get_f64()?,
            lambda: r.get_f64()?,
            v_t: r.get_f64()?,
        })
    }
}

impl Codec for TechParams {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.vdd);
        self.nmos.encode(w);
        self.pmos.encode(w);
        w.put_f64(self.c_mn);
        w.put_f64(self.c_self);
        w.put_f64(self.c_gate);
        w.put_f64(self.c_sl_per_cell);
        w.put_f64(self.switch_width_mult);
        w.put_f64(self.t_precharge);
        w.put_f64(self.t_launch);
        w.put_f64(self.dc_sensitivity);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            vdd: r.get_f64()?,
            nmos: MosParams::decode(r)?,
            pmos: MosParams::decode(r)?,
            c_mn: r.get_f64()?,
            c_self: r.get_f64()?,
            c_gate: r.get_f64()?,
            c_sl_per_cell: r.get_f64()?,
            switch_width_mult: r.get_f64()?,
            t_precharge: r.get_f64()?,
            t_launch: r.get_f64()?,
            dc_sensitivity: r.get_f64()?,
        })
    }
}

impl Codec for ArrayConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.stages);
        w.put_usize(self.rows);
        self.encoding.encode(w);
        w.put_f64(self.c_load);
        self.tech.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            stages: r.get_usize()?,
            rows: r.get_usize()?,
            encoding: Encoding::decode(r)?,
            c_load: r.get_f64()?,
            tech: TechParams::decode(r)?,
        })
    }
}

impl Codec for StageTiming {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.d_inv);
        w.put_f64(self.d_c);
        w.put_f64(self.e_inv);
        w.put_f64(self.e_c);
        w.put_f64(self.e_mn);
        w.put_f64(self.e_sl);
        w.put_f64(self.vdd);
        w.put_f64(self.c_load);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            d_inv: r.get_f64()?,
            d_c: r.get_f64()?,
            e_inv: r.get_f64()?,
            e_c: r.get_f64()?,
            e_mn: r.get_f64()?,
            e_sl: r.get_f64()?,
            vdd: r.get_f64()?,
            c_load: r.get_f64()?,
        })
    }
}

impl Codec for FaultKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            Self::StuckMismatch => w.put_u8(0),
            Self::StuckMatch => w.put_u8(1),
            Self::VthDrift { window_fraction } => {
                w.put_u8(2);
                w.put_f64(*window_fraction);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(Self::StuckMismatch),
            1 => Ok(Self::StuckMatch),
            2 => Ok(Self::VthDrift {
                window_fraction: r.get_f64()?,
            }),
            _ => Err(corrupt("invalid fault kind tag")),
        }
    }
}

impl Codec for FaultMap {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for &(row, stage, kind) in self.iter() {
            w.put_usize(row);
            w.put_usize(stage);
            kind.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(corrupt("fault map length exceeds payload"));
        }
        let mut map = FaultMap::new();
        for _ in 0..n {
            let row = r.get_usize()?;
            let stage = r.get_usize()?;
            map.inject(row, stage, FaultKind::decode(r)?);
        }
        Ok(map)
    }
}

impl Codec for RowHealth {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Self::Healthy => 0,
            Self::Repaired => 1,
            Self::Remapped => 2,
            Self::Degraded => 3,
            Self::Dead => 4,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(Self::Healthy),
            1 => Ok(Self::Repaired),
            2 => Ok(Self::Remapped),
            3 => Ok(Self::Degraded),
            4 => Ok(Self::Dead),
            _ => Err(corrupt("invalid row health tag")),
        }
    }
}

impl Codec for RetryPolicy {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.max_attempts);
        w.put_f64(self.amplitude_step);
        w.put_f64(self.max_amplitude);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            max_attempts: r.get_usize()?,
            amplitude_step: r.get_f64()?,
            max_amplitude: r.get_f64()?,
        })
    }
}

impl Codec for InhibitScheme {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.write_amplitude);
        w.put_f64(self.inhibit_bias);
        w.put_f64(self.pulse_width);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            write_amplitude: r.get_f64()?,
            inhibit_bias: r.get_f64()?,
            pulse_width: r.get_f64()?,
        })
    }
}

impl Codec for WearPolicy {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.rotate_after_writes);
        w.put_u64(self.refresh_after_disturbs);
        self.inhibit.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            rotate_after_writes: r.get_u64()?,
            refresh_after_disturbs: r.get_u64()?,
            inhibit: InhibitScheme::decode(r)?,
        })
    }
}

impl Codec for ResilienceConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.spare_rows);
        w.put_usize(self.reference_rows);
        w.put_usize(self.repair_attempts);
        w.put_f64(self.margin_threshold);
        self.retry.encode(w);
        self.wear.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            spare_rows: r.get_usize()?,
            reference_rows: r.get_usize()?,
            repair_attempts: r.get_usize()?,
            margin_threshold: r.get_f64()?,
            retry: RetryPolicy::decode(r)?,
            wear: WearPolicy::decode(r)?,
        })
    }
}

impl Codec for RetentionParams {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.loss_per_decade);
        w.put_f64(self.t0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            loss_per_decade: r.get_f64()?,
            t0: r.get_f64()?,
        })
    }
}

impl Codec for EnduranceParams {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.wakeup_gain);
        w.put_f64(self.wakeup_cycles);
        w.put_f64(self.fatigue_half_cycles);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            wakeup_gain: r.get_f64()?,
            wakeup_cycles: r.get_f64()?,
            fatigue_half_cycles: r.get_f64()?,
        })
    }
}

impl Codec for Lifetime {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.cycles);
        w.put_f64(self.seconds);
        self.retention.encode(w);
        self.endurance.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            cycles: r.get_f64()?,
            seconds: r.get_f64()?,
            retention: RetentionParams::decode(r)?,
            endurance: EnduranceParams::decode(r)?,
        })
    }
}

impl Codec for BackendKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Self::CompiledLut => 0,
            Self::Behavioral => 1,
            Self::DegradedMasked => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(Self::CompiledLut),
            1 => Ok(Self::Behavioral),
            2 => Ok(Self::DegradedMasked),
            _ => Err(corrupt("invalid backend tag")),
        }
    }
}

impl Codec for RuntimeStats {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.batches);
        w.put_usize(self.queries);
        w.put_usize(self.answered);
        w.put_usize(self.timed_out);
        w.put_usize(self.failed);
        w.put_usize(self.retries);
        w.put_usize(self.backoff_waits);
        w.put_usize(self.breaker_trips);
        w.put_usize(self.recompiles);
        w.put_usize(self.health_checks);
        w.put_usize(self.health_misses);
        w.put_usize(self.repairs);
        w.put_usize(self.demotions);
        w.put_usize(self.promotions);
        w.put_usize(self.user_writes);
        w.put_usize(self.physical_writes);
        w.put_usize(self.wear_rotations);
        w.put_usize(self.refresh_rewrites);
        w.put_usize(self.incremental_repacks);
        w.put_usize(self.rows_repacked);
        w.put_usize(self.epoch_swaps);
        w.put_usize(self.scrub_ticks);
        w.put_usize(self.scrub_probes);
        w.put_usize(self.scrub_heals);
        w.put_usize(self.corpus_cache_hits);
        w.put_usize(self.corpus_cache_misses);
        w.put_usize(self.corpus_cache_evictions);
        w.put_usize(self.corpus_compile_micros);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            batches: r.get_usize()?,
            queries: r.get_usize()?,
            answered: r.get_usize()?,
            timed_out: r.get_usize()?,
            failed: r.get_usize()?,
            retries: r.get_usize()?,
            backoff_waits: r.get_usize()?,
            breaker_trips: r.get_usize()?,
            recompiles: r.get_usize()?,
            health_checks: r.get_usize()?,
            health_misses: r.get_usize()?,
            repairs: r.get_usize()?,
            demotions: r.get_usize()?,
            promotions: r.get_usize()?,
            user_writes: r.get_usize()?,
            physical_writes: r.get_usize()?,
            wear_rotations: r.get_usize()?,
            refresh_rewrites: r.get_usize()?,
            incremental_repacks: r.get_usize()?,
            rows_repacked: r.get_usize()?,
            epoch_swaps: r.get_usize()?,
            scrub_ticks: r.get_usize()?,
            scrub_probes: r.get_usize()?,
            scrub_heals: r.get_usize()?,
            corpus_cache_hits: r.get_usize()?,
            corpus_cache_misses: r.get_usize()?,
            corpus_cache_evictions: r.get_usize()?,
            corpus_compile_micros: r.get_usize()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Deployment state
// ---------------------------------------------------------------------------

/// One physical row's persistent state: the stored multi-bit values and
/// each cell's *achieved* `(F_A, F_B)` thresholds — which is what
/// write-verify programming, injected faults, and aging actually left on
/// the devices, so a restore reproduces decode behaviour bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct RowState {
    /// Stored element values, one per stage.
    pub values: Vec<u8>,
    /// Achieved `(vth_a, vth_b)` per cell, in stage order.
    pub vth: Vec<(f64, f64)>,
}

impl Codec for RowState {
    fn encode(&self, w: &mut Writer) {
        self.values.encode(w);
        self.vth.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            values: Vec::<u8>::decode(r)?,
            vth: Vec::<(f64, f64)>::decode(r)?,
        })
    }
}

/// The resilience layer's bookkeeping: spare-row remapping, per-row
/// health, the injected fault map, broken chains, and masked columns.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceState {
    /// Resilience configuration (spares, references, repair policy).
    pub cfg: ResilienceConfig,
    /// Number of logical data rows.
    pub data_rows: usize,
    /// Logical row → physical row.
    pub remap: Vec<usize>,
    /// Which spare rows are consumed.
    pub spare_used: Vec<bool>,
    /// Per-logical-row health.
    pub health: Vec<RowHealth>,
    /// Injected cell faults (physical coordinates).
    pub faults: FaultMap,
    /// Physical rows with a severed chain.
    pub broken: Vec<usize>,
    /// Columns masked out of the distance metric.
    pub masked: Vec<usize>,
}

impl Codec for ResilienceState {
    fn encode(&self, w: &mut Writer) {
        self.cfg.encode(w);
        w.put_usize(self.data_rows);
        self.remap.encode(w);
        self.spare_used.encode(w);
        self.health.encode(w);
        self.faults.encode(w);
        self.broken.encode(w);
        self.masked.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            cfg: ResilienceConfig::decode(r)?,
            data_rows: r.get_usize()?,
            remap: Vec::<usize>::decode(r)?,
            spare_used: Vec::<bool>::decode(r)?,
            health: Vec::<RowHealth>::decode(r)?,
            faults: FaultMap::decode(r)?,
            broken: Vec::<usize>::decode(r)?,
            masked: Vec::<usize>::decode(r)?,
        })
    }
}

/// The serving runtime's persistent state at checkpoint time.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeState {
    /// Backend that was serving when the checkpoint was taken. Recorded
    /// for observability; a restored engine always starts on
    /// [`BackendKind::Behavioral`] and must pass the known-answer health
    /// probes before promoting back.
    pub backend: BackendKind,
    /// Circuit-breaker consecutive-miss count.
    pub breaker_misses: usize,
    /// Cumulative serving statistics.
    pub stats: RuntimeStats,
}

impl Codec for RuntimeState {
    fn encode(&self, w: &mut Writer) {
        self.backend.encode(w);
        w.put_usize(self.breaker_misses);
        self.stats.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            backend: BackendKind::decode(r)?,
            breaker_misses: r.get_usize()?,
            stats: RuntimeStats::decode(r)?,
        })
    }
}

/// The complete persistent deployment state of a [`ResilientEngine`]:
/// everything needed to rebuild an engine whose decode behaviour is
/// bit-identical to the one that was checkpointed.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentState {
    /// Physical array configuration (`rows` counts data + spares +
    /// references).
    pub config: ArrayConfig,
    /// Stage timing calibration.
    pub timing: StageTiming,
    /// Array mutation generation at capture time. A restore adopts
    /// `generation + 1`, so compiled snapshots taken before the
    /// checkpoint are stale by construction.
    pub generation: u64,
    /// Per physical row: values and achieved thresholds.
    pub rows: Vec<RowState>,
    /// Resilience bookkeeping.
    pub resilience: ResilienceState,
    /// Runtime backend/breaker/stats.
    pub runtime: RuntimeState,
}

impl Codec for DeploymentState {
    fn encode(&self, w: &mut Writer) {
        self.config.encode(w);
        self.timing.encode(w);
        w.put_u64(self.generation);
        self.rows.encode(w);
        self.resilience.encode(w);
        self.runtime.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            config: ArrayConfig::decode(r)?,
            timing: StageTiming::decode(r)?,
            generation: r.get_u64()?,
            rows: Vec::<RowState>::decode(r)?,
            resilience: ResilienceState::decode(r)?,
            runtime: RuntimeState::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Checkpoint file framing
// ---------------------------------------------------------------------------

/// Serializes a deployment state into a framed checkpoint file image:
/// magic, version, payload length, payload, CRC32 over everything after
/// the magic.
pub fn encode_checkpoint(state: &DeploymentState) -> Vec<u8> {
    let mut w = Writer::new();
    state.encode(&mut w);
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(24 + payload.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out[8..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates and decodes a checkpoint file image.
///
/// # Errors
///
/// [`StoreError::Corrupt`] for bad magic, a length that disagrees with
/// the file size, a CRC mismatch, or an undecodable payload;
/// [`StoreError::UnsupportedVersion`] for a structurally valid file from
/// a newer format.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<DeploymentState, StoreError> {
    if bytes.len() < 24 {
        return Err(corrupt("checkpoint shorter than its header"));
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return Err(corrupt("bad checkpoint magic"));
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    if bytes.len() != 24 + payload_len {
        return Err(corrupt("checkpoint length mismatch (torn write?)"));
    }
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(&bytes[8..bytes.len() - 4]) != stored_crc {
        return Err(corrupt("checkpoint CRC mismatch"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let mut r = Reader::new(&bytes[20..bytes.len() - 4]);
    let state = DeploymentState::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after checkpoint payload"));
    }
    Ok(state)
}

// ---------------------------------------------------------------------------
// Corpus checkpoint: centroid table + shard manifests
// ---------------------------------------------------------------------------

impl Codec for CorpusConfig {
    fn encode(&self, w: &mut Writer) {
        self.array.encode(w);
        w.put_usize(self.shard_rows);
        w.put_usize(self.nprobe);
        w.put_usize(self.train_iters);
        w.put_usize(self.train_sample);
        w.put_usize(self.cache_budget_bytes);
        w.put_u64(self.seed);
        w.put_bool(self.threads.is_some());
        w.put_usize(self.threads.unwrap_or(0));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let array = ArrayConfig::decode(r)?;
        let shard_rows = r.get_usize()?;
        let nprobe = r.get_usize()?;
        let train_iters = r.get_usize()?;
        let train_sample = r.get_usize()?;
        let cache_budget_bytes = r.get_usize()?;
        let seed = r.get_u64()?;
        let has_threads = r.get_bool()?;
        let threads = r.get_usize()?;
        Ok(Self {
            array,
            shard_rows,
            nprobe,
            train_iters,
            train_sample,
            cache_budget_bytes,
            seed,
            threads: has_threads.then_some(threads),
        })
    }
}

impl Codec for ClusterData {
    fn encode(&self, w: &mut Writer) {
        self.codes.encode(w);
        w.put_usize(self.ids.len());
        for &id in &self.ids {
            w.put_usize(id as usize);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let codes = Vec::<u8>::decode(r)?;
        let n = r.get_usize()?;
        let mut ids = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let id = r.get_usize()?;
            ids.push(u32::try_from(id).map_err(|_| corrupt("corpus shard id exceeds u32 range"))?);
        }
        Ok(Self { codes, ids })
    }
}

impl Codec for CorpusTierStatus {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.rows);
        w.put_usize(self.clusters);
        w.put_usize(self.nprobe);
        w.put_usize(self.resident);
        w.put_usize(self.resident_bytes);
        w.put_usize(self.budget_bytes);
        self.stats.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            rows: r.get_usize()?,
            clusters: r.get_usize()?,
            nprobe: r.get_usize()?,
            resident: r.get_usize()?,
            resident_bytes: r.get_usize()?,
            budget_bytes: r.get_usize()?,
            stats: RuntimeStats::decode(r)?,
        })
    }
}

/// Serializes a corpus engine's durable state — config, timing
/// calibration, centroid table, shard manifests (per-shard codes + id
/// lists), and counters — into a framed file image with the same
/// magic/version/length/CRC framing as [`encode_checkpoint`]. The
/// snapshot cache is *not* serialized: it is derived state, and the
/// [`PackedArray::from_codes`](crate::packed::PackedArray::from_codes)
/// contract recompiles it bit-identically on demand.
pub fn encode_corpus(engine: &CorpusEngine) -> Vec<u8> {
    let (cfg, timing, centroids, clusters, stats) = engine.persistent_parts();
    let mut w = Writer::new();
    cfg.encode(&mut w);
    timing.encode(&mut w);
    centroids.to_vec().encode(&mut w);
    w.put_usize(clusters.len());
    for cluster in clusters {
        cluster.encode(&mut w);
    }
    stats.encode(&mut w);
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(24 + payload.len());
    out.extend_from_slice(&CORPUS_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out[8..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates and decodes a corpus checkpoint image, rebuilding the
/// engine on `clock` with an empty (re-derivable) snapshot cache.
///
/// # Errors
///
/// [`StoreError::Corrupt`] for bad magic/length/CRC or an undecodable
/// payload, [`StoreError::UnsupportedVersion`] for a newer format, and
/// [`StoreError::Sim`] wrapping [`TdamError`] for a structurally valid
/// but semantically inconsistent checkpoint (e.g. a centroid table that
/// disagrees with its shard manifest).
pub fn decode_corpus(bytes: &[u8], clock: Clock) -> Result<CorpusEngine, StoreError> {
    if bytes.len() < 24 {
        return Err(corrupt("corpus checkpoint shorter than its header"));
    }
    if bytes[..8] != CORPUS_MAGIC {
        return Err(corrupt("bad corpus checkpoint magic"));
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    if bytes.len() != 24 + payload_len {
        return Err(corrupt("corpus checkpoint length mismatch (torn write?)"));
    }
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(&bytes[8..bytes.len() - 4]) != stored_crc {
        return Err(corrupt("corpus checkpoint CRC mismatch"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let mut r = Reader::new(&bytes[20..bytes.len() - 4]);
    let cfg = CorpusConfig::decode(&mut r)?;
    let timing = StageTiming::decode(&mut r)?;
    let centroids = Vec::<u8>::decode(&mut r)?;
    let n_clusters = r.get_usize()?;
    let mut clusters = Vec::with_capacity(n_clusters.min(1 << 20));
    for _ in 0..n_clusters {
        clusters.push(ClusterData::decode(&mut r)?);
    }
    let stats = RuntimeStats::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after corpus checkpoint payload"));
    }
    CorpusEngine::from_persistent_parts(cfg, timing, centroids, clusters, stats, clock)
        .map_err(StoreError::Sim)
}

/// Writes a corpus checkpoint to `path` atomically (tmp + fsync +
/// rename, as [`atomic_write`]).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_corpus(path: &Path, engine: &CorpusEngine) -> io::Result<()> {
    atomic_write(path, &encode_corpus(engine))
}

/// Reads and decodes a corpus checkpoint from `path`, restoring the
/// engine on the wall clock.
///
/// # Errors
///
/// [`StoreError::Io`] for filesystem failures and the
/// [`decode_corpus`] validation errors.
pub fn load_corpus(path: &Path) -> Result<CorpusEngine, StoreError> {
    let bytes = fs::read(path).map_err(StoreError::Io)?; // [real-disk ok] OS storage island
    decode_corpus(&bytes, Clock::wall())
}

// ---------------------------------------------------------------------------
// Write-ahead journal
// ---------------------------------------------------------------------------

/// One journaled post-checkpoint mutation. Replaying the journal's ops,
/// in order, on an engine restored from the owning checkpoint
/// reconstructs the pre-crash state — every op is deterministic
/// (programming uses fresh nominal devices; repair decisions are pure
/// functions of the array).
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// Store values at a logical data row.
    Store {
        /// Logical row.
        row: usize,
        /// Element values.
        values: Vec<u8>,
    },
    /// Inject a cell fault at physical `(row, stage)`.
    Inject {
        /// Physical row.
        row: usize,
        /// Stage (column).
        stage: usize,
        /// Fault kind.
        kind: FaultKind,
    },
    /// Sever a physical row's chain at a stage.
    BreakStage {
        /// Physical row.
        row: usize,
        /// Stage (column).
        stage: usize,
    },
    /// Stick one column's shared search line at the conducting level.
    StuckColumn {
        /// Stage (column).
        stage: usize,
    },
    /// Age every cell through a lifetime.
    Age {
        /// Cycles endured and retention time elapsed.
        lifetime: Lifetime,
    },
    /// Run a detection + repair cycle (re-derived deterministically on
    /// replay: detection is a pure function of the array, so replay
    /// makes the same repair decisions the live engine made).
    Repair,
}

impl Codec for JournalOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            Self::Store { row, values } => {
                w.put_u8(0);
                w.put_usize(*row);
                values.encode(w);
            }
            Self::Inject { row, stage, kind } => {
                w.put_u8(1);
                w.put_usize(*row);
                w.put_usize(*stage);
                kind.encode(w);
            }
            Self::BreakStage { row, stage } => {
                w.put_u8(2);
                w.put_usize(*row);
                w.put_usize(*stage);
            }
            Self::StuckColumn { stage } => {
                w.put_u8(3);
                w.put_usize(*stage);
            }
            Self::Age { lifetime } => {
                w.put_u8(4);
                lifetime.encode(w);
            }
            Self::Repair => w.put_u8(5),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(Self::Store {
                row: r.get_usize()?,
                values: Vec::<u8>::decode(r)?,
            }),
            1 => Ok(Self::Inject {
                row: r.get_usize()?,
                stage: r.get_usize()?,
                kind: FaultKind::decode(r)?,
            }),
            2 => Ok(Self::BreakStage {
                row: r.get_usize()?,
                stage: r.get_usize()?,
            }),
            3 => Ok(Self::StuckColumn {
                stage: r.get_usize()?,
            }),
            4 => Ok(Self::Age {
                lifetime: Lifetime::decode(r)?,
            }),
            5 => Ok(Self::Repair),
            _ => Err(corrupt("invalid journal op tag")),
        }
    }
}

impl JournalOp {
    /// Applies this op to an engine (used both live and on replay).
    ///
    /// # Errors
    ///
    /// Propagates the underlying mutation's error. Errors are
    /// deterministic: an op that failed live fails identically on
    /// replay, so recovery skips it without diverging.
    pub fn apply(&self, engine: &mut ResilientEngine) -> Result<(), TdamError> {
        match self {
            Self::Store { row, values } => engine.store(*row, values).map(|_| ()),
            Self::Inject { row, stage, kind } => engine.array_mut().inject(*row, *stage, *kind),
            Self::BreakStage { row, stage } => engine.array_mut().break_stage(*row, *stage),
            Self::StuckColumn { stage } => engine.array_mut().stuck_column(*stage),
            Self::Age { lifetime } => engine.array_mut().age(lifetime),
            Self::Repair => {
                let detection = engine.array().check()?;
                if !detection.all_clear() {
                    engine.array_mut().repair(&detection)?;
                    engine.bump_repairs();
                }
                Ok(())
            }
        }
    }
}

/// The 16-byte journal header: magic, version, CRC32 over the version.
fn journal_header() -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&JOURNAL_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&crc32(&FORMAT_VERSION.to_le_bytes()).to_le_bytes());
    out
}

/// One framed journal record: payload length, payload, CRC32(payload).
pub fn encode_record(op: &JournalOp) -> Vec<u8> {
    let mut w = Writer::new();
    op.encode(&mut w);
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

/// Parses a journal image into its valid-prefix ops.
///
/// Returns `(ops, torn)`: `torn` is true when trailing bytes were
/// discarded (a partial record, a CRC mismatch, or an undecodable
/// payload — the write-ahead contract makes the valid prefix the
/// correct recovery point).
///
/// # Errors
///
/// [`StoreError::Corrupt`] when the *header* is invalid (the whole file
/// is untrustworthy, not just its tail);
/// [`StoreError::UnsupportedVersion`] for a newer format.
pub fn read_journal(bytes: &[u8]) -> Result<(Vec<JournalOp>, bool), StoreError> {
    if bytes.len() < 16 {
        return Err(corrupt("journal shorter than its header"));
    }
    if bytes[..8] != JOURNAL_MAGIC {
        return Err(corrupt("bad journal magic"));
    }
    let stored_crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if crc32(&bytes[8..12]) != stored_crc {
        return Err(corrupt("journal header CRC mismatch"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let mut ops = Vec::new();
    let mut pos = 16usize;
    let mut torn = false;
    while pos < bytes.len() {
        if bytes.len() - pos < 4 {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if bytes.len() - pos - 4 < len + 4 {
            torn = true;
            break;
        }
        let payload = &bytes[pos + 4..pos + 4 + len];
        let rec_crc =
            u32::from_le_bytes(bytes[pos + 4 + len..pos + 8 + len].try_into().expect("4"));
        if crc32(payload) != rec_crc {
            torn = true;
            break;
        }
        let mut r = Reader::new(payload);
        match JournalOp::decode(&mut r) {
            Ok(op) if r.remaining() == 0 => ops.push(op),
            _ => {
                torn = true;
                break;
            }
        }
        pos += 8 + len;
    }
    Ok((ops, torn))
}

// ---------------------------------------------------------------------------
// Atomic file writes
// ---------------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: the data goes to a `.tmp`
/// sibling first, is fsynced, and is renamed over the destination, so a
/// crash at any byte boundary leaves either the old file or the new one
/// — never a torn hybrid. The parent directory is fsynced afterwards to
/// persist the rename itself.
///
/// Shared by the checkpoint writer and the benchmark result archiver.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = fs::File::create(&tmp)?; // [real-disk ok] OS storage island
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?; // [real-disk ok] OS storage island
    if let Some(parent) = path.parent() {
        // [real-disk ok] OS storage island
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Storage abstraction (real disk / deterministic in-memory disk)
// ---------------------------------------------------------------------------

/// The durable-storage surface the checkpoint/WAL layer writes through.
///
/// Production uses [`OsStorage`] (the real filesystem, unchanged
/// behaviour); deterministic simulation uses [`MemStorage`], an
/// in-memory disk that models *durability* separately from *content* —
/// so torn appends, lying fsyncs, `ENOSPC`, and crash-restarts can be
/// injected from a seeded schedule and replayed bit-identically.
///
/// The contract mirrors the handful of POSIX behaviours recovery
/// depends on: `write_atomic` is all-or-nothing (tmp + fsync + rename),
/// `append` extends a file's *visible* content, and `sync` is the only
/// operation that promises appended bytes survive a crash.
pub trait Storage: std::fmt::Debug + Send + Sync {
    /// Creates `dir` (and parents) if missing.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Reads a file's current visible content.
    ///
    /// # Errors
    ///
    /// `NotFound` when the file does not exist; other I/O errors.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically replaces `path` with `bytes` (old file or new file
    /// after a crash — never a torn hybrid).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to an existing file. Durability is deferred
    /// until [`Storage::sync`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Makes a file's appended content durable (fsync).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Renames a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file (idempotent: missing files are not an error).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than `NotFound`.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) directly inside `dir`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// The real filesystem. All methods delegate to `std::fs`; this is the
/// only disk implementation production code paths ever construct.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsStorage;

impl Storage for OsStorage {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir) // [real-disk ok] OS storage island
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path) // [real-disk ok] OS storage island
    }
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        atomic_write(path, bytes)
    }
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new().append(true).open(path)?; // [real-disk ok] OS storage island
        f.write_all(bytes)
    }
    fn sync(&self, path: &Path) -> io::Result<()> {
        // fsync is per-inode: a fresh descriptor syncs bytes appended
        // through any earlier descriptor.
        OpenOptions::new().append(true).open(path)?.sync_data() // [real-disk ok] OS storage island
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to) // [real-disk ok] OS storage island
    }
    fn remove(&self, path: &Path) -> io::Result<()> {
        // [real-disk ok] OS storage island
        match fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }
    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        // [real-disk ok] OS storage island
        for entry in fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// A one-shot disk fault consumed by the next matching [`MemStorage`]
/// operation. Injected by the simulation's fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The next `append` writes only a prefix: `keep_num / 256` of the
    /// record's bytes reach the file (the OS crashed mid-write). The
    /// call still reports success — exactly the lie a torn write tells.
    TornAppend {
        /// Numerator of the kept fraction (denominator 256).
        keep_num: u8,
    },
    /// The next `sync` or `write_atomic` reports success without making
    /// anything durable (a lying fsync / unfsynced rename): content is
    /// visible now but reverts on [`MemStorage::crash`].
    FsyncLie,
    /// The next `append` or `write_atomic` fails with `ENOSPC`-style
    /// [`io::ErrorKind::StorageFull`] and changes nothing.
    Full,
}

#[derive(Debug, Default, Clone)]
struct MemFile {
    /// Content visible to reads right now.
    live: Vec<u8>,
    /// Content that survives a crash (what has actually been fsynced).
    durable: Option<Vec<u8>>,
}

#[derive(Debug, Default)]
struct MemDisk {
    files: HashMap<PathBuf, MemFile>,
    dirs: BTreeSet<PathBuf>,
    faults: VecDeque<DiskFault>,
    /// Total faults actually consumed (for campaign reporting).
    faults_fired: usize,
}

/// A deterministic in-memory disk with seeded fault injection.
///
/// Content and durability are tracked separately: `append` updates only
/// the *live* view, `sync`/`write_atomic` promote it to *durable*, and
/// [`MemStorage::crash`] discards everything volatile — modelling a
/// machine losing power. Faults queued with [`MemStorage::inject`] are
/// consumed one-shot by the next matching operation, so a fault
/// schedule drawn from a seed perturbs exactly the same operation on
/// every replay.
#[derive(Debug, Default, Clone)]
pub struct MemStorage {
    inner: Arc<Mutex<MemDisk>>,
}

impl MemStorage {
    /// A fresh, empty in-memory disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a one-shot fault for the next matching operation.
    pub fn inject(&self, fault: DiskFault) {
        self.lock().faults.push_back(fault);
    }

    /// Simulates a power loss: every file reverts to its last durable
    /// content; files never made durable vanish. Queued faults are
    /// dropped (the machine rebooted).
    pub fn crash(&self) {
        let mut d = self.lock();
        d.files.retain(|_, f| f.durable.is_some());
        for f in d.files.values_mut() {
            f.live = f.durable.clone().unwrap_or_default();
        }
        d.faults.clear();
    }

    /// Faults consumed so far.
    pub fn faults_fired(&self) -> usize {
        self.lock().faults_fired
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemDisk> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pops the front fault if `matches` accepts it.
    fn take_fault(d: &mut MemDisk, matches: impl Fn(DiskFault) -> bool) -> Option<DiskFault> {
        if d.faults.front().copied().is_some_and(matches) {
            d.faults_fired += 1;
            d.faults.pop_front()
        } else {
            None
        }
    }
}

impl Storage for MemStorage {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.lock().dirs.insert(dir.to_path_buf());
        Ok(())
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.lock()
            .files
            .get(path)
            .map(|f| f.live.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such simulated file"))
    }
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut d = self.lock();
        if Self::take_fault(&mut d, |f| f == DiskFault::Full).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "simulated disk full",
            ));
        }
        let lie = Self::take_fault(&mut d, |f| f == DiskFault::FsyncLie).is_some();
        let prior_durable = d.files.get(path).and_then(|f| f.durable.clone());
        d.files.insert(
            path.to_path_buf(),
            MemFile {
                live: bytes.to_vec(),
                // A lying fsync leaves the rename volatile: after a
                // crash the *old* durable content (if any) returns.
                durable: if lie {
                    prior_durable
                } else {
                    Some(bytes.to_vec())
                },
            },
        );
        Ok(())
    }
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut d = self.lock();
        if Self::take_fault(&mut d, |f| f == DiskFault::Full).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "simulated disk full",
            ));
        }
        let torn = Self::take_fault(&mut d, |f| matches!(f, DiskFault::TornAppend { .. }));
        let file = d
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such simulated file"))?;
        match torn {
            Some(DiskFault::TornAppend { keep_num }) => {
                let keep = bytes.len() * usize::from(keep_num) / 256;
                file.live.extend_from_slice(&bytes[..keep]);
            }
            _ => file.live.extend_from_slice(bytes),
        }
        Ok(())
    }
    fn sync(&self, path: &Path) -> io::Result<()> {
        let mut d = self.lock();
        let lie = Self::take_fault(&mut d, |f| f == DiskFault::FsyncLie).is_some();
        let file = d
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such simulated file"))?;
        if !lie {
            file.durable = Some(file.live.clone());
        }
        Ok(())
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut d = self.lock();
        let file = d
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such simulated file"))?;
        d.files.insert(to.to_path_buf(), file);
        Ok(())
    }
    fn remove(&self, path: &Path) -> io::Result<()> {
        self.lock().files.remove(path);
        Ok(())
    }
    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let d = self.lock();
        Ok(d.files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().and_then(|n| n.to_str()))
            .map(str::to_string)
            .collect())
    }
    fn exists(&self, path: &Path) -> bool {
        self.lock().files.contains_key(path)
    }
}

// ---------------------------------------------------------------------------
// Checkpoint store (directory of generations)
// ---------------------------------------------------------------------------

/// What recovery found and did: the generation served, how much journal
/// replayed, and every file that failed validation and was quarantined.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// The generation recovery restored from.
    pub generation: u64,
    /// Journal ops applied on top of the checkpoint.
    pub ops_replayed: usize,
    /// Journal ops whose (deterministic) application failed and was
    /// skipped — they failed identically before the crash.
    pub ops_skipped: usize,
    /// Whether the journal had a torn/corrupt tail that was truncated.
    pub journal_torn: bool,
    /// Whether a newer generation existed but failed validation.
    pub fell_back: bool,
    /// Files that failed validation, renamed to `*.quarantined`.
    pub quarantined: Vec<PathBuf>,
    /// Whether any damage was detected (fallback, torn journal, or
    /// quarantined file). Never true for a clean recovery.
    pub corruption_detected: bool,
}

/// A directory of numbered checkpoint generations (`ckpt-NNNNNNNN.tdam`)
/// with matching write-ahead journals (`wal-NNNNNNNN.tdam`).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    storage: Arc<dyn Storage>,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory on the real
    /// filesystem.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_with(dir, Arc::new(OsStorage))
    }

    /// Opens a checkpoint directory on an explicit [`Storage`] backend
    /// (the deterministic simulation passes a [`MemStorage`] here).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the backend.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        storage: Arc<dyn Storage>,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        storage.create_dir_all(&dir)?;
        Ok(Self { dir, storage })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The storage backend this store writes through.
    pub fn storage(&self) -> &Arc<dyn Storage> {
        &self.storage
    }

    /// The checkpoint file path for a generation.
    pub fn checkpoint_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{generation:08}.tdam"))
    }

    /// The journal file path for a generation.
    pub fn journal_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("wal-{generation:08}.tdam"))
    }

    /// All committed generations, ascending (scanned from file names;
    /// quarantined and temporary files are ignored).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn generations(&self) -> Result<Vec<u64>, StoreError> {
        let mut gens = Vec::new();
        for name in self.storage.list(&self.dir)? {
            if let Some(num) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".tdam"))
            {
                if num.len() == 8 {
                    if let Ok(g) = num.parse::<u64>() {
                        gens.push(g);
                    }
                }
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Commits a new generation: the checkpoint file and a fresh, empty
    /// journal, each written atomically. Returns the new generation
    /// number.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn commit(&self, state: &DeploymentState) -> Result<u64, StoreError> {
        let generation = self.generations()?.last().copied().unwrap_or(0) + 1;
        self.storage
            .write_atomic(&self.checkpoint_path(generation), &encode_checkpoint(state))?;
        self.storage
            .write_atomic(&self.journal_path(generation), &journal_header())?;
        Ok(generation)
    }

    /// Deletes the oldest generations (checkpoint + journal) beyond
    /// `keep`, returning the pruned generation numbers.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn prune(&self, keep: usize) -> Result<Vec<u64>, StoreError> {
        let gens = self.generations()?;
        let mut pruned = Vec::new();
        if gens.len() > keep {
            for &g in &gens[..gens.len() - keep] {
                let _ = self.storage.remove(&self.checkpoint_path(g));
                let _ = self.storage.remove(&self.journal_path(g));
                pruned.push(g);
            }
        }
        Ok(pruned)
    }

    fn quarantine(&self, path: &Path, quarantined: &mut Vec<PathBuf>) -> Result<(), StoreError> {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            return Ok(());
        };
        let dest = path.with_file_name(format!("{name}.quarantined"));
        self.storage.rename(path, &dest)?;
        quarantined.push(dest);
        Ok(())
    }

    /// Recovers the newest valid generation: validates checkpoints
    /// newest-first, quarantining any that fail (together with their now
    /// meaningless journals) and falling back to the previous
    /// generation; then parses the surviving generation's journal,
    /// quarantining it too if its header is invalid, or truncating a
    /// torn tail to the valid prefix.
    ///
    /// Returns the decoded state, the journal ops to replay, and the
    /// [`RecoveryReport`] (with `ops_replayed` still zero — the caller
    /// counts as it applies).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoCheckpoint`] when no generation validates.
    pub fn recover(&self) -> Result<(DeploymentState, Vec<JournalOp>, RecoveryReport), StoreError> {
        let gens = self.generations()?;
        let newest = gens.last().copied();
        let mut quarantined = Vec::new();
        for &generation in gens.iter().rev() {
            let ckpt = self.checkpoint_path(generation);
            let state = match self
                .storage
                .read(&ckpt)
                .map_err(StoreError::from)
                .and_then(|bytes| decode_checkpoint(&bytes))
            {
                Ok(state) => state,
                Err(_) => {
                    // Damaged (or vanished) checkpoint: quarantine it and
                    // its journal — ops without their base state are
                    // meaningless — then fall back a generation.
                    if self.storage.exists(&ckpt) {
                        self.quarantine(&ckpt, &mut quarantined)?;
                    }
                    let wal = self.journal_path(generation);
                    if self.storage.exists(&wal) {
                        self.quarantine(&wal, &mut quarantined)?;
                    }
                    continue;
                }
            };
            let wal = self.journal_path(generation);
            let (ops, torn) = match self.storage.read(&wal) {
                Ok(bytes) => match read_journal(&bytes) {
                    Ok(parsed) => parsed,
                    Err(_) => {
                        self.quarantine(&wal, &mut quarantined)?;
                        (Vec::new(), true)
                    }
                },
                // A missing journal is a crash between the checkpoint
                // rename and the journal creation: an empty journal.
                Err(e) if e.kind() == io::ErrorKind::NotFound => (Vec::new(), false),
                Err(e) => return Err(e.into()),
            };
            let fell_back = newest != Some(generation);
            let corruption_detected = fell_back || torn || !quarantined.is_empty();
            let report = RecoveryReport {
                generation,
                ops_replayed: 0,
                ops_skipped: 0,
                journal_torn: torn,
                fell_back,
                quarantined,
                corruption_detected,
            };
            return Ok((state, ops, report));
        }
        Err(StoreError::NoCheckpoint)
    }
}

// ---------------------------------------------------------------------------
// ResilientEngine: checkpoint / restore
// ---------------------------------------------------------------------------

impl ResilientEngine {
    /// Captures the complete persistent deployment state: per-cell
    /// levels and achieved thresholds, timing calibration, fault map,
    /// spare-row remapping, and runtime backend/breaker/stats.
    pub fn checkpoint(&self) -> DeploymentState {
        let arr = &self.array;
        let ta = &arr.array;
        let config = *ta.config();
        let rows = (0..config.rows)
            .map(|r| RowState {
                values: ta.stored(r).expect("row index in range"),
                vth: ta
                    .row_cells(r)
                    .expect("row index in range")
                    .iter()
                    .map(Cell::vth_actual)
                    .collect(),
            })
            .collect();
        DeploymentState {
            config,
            timing: *ta.timing(),
            generation: ta.generation(),
            rows,
            resilience: ResilienceState {
                cfg: arr.cfg,
                data_rows: arr.data_rows,
                remap: arr.remap.clone(),
                spare_used: arr.spare_used.clone(),
                health: arr.health.clone(),
                faults: arr.faults.clone(),
                broken: arr.broken.iter().copied().collect(),
                masked: arr.masked.iter().copied().collect(),
            },
            runtime: RuntimeState {
                backend: self.backend,
                breaker_misses: self.breaker.misses,
                stats: self.stats,
            },
        }
    }

    /// Warm-starts an engine from a checkpointed state.
    ///
    /// The rebuilt array adopts generation `state.generation + 1`, so
    /// any [`CompiledSnapshot`](crate::array::CompiledSnapshot) taken
    /// before the checkpoint refuses to serve
    /// ([`TdamError::StaleCompile`]). The engine starts on the
    /// [`BackendKind::Behavioral`] backend with a health probe due on
    /// the first serve: the known-answer probes must revalidate the
    /// restored array before it promotes back to the compiled-LUT path.
    ///
    /// # Errors
    ///
    /// [`TdamError::InvalidConfig`] / [`TdamError::LengthMismatch`] /
    /// [`TdamError::ValueOutOfRange`] when the state is internally
    /// inconsistent (shapes that no checkpoint of a live engine can
    /// produce, but a decoded file is still cross-validated here).
    pub fn restore(state: &DeploymentState, cfg: RuntimeConfig) -> Result<Self, TdamError> {
        let config = state.config;
        let rs = &state.resilience;
        if state.rows.len() != config.rows {
            return Err(TdamError::InvalidConfig {
                what: "checkpoint row count does not match its configuration",
            });
        }
        if rs.data_rows + rs.cfg.spare_rows + rs.cfg.reference_rows != config.rows {
            return Err(TdamError::InvalidConfig {
                what: "checkpoint physical layout does not match its resilience config",
            });
        }
        if rs.remap.len() != rs.data_rows
            || rs.health.len() != rs.data_rows
            || rs.spare_used.len() != rs.cfg.spare_rows
        {
            return Err(TdamError::InvalidConfig {
                what: "checkpoint resilience bookkeeping has inconsistent shapes",
            });
        }
        if rs.remap.iter().any(|&p| p >= config.rows) {
            return Err(TdamError::InvalidConfig {
                what: "checkpoint remap targets a row beyond the array",
            });
        }
        let mut ta = TdamArray::with_timing(config, state.timing)?;
        for (r, row) in state.rows.iter().enumerate() {
            if row.vth.len() != row.values.len() {
                return Err(TdamError::LengthMismatch {
                    got: row.vth.len(),
                    expected: row.values.len(),
                });
            }
            let cells = row
                .values
                .iter()
                .zip(&row.vth)
                .map(|(&v, &(vth_a, vth_b))| Cell::with_vth(v, config.encoding, vth_a, vth_b))
                .collect::<Result<Vec<_>, _>>()?;
            ta.store_cells(r, cells)?;
        }
        ta.set_generation(state.generation + 1);
        let array = ResilientArray {
            array: ta,
            cfg: rs.cfg,
            data_rows: rs.data_rows,
            remap: rs.remap.clone(),
            spare_used: rs.spare_used.clone(),
            health: rs.health.clone(),
            faults: rs.faults.clone(),
            broken: rs.broken.iter().copied().collect::<BTreeSet<_>>(),
            masked: rs.masked.iter().copied().collect::<BTreeSet<_>>(),
            // Wear accounting is runtime-only: a restored deployment
            // starts with fresh counters on every replay path alike.
            writes: vec![0; config.rows],
            disturbs: vec![0; config.rows],
        };
        Ok(Self {
            array,
            cfg,
            epochs: std::sync::Arc::new(EpochSnapshots::new()),
            dirty: None,
            backend: BackendKind::Behavioral,
            breaker: CircuitBreaker {
                misses: state.runtime.breaker_misses,
                threshold: cfg.breaker_threshold.max(1),
            },
            // A probe is due on the very first serve: revalidate before
            // promoting back toward the compiled path.
            batches_since_check: cfg.health_interval.saturating_sub(1),
            chaos: None,
            stats: state.runtime.stats,
            clock: crate::clock::Clock::default(),
            last_scrub: None,
        })
    }

    /// Accounts one repair in the serving statistics (journal replay).
    pub(crate) fn bump_repairs(&mut self) {
        self.stats.repairs += 1;
    }
}

// ---------------------------------------------------------------------------
// Durable engine: WAL-fronted serving
// ---------------------------------------------------------------------------

/// Group-commit policy for the buffered write path
/// ([`DurableEngine::store_buffered`]): journal records accumulate in
/// memory and are flushed — one `write_all` plus one `fsync` for the
/// whole group — when the group reaches `max_ops` or the oldest
/// buffered record has waited `flush_deadline`.
///
/// Buffered mutations are applied to the live engine immediately; only
/// their *durability* is deferred. A crash inside the window loses the
/// unflushed tail cleanly (recovery replays the journal's valid prefix
/// and simply ends earlier) — it can never corrupt or reorder, because
/// records enter the journal in apply order and every synchronous
/// journaling entry point flushes the group first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupCommitPolicy {
    /// Flush when this many records are buffered (minimum 1; 1 degrades
    /// to the synchronous fsync-per-op path).
    pub max_ops: usize,
    /// Flush when the oldest buffered record has waited this long.
    /// Checked on every buffered write and every served batch.
    pub flush_deadline: Duration,
}

impl Default for GroupCommitPolicy {
    fn default() -> Self {
        Self {
            max_ops: 32,
            flush_deadline: Duration::from_millis(2),
        }
    }
}

/// A [`ResilientEngine`] fronted by a [`CheckpointStore`]: every
/// mutation is journaled (write-ahead, fsynced) before it is applied, so
/// [`DurableEngine::recover`] after a crash at *any* point reproduces
/// the pre-crash deployment from the last checkpoint plus the journal's
/// valid prefix. High write rates can amortize the fsync over many
/// mutations through [`DurableEngine::store_buffered`] /
/// [`DurableEngine::store_batch`] under a [`GroupCommitPolicy`].
#[derive(Debug)]
pub struct DurableEngine {
    engine: ResilientEngine,
    store: CheckpointStore,
    generation: u64,
    wal_ops: usize,
    group: GroupCommitPolicy,
    /// Encoded journal records awaiting their group flush.
    pending: Vec<u8>,
    pending_ops: usize,
    pending_since: Option<Timestamp>,
}

impl DurableEngine {
    /// Wraps an engine, committing its current state as the first
    /// checkpoint generation of `store`.
    ///
    /// # Errors
    ///
    /// Propagates commit failures.
    pub fn new(store: CheckpointStore, engine: ResilientEngine) -> Result<Self, StoreError> {
        let generation = store.commit(&engine.checkpoint())?;
        Ok(Self {
            engine,
            store,
            generation,
            wal_ops: 0,
            group: GroupCommitPolicy::default(),
            pending: Vec::new(),
            pending_ops: 0,
            pending_since: None,
        })
    }

    /// Sets the group-commit policy for the buffered write path.
    #[must_use]
    pub fn with_group_commit(mut self, group: GroupCommitPolicy) -> Self {
        self.group = group;
        self
    }

    /// Recovers a durable engine from a checkpoint directory: newest
    /// valid generation, journal replay, quarantine of damaged files.
    /// The journal is compacted to its replayed prefix so subsequent
    /// appends continue from a clean file.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoCheckpoint`] when nothing recoverable exists.
    pub fn recover(
        dir: impl Into<PathBuf>,
        cfg: RuntimeConfig,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        Self::recover_with(
            CheckpointStore::open(dir)?,
            cfg,
            crate::clock::Clock::default(),
        )
    }

    /// [`DurableEngine::recover`] against an already-open store (any
    /// [`Storage`] backend) with the restored engine placed on `clock`.
    /// This is the simulation's crash-restart entry point.
    ///
    /// # Errors
    ///
    /// As [`DurableEngine::recover`].
    pub fn recover_with(
        store: CheckpointStore,
        cfg: RuntimeConfig,
        clock: crate::clock::Clock,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let (state, ops, mut report) = store.recover()?;
        let mut engine = ResilientEngine::restore(&state, cfg)?.with_clock(clock);
        let mut journal_bytes = journal_header();
        for op in &ops {
            match op.apply(&mut engine) {
                Ok(()) => {
                    journal_bytes.extend_from_slice(&encode_record(op));
                    report.ops_replayed += 1;
                }
                Err(_) => report.ops_skipped += 1,
            }
        }
        let wal_path = store.journal_path(report.generation);
        store.storage.write_atomic(&wal_path, &journal_bytes)?;
        let generation = report.generation;
        let wal_ops = report.ops_replayed;
        Ok((
            Self {
                engine,
                store,
                generation,
                wal_ops,
                group: GroupCommitPolicy::default(),
                pending: Vec::new(),
                pending_ops: 0,
                pending_since: None,
            },
            report,
        ))
    }

    /// The wrapped engine (read-only — mutations must go through the
    /// journaling wrappers).
    pub fn engine(&self) -> &ResilientEngine {
        &self.engine
    }

    /// The current checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Journal records appended since the last checkpoint.
    pub fn journal_ops(&self) -> usize {
        self.wal_ops
    }

    /// The backing store.
    pub fn checkpoint_store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Appends and fsyncs `bytes` on the current generation's journal.
    fn append_sync(&self, bytes: &[u8]) -> Result<(), StoreError> {
        let path = self.store.journal_path(self.generation);
        self.store.storage.append(&path, bytes)?;
        self.store.storage.sync(&path)?;
        Ok(())
    }

    fn journal(&mut self, op: &JournalOp) -> Result<(), StoreError> {
        // Synchronous records must land *after* any buffered group:
        // the journal replays in apply order.
        self.flush_writes()?;
        self.append_sync(&encode_record(op))?;
        self.wal_ops += 1;
        Ok(())
    }

    fn journaled(&mut self, op: JournalOp) -> Result<(), StoreError> {
        self.journal(&op)?;
        op.apply(&mut self.engine).map_err(StoreError::from)
    }

    /// Stores values at a logical row (journaled).
    ///
    /// # Errors
    ///
    /// Journal I/O errors, or the mutation's own error (the journaled op
    /// is then skipped identically on replay).
    pub fn store(&mut self, row: usize, values: &[u8]) -> Result<(), StoreError> {
        self.journaled(JournalOp::Store {
            row,
            values: values.to_vec(),
        })
    }

    /// Stores values at a logical row through the group-commit path:
    /// the journal record is buffered (write-ahead, in apply order) and
    /// the mutation applied immediately; the group is flushed with a
    /// single fsync when the [`GroupCommitPolicy`] says so. Until that
    /// flush the write is live but not yet durable.
    ///
    /// # Errors
    ///
    /// Journal I/O errors from a triggered flush, or the mutation's own
    /// error (the buffered record is then skipped identically on
    /// replay).
    pub fn store_buffered(&mut self, row: usize, values: &[u8]) -> Result<(), StoreError> {
        let op = JournalOp::Store {
            row,
            values: values.to_vec(),
        };
        self.pending.extend_from_slice(&encode_record(&op));
        self.pending_ops += 1;
        let now = self.engine.clock().now();
        self.pending_since.get_or_insert(now);
        let applied = op.apply(&mut self.engine).map_err(StoreError::from);
        self.maybe_flush()?;
        applied
    }

    /// Group-commits a whole batch of row writes: every record is
    /// appended and fsynced **once**, then the writes are applied. One
    /// durability round-trip amortized over the batch.
    ///
    /// # Errors
    ///
    /// Journal I/O errors, or the first mutation error encountered
    /// (every write is still attempted, matching what replay does).
    pub fn store_batch(&mut self, writes: &[(usize, Vec<u8>)]) -> Result<(), StoreError> {
        self.flush_writes()?;
        let ops: Vec<JournalOp> = writes
            .iter()
            .map(|(row, values)| JournalOp::Store {
                row: *row,
                values: values.clone(),
            })
            .collect();
        let mut bytes = Vec::new();
        for op in &ops {
            bytes.extend_from_slice(&encode_record(op));
        }
        self.append_sync(&bytes)?;
        self.wal_ops += ops.len();
        let mut first_err = None;
        for op in &ops {
            if let Err(e) = op.apply(&mut self.engine) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    /// Flushes the buffered group if the policy deadline or size
    /// threshold is due.
    fn maybe_flush(&mut self) -> Result<(), StoreError> {
        let due = self.pending_ops >= self.group.max_ops.max(1)
            || self
                .pending_since
                .is_some_and(|t| self.engine.clock().elapsed(t) >= self.group.flush_deadline);
        if due {
            self.flush_writes()?;
        }
        Ok(())
    }

    /// Force-flushes the buffered group (one write + one fsync for all
    /// of it); returns how many records became durable.
    ///
    /// # Errors
    ///
    /// Journal I/O errors.
    pub fn flush_writes(&mut self) -> Result<usize, StoreError> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        let path = self.store.journal_path(self.generation);
        self.store.storage.append(&path, &self.pending)?;
        self.store.storage.sync(&path)?;
        self.wal_ops += self.pending_ops;
        let flushed = self.pending_ops;
        self.pending.clear();
        self.pending_ops = 0;
        self.pending_since = None;
        Ok(flushed)
    }

    /// Buffered records not yet made durable.
    pub fn pending_writes(&self) -> usize {
        self.pending_ops
    }

    /// Injects a cell fault at physical `(row, stage)` (journaled).
    ///
    /// # Errors
    ///
    /// As [`DurableEngine::store`].
    pub fn inject(&mut self, row: usize, stage: usize, kind: FaultKind) -> Result<(), StoreError> {
        self.journaled(JournalOp::Inject { row, stage, kind })
    }

    /// Severs a physical row's chain at a stage (journaled).
    ///
    /// # Errors
    ///
    /// As [`DurableEngine::store`].
    pub fn break_stage(&mut self, row: usize, stage: usize) -> Result<(), StoreError> {
        self.journaled(JournalOp::BreakStage { row, stage })
    }

    /// Sticks one column's shared search line (journaled).
    ///
    /// # Errors
    ///
    /// As [`DurableEngine::store`].
    pub fn stuck_column(&mut self, stage: usize) -> Result<(), StoreError> {
        self.journaled(JournalOp::StuckColumn { stage })
    }

    /// Ages every cell through a lifetime (journaled).
    ///
    /// # Errors
    ///
    /// As [`DurableEngine::store`].
    pub fn age(&mut self, lifetime: &Lifetime) -> Result<(), StoreError> {
        self.journaled(JournalOp::Age {
            lifetime: *lifetime,
        })
    }

    /// Runs a detection + repair cycle now, journaled so a post-crash
    /// replay reaches the same repaired state.
    ///
    /// # Errors
    ///
    /// As [`DurableEngine::store`].
    pub fn repair_now(&mut self) -> Result<(), StoreError> {
        self.journaled(JournalOp::Repair)
    }

    /// Serves a batch. If the health machinery repaired the array during
    /// the batch, a [`JournalOp::Repair`] is appended afterwards — the
    /// repair is re-derivable from detection, so the record only saves
    /// re-paying it on restore, and a crash between the repair and the
    /// append merely re-runs it.
    ///
    /// # Errors
    ///
    /// Batch-level simulation errors ([`StoreError::Sim`]) or journal
    /// I/O errors.
    pub fn serve(&mut self, batch: &BatchQuery) -> Result<BatchOutcome, StoreError> {
        // The flush deadline is also enforced on the read path, so a
        // write burst followed by pure reads cannot park records in the
        // buffer indefinitely.
        if self
            .pending_since
            .is_some_and(|t| self.engine.clock().elapsed(t) >= self.group.flush_deadline)
        {
            self.flush_writes()?;
        }
        let repairs_before = self.engine.stats().repairs;
        let outcome = self.engine.serve(batch)?;
        if self.engine.stats().repairs > repairs_before {
            self.journal(&JournalOp::Repair)?;
        }
        Ok(outcome)
    }

    /// Commits a new checkpoint generation, rotates the journal, and
    /// prunes generations beyond [`KEEP_GENERATIONS`]. Returns the new
    /// generation number.
    ///
    /// # Errors
    ///
    /// Propagates commit failures.
    pub fn checkpoint(&mut self) -> Result<u64, StoreError> {
        self.flush_writes()?;
        let generation = self.store.commit(&self.engine.checkpoint())?;
        self.generation = generation;
        self.wal_ops = 0;
        self.store.prune(KEEP_GENERATIONS)?;
        Ok(generation)
    }
}

// ---------------------------------------------------------------------------
// Crash-injection chaos harness
// ---------------------------------------------------------------------------

/// Configuration of the seeded crash-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashChaosConfig {
    /// Stages per row of the reference deployment.
    pub stages: usize,
    /// Logical data rows.
    pub data_rows: usize,
    /// Resilience configuration (spares/references).
    pub resilience: ResilienceConfig,
    /// Byte stride of the kill-mid-checkpoint-commit sweep (1 = every
    /// byte boundary of the commit sequence).
    pub commit_stride: usize,
    /// Byte stride of the kill-mid-journal-append sweep.
    pub journal_stride: usize,
    /// Seeded single-bit flips in the newest checkpoint file.
    pub checkpoint_flips: usize,
    /// Seeded truncations of the newest checkpoint file.
    pub checkpoint_truncations: usize,
    /// Seeded single-bit flips in the journal.
    pub journal_flips: usize,
    /// Undamaged control recoveries (must report *no* corruption).
    pub clean_controls: usize,
    /// Campaign seed.
    pub seed: u64,
}

impl CrashChaosConfig {
    /// The full campaign: every byte boundary of both commit sequences
    /// plus hundreds of seeded corruptions — well over 1000 scenarios.
    pub fn paper_default() -> Self {
        Self {
            stages: 8,
            data_rows: 4,
            resilience: ResilienceConfig {
                spare_rows: 2,
                reference_rows: 2,
                ..Default::default()
            },
            commit_stride: 1,
            journal_stride: 1,
            checkpoint_flips: 300,
            checkpoint_truncations: 150,
            journal_flips: 150,
            clean_controls: 8,
            seed: 0x0D15_C0DE,
        }
    }

    /// A reduced campaign for smoke tests (still full coverage of every
    /// scenario family).
    pub fn quick() -> Self {
        Self {
            commit_stride: 16,
            journal_stride: 4,
            checkpoint_flips: 40,
            checkpoint_truncations: 20,
            journal_flips: 20,
            clean_controls: 2,
            ..Self::paper_default()
        }
    }
}

/// Aggregate results of one crash-injection campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrashChaosReport {
    /// Total scenarios run.
    pub scenarios: usize,
    /// Simulated kills mid-checkpoint-commit (per byte boundary).
    pub commit_kills: usize,
    /// Simulated kills mid-journal-append (per byte boundary).
    pub journal_kills: usize,
    /// Bit-flip scenarios against the newest checkpoint.
    pub checkpoint_flips: usize,
    /// Truncation scenarios against the newest checkpoint.
    pub checkpoint_truncations: usize,
    /// Bit-flip scenarios against the journal.
    pub journal_flips: usize,
    /// Undamaged control recoveries.
    pub clean_controls: usize,
    /// Scenarios where recovery flagged corruption.
    pub detected: usize,
    /// Scenarios that fell back to an older generation.
    pub fallbacks: usize,
    /// Scenarios with a truncated journal tail.
    pub torn_journals: usize,
    /// Recoveries whose state diverged from the independently computed
    /// expectation without the damage being detected — **the number
    /// that must be zero**.
    pub silent_corruptions: usize,
    /// Recoveries that errored although a good generation existed, or
    /// that recovered the wrong generation/op count.
    pub failed_recoveries: usize,
    /// Clean recoveries that wrongly reported corruption.
    pub false_alarms: usize,
}

/// SplitMix64: cheap deterministic stream derivation for scenario seeds.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Byte spans `[start, end)` of each journal record in a WAL image
/// (header excluded).
fn record_spans(wal: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pos = 16usize;
    while pos + 4 <= wal.len() {
        let len = u32::from_le_bytes(wal[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let end = pos + 8 + len;
        if end > wal.len() {
            break;
        }
        spans.push((pos, end));
        pos = end;
    }
    spans
}

struct Scenario<'a> {
    /// Files to materialize in the scenario directory.
    files: Vec<(String, &'a [u8])>,
    /// Generation the recovery must come back on.
    expect_generation: u64,
    /// Journal ops the recovery must replay.
    expect_ops: usize,
    /// Recovery must flag corruption.
    must_detect: bool,
    /// Recovery must *not* flag corruption.
    must_be_clean: bool,
}

/// Runs one recovery against a scenario directory and captures the
/// recovered deployment.
fn run_scenario_recovery(
    dir: &Path,
    files: &[(String, &[u8])],
    cfg: RuntimeConfig,
) -> Result<(DeploymentState, RecoveryReport), StoreError> {
    if dir.exists() {
        fs::remove_dir_all(dir)?; // [real-disk ok] crash campaign scratch
    }
    fs::create_dir_all(dir)?; // [real-disk ok] crash campaign scratch
    for (name, bytes) in files {
        fs::write(dir.join(name), bytes)?; // [real-disk ok] crash campaign scratch
    }
    let (engine, report) = DurableEngine::recover(dir, cfg)?;
    Ok((engine.engine().checkpoint(), report))
}

/// Runs the seeded crash-injection campaign in `scratch` (a disposable
/// directory; its contents are recreated per scenario).
///
/// A reference deployment is built from the seed, checkpointed, mutated
/// through journaled ops, and checkpointed again; the campaign then
/// damages copies of those on-disk images — kills at every byte
/// boundary of both commit sequences, seeded bit flips, truncations —
/// runs recovery on each, and compares the recovered deployment
/// *bit-for-bit* against the independently replayed expectation for the
/// generation and op count recovery claims. Any undetected divergence
/// counts as a silent corruption.
///
/// # Errors
///
/// Propagates filesystem errors and reference-deployment construction
/// failures (never scenario-level recovery errors — those are counted).
pub fn run_crash_chaos(
    cfg: &CrashChaosConfig,
    scratch: &Path,
) -> Result<CrashChaosReport, StoreError> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let rcfg = RuntimeConfig {
        retry: RetryConfig {
            max_retries: 2,
            backoff: std::time::Duration::ZERO,
            backoff_cap: std::time::Duration::ZERO,
        },
        ..RuntimeConfig::default()
    };
    let data_cfg = ArrayConfig::paper_default()
        .with_stages(cfg.stages)
        .with_rows(cfg.data_rows);
    let levels = data_cfg.encoding.levels() as usize;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let rand_row = |rng: &mut StdRng| -> Vec<u8> {
        (0..cfg.stages)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect()
    };

    // Reference deployment: seeded rows, checkpoint 1.
    let mut engine = ResilientEngine::new(data_cfg, cfg.resilience, rcfg)?;
    for r in 0..cfg.data_rows {
        let values = rand_row(&mut rng);
        engine.store(r, &values)?;
    }
    let state1 = engine.checkpoint();
    let ckpt1 = encode_checkpoint(&state1);

    // Post-checkpoint mutations (the journal's contents).
    let ops = vec![
        JournalOp::Store {
            row: 0,
            values: rand_row(&mut rng),
        },
        JournalOp::Inject {
            row: 1,
            stage: cfg.stages / 2,
            kind: FaultKind::VthDrift {
                window_fraction: 0.35,
            },
        },
        JournalOp::Repair,
        JournalOp::Age {
            lifetime: Lifetime {
                cycles: 1e6,
                seconds: 1e5,
                retention: RetentionParams::default(),
                endurance: EnduranceParams::default(),
            },
        },
        JournalOp::Store {
            row: cfg.data_rows - 1,
            values: rand_row(&mut rng),
        },
    ];
    let mut wal1 = journal_header();
    for op in &ops {
        wal1.extend_from_slice(&encode_record(op));
    }
    let spans = record_spans(&wal1);

    // Expected states per replayed-op count, computed through the same
    // restore-and-replay path recovery uses.
    let mut exp_g1 = Vec::with_capacity(ops.len() + 1);
    let mut replayed = ResilientEngine::restore(&state1, rcfg)?;
    exp_g1.push(replayed.checkpoint());
    for op in &ops {
        op.apply(&mut replayed)?;
        exp_g1.push(replayed.checkpoint());
    }
    let state2 = exp_g1.last().expect("nonempty").clone();
    let ckpt2 = encode_checkpoint(&state2);
    let wal2 = journal_header();
    let exp_g2 = ResilientEngine::restore(&state2, rcfg)?.checkpoint();

    let n_ops = ops.len();
    let dir = scratch.join("scenario");
    let mut report = CrashChaosReport::default();

    let ckpt1_name = "ckpt-00000001.tdam".to_string();
    let wal1_name = "wal-00000001.tdam".to_string();
    let ckpt2_name = "ckpt-00000002.tdam".to_string();
    let wal2_name = "wal-00000002.tdam".to_string();

    let judge = |report: &mut CrashChaosReport,
                 scenario: &Scenario<'_>,
                 outcome: Result<(DeploymentState, RecoveryReport), StoreError>| {
        report.scenarios += 1;
        match outcome {
            Ok((state, rec)) => {
                report.detected += usize::from(rec.corruption_detected);
                report.fallbacks += usize::from(rec.fell_back);
                report.torn_journals += usize::from(rec.journal_torn);
                let expected = if rec.generation == 2 {
                    Some(&exp_g2)
                } else if rec.generation == 1 {
                    exp_g1.get(rec.ops_replayed)
                } else {
                    None
                };
                let provenance_ok = rec.generation == scenario.expect_generation
                    && rec.ops_replayed == scenario.expect_ops
                    && rec.ops_skipped == 0;
                let state_ok = expected.is_some_and(|e| *e == state);
                if !state_ok {
                    // The recovered deployment diverges from what the
                    // claimed provenance must produce: serving it would
                    // be corruption. Detected or not, it is silent wrt
                    // the data actually returned.
                    report.silent_corruptions += 1;
                } else if !provenance_ok {
                    report.failed_recoveries += 1;
                } else if scenario.must_detect && !rec.corruption_detected {
                    report.silent_corruptions += 1;
                } else if scenario.must_be_clean && rec.corruption_detected {
                    report.false_alarms += 1;
                }
            }
            Err(_) => {
                // An intact older generation always existed in these
                // scenarios, so refusing to recover is a failure (but
                // never a *silent* one).
                report.failed_recoveries += 1;
            }
        }
    };

    // Family A: kill mid-checkpoint-commit, at every byte boundary of
    // the second checkpoint's temp-file write. The WAL already holds
    // every op, so recovery must reproduce the full pre-crash state
    // from generation 1 regardless of where the write died.
    let tmp2_name = format!("{ckpt2_name}.tmp");
    let mut k = 0usize;
    loop {
        let partial = &ckpt2[..k.min(ckpt2.len())];
        let scenario = Scenario {
            files: vec![
                (ckpt1_name.clone(), ckpt1.as_slice()),
                (wal1_name.clone(), wal1.as_slice()),
                (tmp2_name.clone(), partial),
            ],
            expect_generation: 1,
            expect_ops: n_ops,
            must_detect: false,
            must_be_clean: false,
        };
        let outcome = run_scenario_recovery(&dir, &scenario.files, rcfg);
        judge(&mut report, &scenario, outcome);
        report.commit_kills += 1;
        if k >= ckpt2.len() {
            break;
        }
        k = (k + cfg.commit_stride.max(1)).min(ckpt2.len());
    }
    // ...and the kill between the rename and the fresh-journal write:
    // generation 2 exists, its journal does not.
    let scenario = Scenario {
        files: vec![
            (ckpt1_name.clone(), ckpt1.as_slice()),
            (wal1_name.clone(), wal1.as_slice()),
            (ckpt2_name.clone(), ckpt2.as_slice()),
        ],
        expect_generation: 2,
        expect_ops: 0,
        must_detect: false,
        must_be_clean: false,
    };
    let outcome = run_scenario_recovery(&dir, &scenario.files, rcfg);
    judge(&mut report, &scenario, outcome);
    report.commit_kills += 1;

    // Family B: kill mid-journal-append, at every byte boundary of the
    // WAL image. Recovery replays the complete-record prefix; a cut
    // inside a record must be flagged as a torn tail.
    let mut j = 0usize;
    loop {
        let cut = &wal1[..j.min(wal1.len())];
        let complete = spans.iter().filter(|&&(_, end)| end <= j).count();
        let at_boundary = j >= 16 && (j == wal1.len() || spans.iter().any(|&(s, _)| s == j));
        let scenario = Scenario {
            files: vec![
                (ckpt1_name.clone(), ckpt1.as_slice()),
                (wal1_name.clone(), cut),
            ],
            expect_generation: 1,
            expect_ops: if j < 16 { 0 } else { complete },
            must_detect: !at_boundary,
            must_be_clean: false,
        };
        let outcome = run_scenario_recovery(&dir, &scenario.files, rcfg);
        judge(&mut report, &scenario, outcome);
        report.journal_kills += 1;
        if j >= wal1.len() {
            break;
        }
        j = (j + cfg.journal_stride.max(1)).min(wal1.len());
    }

    // Family C: single-bit flips in the committed newest checkpoint.
    // Every flip must be detected (magic/length/CRC) and recovery must
    // fall back to generation 1 + full journal — the identical state.
    for i in 0..cfg.checkpoint_flips {
        let s = mix(cfg.seed ^ mix(0xC001 + i as u64));
        let mut damaged = ckpt2.clone();
        let byte = (s % damaged.len() as u64) as usize;
        damaged[byte] ^= 1 << ((s >> 32) % 8);
        let scenario = Scenario {
            files: vec![
                (ckpt1_name.clone(), ckpt1.as_slice()),
                (wal1_name.clone(), wal1.as_slice()),
                (ckpt2_name.clone(), damaged.as_slice()),
                (wal2_name.clone(), wal2.as_slice()),
            ],
            expect_generation: 1,
            expect_ops: n_ops,
            must_detect: true,
            must_be_clean: false,
        };
        let outcome = run_scenario_recovery(&dir, &scenario.files, rcfg);
        judge(&mut report, &scenario, outcome);
        report.checkpoint_flips += 1;
    }

    // Family D: truncations of the newest checkpoint.
    for i in 0..cfg.checkpoint_truncations {
        let s = mix(cfg.seed ^ mix(0x7A0B + i as u64));
        let cut = (s % ckpt2.len() as u64) as usize;
        let scenario = Scenario {
            files: vec![
                (ckpt1_name.clone(), ckpt1.as_slice()),
                (wal1_name.clone(), wal1.as_slice()),
                (ckpt2_name.clone(), &ckpt2[..cut]),
                (wal2_name.clone(), wal2.as_slice()),
            ],
            expect_generation: 1,
            expect_ops: n_ops,
            must_detect: true,
            must_be_clean: false,
        };
        let outcome = run_scenario_recovery(&dir, &scenario.files, rcfg);
        judge(&mut report, &scenario, outcome);
        report.checkpoint_truncations += 1;
    }

    // Family E: single-bit flips in the journal (pre-commit layout).
    // A flipped header quarantines the journal (base state only); a
    // flipped record stops replay at that record. Either way the damage
    // must be flagged and the recovered state must match the replayed
    // prefix exactly.
    for i in 0..cfg.journal_flips {
        let s = mix(cfg.seed ^ mix(0xF11B + i as u64));
        let mut damaged = wal1.clone();
        let byte = (s % damaged.len() as u64) as usize;
        damaged[byte] ^= 1 << ((s >> 32) % 8);
        let prefix = if byte < 16 {
            0
        } else {
            spans.iter().filter(|&&(_, end)| end <= byte).count()
        };
        let scenario = Scenario {
            files: vec![
                (ckpt1_name.clone(), ckpt1.as_slice()),
                (wal1_name.clone(), damaged.as_slice()),
            ],
            expect_generation: 1,
            expect_ops: prefix,
            must_detect: true,
            must_be_clean: false,
        };
        let outcome = run_scenario_recovery(&dir, &scenario.files, rcfg);
        judge(&mut report, &scenario, outcome);
        report.journal_flips += 1;
    }

    // Family F: undamaged control recoveries — no false alarms allowed.
    for _ in 0..cfg.clean_controls {
        let scenario = Scenario {
            files: vec![
                (ckpt1_name.clone(), ckpt1.as_slice()),
                (wal1_name.clone(), wal1.as_slice()),
                (ckpt2_name.clone(), ckpt2.as_slice()),
                (wal2_name.clone(), wal2.as_slice()),
            ],
            expect_generation: 2,
            expect_ops: 0,
            must_detect: false,
            must_be_clean: true,
        };
        let outcome = run_scenario_recovery(&dir, &scenario.files, rcfg);
        judge(&mut report, &scenario, outcome);
        report.clean_controls += 1;
    }

    if dir.exists() {
        let _ = fs::remove_dir_all(&dir); // [real-disk ok] crash campaign scratch
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tdam-store-{}-{tag}", std::process::id()));
        if dir.exists() {
            fs::remove_dir_all(&dir).expect("clear scratch");
        }
        fs::create_dir_all(&dir).expect("create scratch");
        dir
    }

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: &T) {
        let mut w = Writer::new();
        value.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::decode(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0, "trailing bytes after {value:?}");
        assert_eq!(&back, value);
    }

    fn small_engine(seed_rows: &[&[u8]]) -> ResilientEngine {
        let cfg = ArrayConfig::paper_default().with_stages(6).with_rows(4);
        let res = ResilienceConfig {
            spare_rows: 1,
            reference_rows: 2,
            ..Default::default()
        };
        let rcfg = RuntimeConfig {
            retry: RetryConfig {
                max_retries: 1,
                backoff: std::time::Duration::ZERO,
                backoff_cap: std::time::Duration::ZERO,
            },
            ..RuntimeConfig::default()
        };
        let mut engine = ResilientEngine::new(cfg, res, rcfg).expect("engine");
        for (r, values) in seed_rows.iter().enumerate() {
            engine.store(r, values).expect("seed row");
        }
        engine
    }

    #[test]
    fn crc32_matches_reference_check_value() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitive_codecs_roundtrip() {
        for v in [0u8, 1, 7, 255] {
            roundtrip(&v);
        }
        for v in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            roundtrip(&v);
        }
        for v in [0usize, 3, usize::MAX] {
            roundtrip(&v);
        }
        for v in [0.0f64, -0.0, 1.5, -3.25e-9, f64::MAX, f64::MIN_POSITIVE] {
            roundtrip(&v);
        }
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&vec![1u8, 2, 3]);
        roundtrip(&Vec::<u64>::new());
        roundtrip(&(0.42f64, -0.17f64));
    }

    #[test]
    fn nan_survives_bit_exactly() {
        let nan = f64::from_bits(0x7FF8_0000_0000_0001);
        let mut w = Writer::new();
        nan.encode(&mut w);
        let bytes = w.into_bytes();
        let back = f64::decode(&mut Reader::new(&bytes)).expect("decode");
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn bad_bool_is_rejected() {
        assert!(bool::decode(&mut Reader::new(&[2])).is_err());
    }

    #[test]
    fn oversized_vec_length_is_rejected_without_allocation() {
        let mut w = Writer::new();
        w.put_usize(1 << 40);
        let bytes = w.into_bytes();
        assert!(Vec::<u8>::decode(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn domain_codecs_roundtrip() {
        // Field-level compatibility pins for every type in the on-disk
        // format: a changed/added/removed field breaks these.
        for stages in [2usize, 6, 17] {
            roundtrip(
                &ArrayConfig::paper_default()
                    .with_stages(stages)
                    .with_rows(3),
            );
        }
        let engine = small_engine(&[&[1, 2, 3, 0, 1, 2]]);
        roundtrip(engine.array().array().timing());

        let mut faults = FaultMap::new();
        faults.inject(0, 1, FaultKind::StuckMismatch);
        faults.inject(2, 5, FaultKind::StuckMatch);
        faults.inject(
            1,
            3,
            FaultKind::VthDrift {
                window_fraction: 0.37,
            },
        );
        roundtrip(&faults);
        roundtrip(&FaultMap::new());

        roundtrip(&ResilienceConfig::default());
        for health in [
            RowHealth::Healthy,
            RowHealth::Repaired,
            RowHealth::Remapped,
            RowHealth::Degraded,
            RowHealth::Dead,
        ] {
            roundtrip(&health);
        }

        roundtrip(&RetentionParams::default());
        roundtrip(&EnduranceParams::default());
        roundtrip(&Lifetime::fresh());
        roundtrip(&Lifetime {
            cycles: 2.5e7,
            seconds: 3.1e4,
            retention: RetentionParams {
                loss_per_decade: 0.02,
                t0: 2.0,
            },
            endurance: EnduranceParams::default(),
        });

        for backend in [
            BackendKind::CompiledLut,
            BackendKind::Behavioral,
            BackendKind::DegradedMasked,
        ] {
            roundtrip(&backend);
        }
        roundtrip(&RuntimeStats {
            batches: 1,
            queries: 2,
            answered: 3,
            timed_out: 4,
            failed: 5,
            retries: 6,
            backoff_waits: 13,
            breaker_trips: 14,
            recompiles: 7,
            health_checks: 8,
            health_misses: 9,
            repairs: 10,
            demotions: 11,
            promotions: 12,
            user_writes: 15,
            physical_writes: 16,
            wear_rotations: 17,
            refresh_rewrites: 18,
            incremental_repacks: 19,
            rows_repacked: 20,
            epoch_swaps: 21,
            scrub_ticks: 22,
            scrub_probes: 23,
            scrub_heals: 24,
            corpus_cache_hits: 25,
            corpus_cache_misses: 26,
            corpus_cache_evictions: 27,
            corpus_compile_micros: 28,
        });
    }

    #[test]
    fn randomized_states_roundtrip() {
        // Property-style seeded sweep: random deployments (rows, faults,
        // remaps, runtime counters) must survive the full
        // encode → frame → CRC → decode path bit-exactly.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(0x5EED ^ seed);
            let stages = 2 + rng.gen_range(0..6_usize);
            let rows = 1 + rng.gen_range(0..4_usize);
            let cfg = ArrayConfig::paper_default()
                .with_stages(stages)
                .with_rows(rows);
            let levels = cfg.encoding.levels() as usize;
            let resilience = ResilienceConfig {
                spare_rows: rng.gen_range(0..3_usize),
                reference_rows: 2,
                ..Default::default()
            };
            let mut engine =
                ResilientEngine::new(cfg, resilience, RuntimeConfig::default()).expect("engine");
            for r in 0..rows {
                let values: Vec<u8> = (0..stages)
                    .map(|_| rng.gen_range(0..levels) as u8)
                    .collect();
                engine.store(r, &values).expect("store");
            }
            for _ in 0..rng.gen_range(0..4_usize) {
                let row = rng.gen_range(0..rows);
                let stage = rng.gen_range(0..stages);
                let kind = match rng.gen_range(0..3_usize) {
                    0 => FaultKind::StuckMismatch,
                    1 => FaultKind::StuckMatch,
                    _ => FaultKind::VthDrift {
                        window_fraction: 0.1 + 0.05 * rng.gen_range(0..10_usize) as f64,
                    },
                };
                engine.array_mut().inject(row, stage, kind).expect("inject");
            }
            let mut state = engine.checkpoint();
            state.runtime.stats.batches = rng.gen_range(0..1000_usize);
            state.runtime.breaker_misses = rng.gen_range(0..4_usize);
            let bytes = encode_checkpoint(&state);
            assert_eq!(decode_checkpoint(&bytes).expect("decode"), state);
        }
    }

    #[test]
    fn fault_kind_wire_tags_are_pinned() {
        let enc = |kind: FaultKind| {
            let mut w = Writer::new();
            kind.encode(&mut w);
            w.into_bytes()
        };
        assert_eq!(enc(FaultKind::StuckMismatch), vec![0]);
        assert_eq!(enc(FaultKind::StuckMatch), vec![1]);
        let drift = enc(FaultKind::VthDrift {
            window_fraction: 0.5,
        });
        assert_eq!(drift[0], 2);
        assert_eq!(drift[1..], 0.5f64.to_bits().to_le_bytes());
    }

    #[test]
    fn checkpoint_framing_is_pinned() {
        let engine = small_engine(&[&[0, 1, 2, 3, 0, 1]]);
        let bytes = encode_checkpoint(&engine.checkpoint());
        assert_eq!(&bytes[..8], b"TDAMCKPT");
        assert_eq!(bytes[8..12], FORMAT_VERSION.to_le_bytes());
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        assert_eq!(bytes.len(), 24 + payload_len);
        let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        assert_eq!(stored_crc, crc32(&bytes[8..bytes.len() - 4]));
        assert!(decode_checkpoint(&bytes).is_ok());
    }

    #[test]
    fn journal_framing_is_pinned() {
        let header = journal_header();
        assert_eq!(header.len(), 16);
        assert_eq!(&header[..8], b"TDAMJRNL");
        assert_eq!(header[8..12], FORMAT_VERSION.to_le_bytes());
        assert_eq!(
            header[12..16],
            crc32(&FORMAT_VERSION.to_le_bytes()).to_le_bytes()
        );

        let op = JournalOp::BreakStage { row: 1, stage: 2 };
        let rec = encode_record(&op);
        let len = u32::from_le_bytes(rec[..4].try_into().expect("4 bytes")) as usize;
        assert_eq!(rec.len(), 8 + len);
        let stored_crc = u32::from_le_bytes(rec[rec.len() - 4..].try_into().expect("4 bytes"));
        assert_eq!(stored_crc, crc32(&rec[4..4 + len]));
    }

    #[test]
    fn journal_ops_roundtrip() {
        let ops = vec![
            JournalOp::Store {
                row: 2,
                values: vec![3, 1, 0, 2, 3, 1],
            },
            JournalOp::Inject {
                row: 0,
                stage: 4,
                kind: FaultKind::VthDrift {
                    window_fraction: 0.25,
                },
            },
            JournalOp::BreakStage { row: 1, stage: 0 },
            JournalOp::StuckColumn { stage: 3 },
            JournalOp::Age {
                lifetime: Lifetime {
                    cycles: 1e5,
                    seconds: 1e3,
                    retention: RetentionParams::default(),
                    endurance: EnduranceParams::default(),
                },
            },
            JournalOp::Repair,
        ];
        let mut wal = journal_header();
        for op in &ops {
            wal.extend_from_slice(&encode_record(op));
        }
        let (back, torn) = read_journal(&wal).expect("journal");
        assert!(!torn);
        assert_eq!(back, ops);
    }

    #[test]
    fn torn_journal_yields_valid_prefix() {
        let ops = [
            JournalOp::StuckColumn { stage: 1 },
            JournalOp::BreakStage { row: 0, stage: 2 },
            JournalOp::Repair,
        ];
        let mut wal = journal_header();
        for op in &ops {
            wal.extend_from_slice(&encode_record(op));
        }
        let cut = wal.len() - 3;
        let (back, torn) = read_journal(&wal[..cut]).expect("journal");
        assert!(torn);
        assert_eq!(back, ops[..2]);
    }

    #[test]
    fn corrupt_journal_header_is_an_error() {
        let mut wal = journal_header();
        wal[3] ^= 0x40;
        assert!(read_journal(&wal).is_err());
        assert!(read_journal(&journal_header()[..7]).is_err());
    }

    #[test]
    fn checkpoint_roundtrips_through_bytes() {
        let mut engine = small_engine(&[&[1, 0, 3, 2, 1, 0], &[2, 2, 2, 2, 2, 2]]);
        engine
            .array_mut()
            .inject(1, 2, FaultKind::StuckMismatch)
            .expect("inject");
        let state = engine.checkpoint();
        let bytes = encode_checkpoint(&state);
        let back = decode_checkpoint(&bytes).expect("decode");
        assert_eq!(back, state);
    }

    #[test]
    fn every_flipped_bit_in_a_checkpoint_is_detected() {
        let engine = small_engine(&[&[1, 2, 3, 0, 1, 2]]);
        let bytes = encode_checkpoint(&engine.checkpoint());
        for byte in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[byte] ^= 1 << (byte % 8);
            assert!(
                decode_checkpoint(&damaged).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
        for cut in 0..bytes.len() {
            assert!(
                decode_checkpoint(&bytes[..cut]).is_err(),
                "truncation at byte {cut} went undetected"
            );
        }
    }

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let dir = scratch("atomic");
        let path = dir.join("file.bin");
        atomic_write(&path, b"first").expect("write");
        atomic_write(&path, b"second").expect("overwrite");
        assert_eq!(fs::read(&path).expect("read"), b"second");
        let residue: Vec<_> = fs::read_dir(&dir)
            .expect("read_dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(residue.is_empty(), "temp files left behind: {residue:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_bumps_generation_and_revalidates() {
        let engine = small_engine(&[&[3, 1, 2, 0, 3, 1]]);
        let state = engine.checkpoint();
        let restored = ResilientEngine::restore(&state, *engine.runtime_config()).expect("restore");
        assert_eq!(restored.array().array().generation(), state.generation + 1);
        assert_eq!(restored.backend(), BackendKind::Behavioral);
        for r in 0..restored.array().data_rows() {
            let restored_row = restored
                .array()
                .array()
                .stored(restored.array().physical_row(r).expect("row"))
                .expect("restored row");
            let live_row = engine
                .array()
                .array()
                .stored(engine.array().physical_row(r).expect("row"))
                .expect("live row");
            assert_eq!(restored_row, live_row);
        }
    }

    #[test]
    fn durable_engine_recovers_journaled_mutations() {
        let dir = scratch("recover");
        let rcfg = *small_engine(&[]).runtime_config();
        {
            let store = CheckpointStore::open(&dir).expect("open store");
            let mut durable =
                DurableEngine::new(store, small_engine(&[&[1, 1, 2, 2, 3, 3]])).expect("durable");
            durable.store(1, &[0, 3, 0, 3, 0, 3]).expect("store");
            durable.inject(0, 2, FaultKind::StuckMatch).expect("inject");
            assert_eq!(durable.generation(), 1);
            assert_eq!(durable.journal_ops(), 2);
            // Simulated crash: drop without checkpointing.
        }
        let (durable, report) = DurableEngine::recover(&dir, rcfg).expect("recover");
        assert_eq!(report.generation, 1);
        assert_eq!(report.ops_replayed, 2);
        assert_eq!(report.ops_skipped, 0);
        assert!(!report.corruption_detected);
        assert!(!report.fell_back);
        let arr = durable.engine().array();
        let phys = arr.physical_row(1).expect("row");
        assert_eq!(
            arr.array().stored(phys).expect("stored"),
            vec![0, 3, 0, 3, 0, 3]
        );
        assert_eq!(
            arr.faults().get(phys_of(arr, 0), 2),
            Some(FaultKind::StuckMatch)
        );
        fs::remove_dir_all(&dir).ok();
    }

    fn phys_of(arr: &crate::resilience::ResilientArray, logical: usize) -> usize {
        arr.physical_row(logical).expect("logical row")
    }

    #[test]
    fn group_commit_defers_then_flushes_and_recovers() {
        let dir = scratch("group_commit");
        let rcfg = *small_engine(&[]).runtime_config();
        {
            let store = CheckpointStore::open(&dir).expect("open store");
            let mut durable = DurableEngine::new(store, small_engine(&[&[1, 1, 2, 2, 3, 3]]))
                .expect("durable")
                .with_group_commit(GroupCommitPolicy {
                    max_ops: 3,
                    flush_deadline: Duration::from_secs(3600),
                });
            // Two buffered writes: live immediately, durable later.
            durable.store_buffered(0, &[3, 2, 1, 0, 3, 2]).expect("w0");
            durable.store_buffered(1, &[0, 3, 0, 3, 0, 3]).expect("w1");
            assert_eq!(durable.pending_writes(), 2);
            assert_eq!(durable.journal_ops(), 0, "not yet flushed");
            // Third write reaches max_ops: the group lands with one
            // fsync.
            durable.store_buffered(0, &[2, 2, 2, 2, 2, 2]).expect("w2");
            assert_eq!(durable.pending_writes(), 0);
            assert_eq!(durable.journal_ops(), 3);
            // A synchronous op after a fresh buffered write must flush
            // the buffer first so the journal replays in apply order.
            durable.store_buffered(1, &[1, 0, 1, 0, 1, 0]).expect("w3");
            durable.inject(0, 2, FaultKind::StuckMatch).expect("inject");
            assert_eq!(durable.pending_writes(), 0);
            assert_eq!(durable.journal_ops(), 5);
            // Simulated crash: drop without checkpointing.
        }
        let (durable, report) = DurableEngine::recover(&dir, rcfg).expect("recover");
        assert_eq!(report.ops_replayed, 5);
        assert_eq!(report.ops_skipped, 0);
        let arr = durable.engine().array();
        assert_eq!(
            arr.array().stored(phys_of(arr, 0)).expect("row 0"),
            vec![2, 2, 2, 2, 2, 2]
        );
        assert_eq!(
            arr.array().stored(phys_of(arr, 1)).expect("row 1"),
            vec![1, 0, 1, 0, 1, 0]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_batch_amortizes_one_fsync_over_the_writes() {
        let dir = scratch("store_batch");
        let rcfg = *small_engine(&[]).runtime_config();
        {
            let store = CheckpointStore::open(&dir).expect("open store");
            let mut durable =
                DurableEngine::new(store, small_engine(&[&[1, 1, 2, 2, 3, 3]])).expect("durable");
            durable
                .store_batch(&[
                    (0, vec![3, 3, 3, 3, 3, 3]),
                    (1, vec![0, 1, 2, 3, 0, 1]),
                    (0, vec![1, 1, 1, 1, 1, 1]),
                ])
                .expect("batch");
            assert_eq!(durable.journal_ops(), 3);
            assert_eq!(durable.pending_writes(), 0);
        }
        let (durable, report) = DurableEngine::recover(&dir, rcfg).expect("recover");
        assert_eq!(report.ops_replayed, 3);
        let arr = durable.engine().array();
        assert_eq!(
            arr.array().stored(phys_of(arr, 0)).expect("row 0"),
            vec![1, 1, 1, 1, 1, 1],
            "last write in the batch wins"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_generation_falls_back() {
        let dir = scratch("fallback");
        let rcfg = *small_engine(&[]).runtime_config();
        {
            let store = CheckpointStore::open(&dir).expect("open store");
            let mut durable =
                DurableEngine::new(store, small_engine(&[&[2, 0, 1, 3, 2, 0]])).expect("durable");
            durable.store(0, &[3, 3, 3, 3, 3, 3]).expect("store");
            durable.checkpoint().expect("checkpoint");
            assert_eq!(durable.generation(), 2);
        }
        let ckpt2 = dir.join("ckpt-00000002.tdam");
        let mut bytes = fs::read(&ckpt2).expect("read ckpt2");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&ckpt2, &bytes).expect("damage ckpt2");

        let (durable, report) = DurableEngine::recover(&dir, rcfg).expect("recover");
        assert_eq!(report.generation, 1);
        assert!(report.corruption_detected);
        assert!(report.fell_back);
        assert!(!report.quarantined.is_empty());
        assert!(dir.join("ckpt-00000002.tdam.quarantined").exists());
        // The journaled store op carries the post-checkpoint value.
        let arr = durable.engine().array();
        assert_eq!(
            arr.array().stored(phys_of(arr, 0)).expect("stored"),
            vec![3, 3, 3, 3, 3, 3]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_without_any_checkpoint_is_no_checkpoint() {
        let dir = scratch("empty");
        let rcfg = *small_engine(&[]).runtime_config();
        assert!(matches!(
            DurableEngine::recover(&dir, rcfg),
            Err(StoreError::NoCheckpoint)
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_newest_generations() {
        let dir = scratch("prune");
        let store = CheckpointStore::open(&dir).expect("open store");
        let mut durable =
            DurableEngine::new(store, small_engine(&[&[1, 2, 1, 2, 1, 2]])).expect("durable");
        for _ in 0..3 {
            durable.store(0, &[0, 0, 0, 0, 0, 0]).expect("store");
            durable.checkpoint().expect("checkpoint");
        }
        assert_eq!(durable.generation(), 4);
        let gens = durable.checkpoint_store().generations().expect("gens");
        assert_eq!(gens, vec![3, 4]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quick_crash_campaign_has_no_silent_corruption() {
        let dir = scratch("chaos-quick");
        let report = run_crash_chaos(&CrashChaosConfig::quick(), &dir).expect("campaign");
        assert!(report.scenarios > 100, "campaign too small: {report:?}");
        assert_eq!(report.silent_corruptions, 0, "{report:?}");
        assert_eq!(report.failed_recoveries, 0, "{report:?}");
        assert_eq!(report.false_alarms, 0, "{report:?}");
        assert!(report.detected > 0);
        assert!(report.fallbacks > 0);
        assert!(report.torn_journals > 0);
        fs::remove_dir_all(&dir).ok();
    }
}
