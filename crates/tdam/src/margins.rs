//! Precision feasibility: sensing margins for 1–4-bit cells under
//! threshold-voltage variation.
//!
//! The paper's Monte Carlo section closes by noting "an intriguing
//! potential of our design for supporting higher precision, e.g., 3- or
//! 4-bit storage and computation". This module makes that analysis
//! concrete: packing `2^n` levels into the fixed 1.2 V programming window
//! shrinks the overdrive margin between adjacent states to
//! `0.6 V / (2^n − 1)`, and V_TH variation turns that margin into a
//! per-cell misclassification probability
//! `P_err = Φ(−margin / σ)` (a Gaussian tail). From there the expected
//! number of wrongly-counted stages per chain and the maximum chain
//! length that keeps the decode reliable follow in closed form.

use crate::cell::VoltageLadder;
use crate::encoding::Encoding;
use crate::TdamError;
use serde::{Deserialize, Serialize};
use tdam_num::dist::normal_cdf;

/// Margin analysis for one element precision at one variation level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarginReport {
    /// Bits per cell analyzed.
    pub bits: u8,
    /// V_TH variation level (σ), volts.
    pub sigma: f64,
    /// Overdrive margin between a matching cell and an adjacent-level
    /// mismatch, volts (`step / 2`).
    pub margin: f64,
    /// Probability that a single cell miscounts (false conduction on a
    /// match, or a missed adjacent mismatch).
    pub p_cell_error: f64,
    /// Expected miscounted stages in a chain of `N`: `N · p_cell_error`
    /// evaluated at `N = 1` (scale linearly).
    pub expected_errors_per_stage: f64,
    /// Longest chain whose expected decode error stays below half a
    /// count (`N · p ≤ 0.5`); `usize::MAX` when `p = 0`.
    pub max_reliable_chain: usize,
}

/// Analyzes the sensing margin of `bits`-bit cells under variation `sigma`.
///
/// # Errors
///
/// Returns [`TdamError::InvalidConfig`] for a negative or non-finite
/// sigma, or bit widths outside `1..=4`.
///
/// # Examples
///
/// ```
/// use tdam::margins::analyze;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let two_bit = analyze(2, 45e-3)?;
/// let four_bit = analyze(4, 45e-3)?;
/// assert!(two_bit.margin > four_bit.margin);
/// assert!(two_bit.max_reliable_chain > four_bit.max_reliable_chain);
/// # Ok(())
/// # }
/// ```
pub fn analyze(bits: u8, sigma: f64) -> Result<MarginReport, TdamError> {
    if !sigma.is_finite() || sigma < 0.0 {
        return Err(TdamError::InvalidConfig {
            what: "sigma must be finite and nonnegative",
        });
    }
    let encoding = Encoding::new(bits)?;
    let ladder = VoltageLadder::for_encoding(encoding);
    let margin = ladder.step() / 2.0;
    let p_cell_error = if sigma == 0.0 {
        0.0
    } else {
        normal_cdf(-margin / sigma)
    };
    let max_reliable_chain = if p_cell_error <= 0.0 {
        usize::MAX
    } else {
        (0.5 / p_cell_error) as usize
    };
    Ok(MarginReport {
        bits,
        sigma,
        margin,
        p_cell_error,
        expected_errors_per_stage: p_cell_error,
        max_reliable_chain,
    })
}

/// Sweeps all four precisions at one variation level.
///
/// # Errors
///
/// As [`analyze`].
pub fn precision_sweep(sigma: f64) -> Result<Vec<MarginReport>, TdamError> {
    (1..=4u8).map(|b| analyze(b, sigma)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margins_shrink_with_precision() {
        let reports = precision_sweep(45e-3).expect("sweep");
        assert_eq!(reports.len(), 4);
        for w in reports.windows(2) {
            assert!(w[0].margin > w[1].margin);
            assert!(w[0].p_cell_error <= w[1].p_cell_error);
            assert!(w[0].max_reliable_chain >= w[1].max_reliable_chain);
        }
        // 2-bit margin is the paper's 0.2 V.
        assert!((reports[1].margin - 0.2).abs() < 1e-12);
    }

    #[test]
    fn two_bit_at_experimental_sigma_is_safe() {
        // Worst experimental state sigma is 45 mV: margin/sigma ≈ 4.4σ,
        // per-cell error ~5e-6 → chains of thousands of stages decode
        // reliably.
        let r = analyze(2, 45e-3).expect("analyze");
        assert!(r.p_cell_error < 1e-5, "p = {}", r.p_cell_error);
        assert!(r.max_reliable_chain > 1000);
    }

    #[test]
    fn four_bit_needs_tighter_variation() {
        // 4-bit margin is 0.04 V: at 45 mV sigma the cell is unreliable,
        // at 7 mV (the paper's best state) it works for realistic chains.
        let loose = analyze(4, 45e-3).expect("analyze");
        assert!(
            loose.max_reliable_chain < 10,
            "4-bit at 45 mV should be infeasible, got {}",
            loose.max_reliable_chain
        );
        let tight = analyze(4, 7e-3).expect("analyze");
        assert!(
            tight.max_reliable_chain >= 64,
            "4-bit at 7 mV should support realistic chains, got {}",
            tight.max_reliable_chain
        );
    }

    #[test]
    fn zero_sigma_is_perfect() {
        let r = analyze(3, 0.0).expect("analyze");
        assert_eq!(r.p_cell_error, 0.0);
        assert_eq!(r.max_reliable_chain, usize::MAX);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(analyze(0, 0.01).is_err());
        assert!(analyze(5, 0.01).is_err());
        assert!(analyze(2, -0.01).is_err());
        assert!(analyze(2, f64::NAN).is_err());
    }
}
