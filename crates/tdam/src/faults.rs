//! Fault injection: stuck and drifted cells and their effect on
//! quantitative search.
//!
//! Production associative memories ship with defects. The cell-level
//! faults the TD-AM's behavioral model expresses directly are:
//!
//! - **stuck-mismatch** — the match node can never hold `V_DD` (a FeFET
//!   stuck in its low-V_TH state, or an MN-to-ground short): the stage
//!   always adds `d_C`, biasing the row's decoded distance by +1 whenever
//!   the data would have matched;
//! - **stuck-match** — the cell can never discharge MN (both FeFETs
//!   stuck high, a broken search line, or an open MN): real mismatches at
//!   that position go uncounted, biasing the distance by up to −1;
//! - **V_TH drift** — a *parametric* fault: both thresholds have relaxed
//!   toward the window center (retention loss, endurance fatigue, or a
//!   disturbed write), parameterized by the remaining window fraction as
//!   produced by [`tdam_fefet::retention`]. Unlike the stuck faults this
//!   one is repairable by re-programming.
//!
//! All are expressed through the existing threshold-voltage machinery —
//! a faulty cell is just a cell with perturbed `V_TH` values — so the
//! whole behavioral model (attachment factors, energies) applies
//! unchanged. Chain-level faults (a broken stage, a stuck shared search
//! line) and transient faults (TDC miscounts, SL driver glitches) span
//! more than one cell and live in [`crate::resilience`].
//!
//! The exact decode arithmetic under cell faults is captured by
//! [`expected_decode`] and property-tested in this module: the decoded
//! distance equals the true Hamming distance, plus one per stuck-mismatch
//! on a *matching* position, minus one per stuck-match on a *mismatching*
//! position.

use crate::cell::Cell;
use crate::config::ArrayConfig;
use crate::encoding::Encoding;
use crate::TdamError;
use serde::{Deserialize, Serialize};

/// A cell-level fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The stage always behaves as a mismatch (+`d_C` regardless of data).
    StuckMismatch,
    /// The stage always behaves as a match (mismatches go uncounted).
    StuckMatch,
    /// Parametric drift: both thresholds contracted toward the window
    /// center with this fraction of the fresh memory window remaining
    /// (see [`tdam_fefet::retention::aged_vth`]). `1.0` is a fresh cell;
    /// small fractions blur adjacent levels into decode errors.
    VthDrift {
        /// Remaining fraction of the fresh memory window, `0.0..=1.0`.
        window_fraction: f64,
    },
}

impl FaultKind {
    /// Whether the fault survives re-programming. Stuck faults are
    /// physical shorts/opens that a write cannot clear; drift is erased
    /// by a fresh write-verify cycle.
    pub fn is_hard(&self) -> bool {
        matches!(self, Self::StuckMismatch | Self::StuckMatch)
    }
}

/// A set of injected faults, keyed by `(row, stage)`.
///
/// Entries are held sorted by `(row, stage)` so [`FaultMap::get`] is a
/// binary search — it sits in the inner loop of every fault-campaign
/// evaluation — and a row's faults form one contiguous run for
/// [`FaultMap::row_faults`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultMap {
    faults: Vec<(usize, usize, FaultKind)>,
}

impl FaultMap {
    /// An empty fault map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects a fault at `(row, stage)` (replacing any previous fault
    /// there).
    pub fn inject(&mut self, row: usize, stage: usize, kind: FaultKind) {
        match self.position(row, stage) {
            Ok(i) => self.faults[i].2 = kind,
            Err(i) => self.faults.insert(i, (row, stage, kind)),
        }
    }

    /// The fault at `(row, stage)`, if any.
    pub fn get(&self, row: usize, stage: usize) -> Option<FaultKind> {
        self.position(row, stage).ok().map(|i| self.faults[i].2)
    }

    /// Removes and returns the fault at `(row, stage)`, if any.
    pub fn remove(&mut self, row: usize, stage: usize) -> Option<FaultKind> {
        match self.position(row, stage) {
            Ok(i) => Some(self.faults.remove(i).2),
            Err(_) => None,
        }
    }

    /// Removes every *soft* (repairable) fault in `row`, keeping hard
    /// faults in place — the effect of re-programming the row through
    /// write-verify.
    pub fn clear_soft(&mut self, row: usize) {
        self.faults.retain(|&(r, _, k)| r != row || k.is_hard());
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterates over `(row, stage, kind)` entries in `(row, stage)` order.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, FaultKind)> {
        self.faults.iter()
    }

    /// The faults of one row, as a `(stage, kind)` iterator.
    pub fn row_faults(&self, row: usize) -> impl Iterator<Item = (usize, FaultKind)> + '_ {
        let start = self.faults.partition_point(|&(r, _, _)| r < row);
        let end = self.faults.partition_point(|&(r, _, _)| r <= row);
        self.faults[start..end].iter().map(|&(_, s, k)| (s, k))
    }

    fn position(&self, row: usize, stage: usize) -> Result<usize, usize> {
        self.faults
            .binary_search_by(|&(r, s, _)| (r, s).cmp(&(row, stage)))
    }
}

/// Builds the cell realizing `value` under an optional fault.
///
/// Stuck-mismatch pins `F_A` far below every search-line level (always
/// conducting); stuck-match pins both FeFETs far above (never
/// conducting); V_TH drift contracts both thresholds toward the paper
/// window center by the remaining window fraction.
///
/// # Errors
///
/// Returns [`TdamError::ValueOutOfRange`] if `value` does not fit the
/// encoding.
pub fn faulty_cell(
    value: u8,
    encoding: Encoding,
    fault: Option<FaultKind>,
) -> Result<Cell, TdamError> {
    match fault {
        None => Cell::new(value, encoding),
        Some(FaultKind::StuckMismatch) => Cell::with_vth(value, encoding, -2.0, 3.0),
        Some(FaultKind::StuckMatch) => Cell::with_vth(value, encoding, 3.0, 3.0),
        Some(FaultKind::VthDrift { window_fraction }) => {
            let ladder = crate::cell::VoltageLadder::for_encoding(encoding);
            let rev = encoding.levels() - 1 - value;
            let (lo, hi) = (
                tdam_fefet::PAPER_VTH[0],
                tdam_fefet::PAPER_VTH[tdam_fefet::PAPER_STATES - 1],
            );
            let vth_a = tdam_fefet::retention::aged_vth(ladder.vth(value), lo, hi, window_fraction);
            let vth_b = tdam_fefet::retention::aged_vth(ladder.vth(rev), lo, hi, window_fraction);
            Cell::with_vth(value, encoding, vth_a, vth_b)
        }
    }
}

/// Builds a faulty row: cells for `values` with the row's faults applied.
///
/// # Errors
///
/// Returns element-range errors as [`faulty_cell`].
pub fn faulty_row(
    row: usize,
    values: &[u8],
    encoding: Encoding,
    faults: &FaultMap,
) -> Result<Vec<Cell>, TdamError> {
    values
        .iter()
        .enumerate()
        .map(|(stage, &v)| faulty_cell(v, encoding, faults.get(row, stage)))
        .collect()
}

/// Applies a fault map to an array configuration's stored data, returning
/// a ready-to-search [`crate::array::TdamArray`].
///
/// # Errors
///
/// Propagates configuration and shape errors.
pub fn build_faulty_array(
    config: &ArrayConfig,
    stored: &[Vec<u8>],
    faults: &FaultMap,
) -> Result<crate::array::TdamArray, TdamError> {
    let timing = crate::timing::StageTiming::analytic(&config.tech, config.c_load)?;
    let mut array = crate::array::TdamArray::with_timing(*config, timing)?;
    for (row, values) in stored.iter().enumerate() {
        let cells = faulty_row(row, values, config.encoding, faults)?;
        array.store_cells(row, cells)?;
    }
    Ok(array)
}

/// The decoded distance a row with hard cell faults reports for a query:
/// the true Hamming distance, plus one per stuck-mismatch on a position
/// the data would have matched, minus one per stuck-match on a position
/// the data mismatched. (Drift faults perturb delays analogically and
/// have no closed-form count.)
pub fn expected_decode(stored: &[u8], query: &[u8], row: usize, faults: &FaultMap) -> usize {
    let mut decode = 0usize;
    for (stage, (&d, &q)) in stored.iter().zip(query).enumerate() {
        let mismatch = d != q;
        match faults.get(row, stage) {
            Some(FaultKind::StuckMismatch) => decode += 1,
            Some(FaultKind::StuckMatch) => {}
            _ => decode += usize::from(mismatch),
        }
    }
    decode
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::TdamArray;
    use proptest::prelude::*;

    fn cfg() -> ArrayConfig {
        ArrayConfig::paper_default().with_stages(16).with_rows(2)
    }

    fn stored() -> Vec<Vec<u8>> {
        vec![vec![1u8; 16], vec![2u8; 16]]
    }

    #[test]
    fn fault_map_bookkeeping() {
        let mut map = FaultMap::new();
        assert!(map.is_empty());
        map.inject(0, 3, FaultKind::StuckMatch);
        map.inject(0, 3, FaultKind::StuckMismatch); // replaces
        map.inject(1, 5, FaultKind::StuckMatch);
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(0, 3), Some(FaultKind::StuckMismatch));
        assert_eq!(map.get(1, 5), Some(FaultKind::StuckMatch));
        assert_eq!(map.get(0, 0), None);
        assert_eq!(map.remove(0, 3), Some(FaultKind::StuckMismatch));
        assert_eq!(map.remove(0, 3), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn fault_map_is_sorted_and_row_sliced() {
        let mut map = FaultMap::new();
        map.inject(2, 7, FaultKind::StuckMatch);
        map.inject(0, 9, FaultKind::StuckMismatch);
        map.inject(2, 1, FaultKind::StuckMismatch);
        map.inject(
            1,
            0,
            FaultKind::VthDrift {
                window_fraction: 0.4,
            },
        );
        let order: Vec<(usize, usize)> = map.iter().map(|&(r, s, _)| (r, s)).collect();
        assert_eq!(order, vec![(0, 9), (1, 0), (2, 1), (2, 7)]);
        let row2: Vec<usize> = map.row_faults(2).map(|(s, _)| s).collect();
        assert_eq!(row2, vec![1, 7]);
        assert_eq!(map.row_faults(3).count(), 0);
    }

    #[test]
    fn clear_soft_keeps_hard_faults() {
        let mut map = FaultMap::new();
        map.inject(
            0,
            1,
            FaultKind::VthDrift {
                window_fraction: 0.3,
            },
        );
        map.inject(0, 2, FaultKind::StuckMismatch);
        map.inject(
            1,
            1,
            FaultKind::VthDrift {
                window_fraction: 0.3,
            },
        );
        map.clear_soft(0);
        assert_eq!(map.get(0, 1), None);
        assert_eq!(map.get(0, 2), Some(FaultKind::StuckMismatch));
        assert!(matches!(map.get(1, 1), Some(FaultKind::VthDrift { .. })));
    }

    #[test]
    fn stuck_mismatch_biases_distance_up() {
        let mut faults = FaultMap::new();
        faults.inject(0, 0, FaultKind::StuckMismatch);
        let faulty = build_faulty_array(&cfg(), &stored(), &faults).expect("array");
        let clean = build_faulty_array(&cfg(), &stored(), &FaultMap::new()).expect("array");
        // Query matches row 0 exactly: the fault adds exactly one count.
        let q = vec![1u8; 16];
        let d_faulty = TdamArray::search(&faulty, &q).expect("search").decoded()[0];
        let d_clean = TdamArray::search(&clean, &q).expect("search").decoded()[0];
        assert_eq!(d_clean, 0);
        assert_eq!(d_faulty, 1);
    }

    #[test]
    fn stuck_match_hides_real_mismatches() {
        let mut faults = FaultMap::new();
        faults.inject(0, 0, FaultKind::StuckMatch);
        let faulty = build_faulty_array(&cfg(), &stored(), &faults).expect("array");
        // Query mismatches row 0 at stage 0 only — the fault hides it.
        let mut q = vec![1u8; 16];
        q[0] = 3;
        let d = TdamArray::search(&faulty, &q).expect("search").decoded()[0];
        assert_eq!(d, 0, "stuck-match cell must swallow the mismatch");
    }

    #[test]
    fn drifted_cells_decode_until_window_collapses() {
        // A mild drift keeps the decode exact; a collapsed window reads
        // every comparison as roughly equal and the count degrades.
        let mut mild = FaultMap::new();
        let mut dead = FaultMap::new();
        for s in 0..16 {
            mild.inject(
                0,
                s,
                FaultKind::VthDrift {
                    window_fraction: 0.85,
                },
            );
            dead.inject(
                0,
                s,
                FaultKind::VthDrift {
                    window_fraction: 0.02,
                },
            );
        }
        let q = vec![2u8; 16]; // row 0 stores all-1: 16 true mismatches
        let d_mild = TdamArray::search(
            &build_faulty_array(&cfg(), &stored(), &mild).expect("array"),
            &q,
        )
        .expect("search")
        .decoded()[0];
        assert_eq!(d_mild, 16, "85% window must still decode exactly");
        let d_dead = TdamArray::search(
            &build_faulty_array(&cfg(), &stored(), &dead).expect("array"),
            &q,
        )
        .expect("search")
        .decoded()[0];
        assert!(d_dead < 16, "collapsed window cannot hold the ladder apart");
    }

    #[test]
    fn faults_do_not_leak_across_rows() {
        let mut faults = FaultMap::new();
        faults.inject(0, 2, FaultKind::StuckMismatch);
        let faulty = build_faulty_array(&cfg(), &stored(), &faults).expect("array");
        let q = vec![2u8; 16];
        // Row 1 matches exactly and has no faults.
        let d1 = TdamArray::search(&faulty, &q).expect("search").decoded()[1];
        assert_eq!(d1, 0);
    }

    #[test]
    fn best_match_survives_sparse_faults() {
        // With one fault per row, the nearest row still wins when the
        // distance gap exceeds the fault bias.
        let mut faults = FaultMap::new();
        faults.inject(0, 1, FaultKind::StuckMismatch);
        faults.inject(1, 1, FaultKind::StuckMismatch);
        let faulty = build_faulty_array(&cfg(), &stored(), &faults).expect("array");
        let q = vec![1u8; 16]; // exact content of row 0
        let outcome = TdamArray::search(&faulty, &q).expect("search");
        assert_eq!(outcome.best_row(), Some(0));
    }

    #[test]
    fn faulty_cell_behaviour() {
        let enc = Encoding::paper_default();
        let stuck_mis = faulty_cell(1, enc, Some(FaultKind::StuckMismatch)).expect("cell");
        let stuck_match = faulty_cell(1, enc, Some(FaultKind::StuckMatch)).expect("cell");
        for q in 0..4u8 {
            assert!(!stuck_mis.evaluate(q).expect("eval").is_match());
            assert!(stuck_match.evaluate(q).expect("eval").is_match());
        }
    }

    proptest! {
        /// The decode arithmetic under hard faults, exactly: every
        /// stuck-mismatch on a matching position biases the decoded
        /// distance by exactly +1 (and by nothing on an already-mismatched
        /// position); every stuck-match subtracts exactly 1 on a
        /// mismatched position and at most 1 anywhere.
        #[test]
        fn hard_faults_bias_decode_exactly(
            stored in prop::collection::vec(0u8..4, 16),
            query in prop::collection::vec(0u8..4, 16),
            fault_pos in prop::collection::btree_set(0usize..16, 0..6),
            mismatch_kind in prop::collection::vec(any::<bool>(), 6),
        ) {
            let mut faults = FaultMap::new();
            for (i, &stage) in fault_pos.iter().enumerate() {
                let kind = if mismatch_kind[i] {
                    FaultKind::StuckMismatch
                } else {
                    FaultKind::StuckMatch
                };
                faults.inject(0, stage, kind);
            }
            let config = ArrayConfig::paper_default().with_stages(16).with_rows(1);
            let am = build_faulty_array(&config, std::slice::from_ref(&stored), &faults).unwrap();
            let decoded = TdamArray::search(&am, &query).unwrap().decoded()[0];
            let truth = stored.iter().zip(&query).filter(|(a, b)| a != b).count();
            prop_assert_eq!(decoded, expected_decode(&stored, &query, 0, &faults));
            // Per-fault bounds implied by the closed form:
            let n_mm = faults.iter().filter(|&&(_, _, k)| k == FaultKind::StuckMismatch).count();
            let n_sm = faults.iter().filter(|&&(_, _, k)| k == FaultKind::StuckMatch).count();
            prop_assert!(decoded <= truth + n_mm);
            prop_assert!(decoded + n_sm >= truth);
        }
    }
}
