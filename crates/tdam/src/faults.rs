//! Fault injection: stuck cells and their effect on quantitative search.
//!
//! Production associative memories ship with defects. The TD-AM's two
//! physically plausible cell-level faults are:
//!
//! - **stuck-mismatch** — the match node can never hold `V_DD` (a FeFET
//!   stuck in its low-V_TH state, or an MN-to-ground short): the stage
//!   always adds `d_C`, biasing the row's decoded distance by +1;
//! - **stuck-match** — the cell can never discharge MN (both FeFETs
//!   stuck high, a broken search line, or an open MN): real mismatches at
//!   that position go uncounted, biasing the distance by up to −1.
//!
//! Both are expressed through the existing threshold-voltage machinery —
//! a stuck cell is just a cell with extreme `V_TH` values — so the whole
//! behavioral model (attachment factors, energies) applies unchanged.

use crate::cell::Cell;
use crate::config::ArrayConfig;
use crate::encoding::Encoding;
use crate::TdamError;
use serde::{Deserialize, Serialize};

/// A cell-level hard fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The stage always behaves as a mismatch (+`d_C` regardless of data).
    StuckMismatch,
    /// The stage always behaves as a match (mismatches go uncounted).
    StuckMatch,
}

/// A set of injected faults, keyed by `(row, stage)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultMap {
    faults: Vec<(usize, usize, FaultKind)>,
}

impl FaultMap {
    /// An empty fault map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects a fault at `(row, stage)` (replacing any previous fault
    /// there).
    pub fn inject(&mut self, row: usize, stage: usize, kind: FaultKind) {
        self.faults.retain(|&(r, s, _)| (r, s) != (row, stage));
        self.faults.push((row, stage, kind));
    }

    /// The fault at `(row, stage)`, if any.
    pub fn get(&self, row: usize, stage: usize) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|&&(r, s, _)| (r, s) == (row, stage))
            .map(|&(_, _, k)| k)
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterates over `(row, stage, kind)` entries.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, FaultKind)> {
        self.faults.iter()
    }
}

/// Builds the cell realizing `value` under an optional fault.
///
/// Stuck-mismatch pins `F_A` far below every search-line level (always
/// conducting); stuck-match pins both FeFETs far above (never
/// conducting).
///
/// # Errors
///
/// Returns [`TdamError::ValueOutOfRange`] if `value` does not fit the
/// encoding.
pub fn faulty_cell(
    value: u8,
    encoding: Encoding,
    fault: Option<FaultKind>,
) -> Result<Cell, TdamError> {
    match fault {
        None => Cell::new(value, encoding),
        Some(FaultKind::StuckMismatch) => Cell::with_vth(value, encoding, -2.0, 3.0),
        Some(FaultKind::StuckMatch) => Cell::with_vth(value, encoding, 3.0, 3.0),
    }
}

/// Builds a faulty row: cells for `values` with the row's faults applied.
///
/// # Errors
///
/// Returns element-range errors as [`faulty_cell`].
pub fn faulty_row(
    row: usize,
    values: &[u8],
    encoding: Encoding,
    faults: &FaultMap,
) -> Result<Vec<Cell>, TdamError> {
    values
        .iter()
        .enumerate()
        .map(|(stage, &v)| faulty_cell(v, encoding, faults.get(row, stage)))
        .collect()
}

/// Applies a fault map to an array configuration's stored data, returning
/// a ready-to-search [`crate::array::TdamArray`].
///
/// # Errors
///
/// Propagates configuration and shape errors.
pub fn build_faulty_array(
    config: &ArrayConfig,
    stored: &[Vec<u8>],
    faults: &FaultMap,
) -> Result<crate::array::TdamArray, TdamError> {
    let timing = crate::timing::StageTiming::analytic(&config.tech, config.c_load)?;
    let mut array = crate::array::TdamArray::with_timing(*config, timing)?;
    for (row, values) in stored.iter().enumerate() {
        let cells = faulty_row(row, values, config.encoding, faults)?;
        array.store_cells(row, cells)?;
    }
    Ok(array)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::TdamArray;

    fn cfg() -> ArrayConfig {
        ArrayConfig::paper_default().with_stages(16).with_rows(2)
    }

    fn stored() -> Vec<Vec<u8>> {
        vec![vec![1u8; 16], vec![2u8; 16]]
    }

    #[test]
    fn fault_map_bookkeeping() {
        let mut map = FaultMap::new();
        assert!(map.is_empty());
        map.inject(0, 3, FaultKind::StuckMatch);
        map.inject(0, 3, FaultKind::StuckMismatch); // replaces
        map.inject(1, 5, FaultKind::StuckMatch);
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(0, 3), Some(FaultKind::StuckMismatch));
        assert_eq!(map.get(1, 5), Some(FaultKind::StuckMatch));
        assert_eq!(map.get(0, 0), None);
    }

    #[test]
    fn stuck_mismatch_biases_distance_up() {
        let mut faults = FaultMap::new();
        faults.inject(0, 0, FaultKind::StuckMismatch);
        let faulty = build_faulty_array(&cfg(), &stored(), &faults).expect("array");
        let clean = build_faulty_array(&cfg(), &stored(), &FaultMap::new()).expect("array");
        // Query matches row 0 exactly: the fault adds exactly one count.
        let q = vec![1u8; 16];
        let d_faulty = TdamArray::search(&faulty, &q).expect("search").decoded()[0];
        let d_clean = TdamArray::search(&clean, &q).expect("search").decoded()[0];
        assert_eq!(d_clean, 0);
        assert_eq!(d_faulty, 1);
    }

    #[test]
    fn stuck_match_hides_real_mismatches() {
        let mut faults = FaultMap::new();
        faults.inject(0, 0, FaultKind::StuckMatch);
        let faulty = build_faulty_array(&cfg(), &stored(), &faults).expect("array");
        // Query mismatches row 0 at stage 0 only — the fault hides it.
        let mut q = vec![1u8; 16];
        q[0] = 3;
        let d = TdamArray::search(&faulty, &q).expect("search").decoded()[0];
        assert_eq!(d, 0, "stuck-match cell must swallow the mismatch");
    }

    #[test]
    fn faults_do_not_leak_across_rows() {
        let mut faults = FaultMap::new();
        faults.inject(0, 2, FaultKind::StuckMismatch);
        let faulty = build_faulty_array(&cfg(), &stored(), &faults).expect("array");
        let q = vec![2u8; 16];
        // Row 1 matches exactly and has no faults.
        let d1 = TdamArray::search(&faulty, &q).expect("search").decoded()[1];
        assert_eq!(d1, 0);
    }

    #[test]
    fn best_match_survives_sparse_faults() {
        // With one fault per row, the nearest row still wins when the
        // distance gap exceeds the fault bias.
        let mut faults = FaultMap::new();
        faults.inject(0, 1, FaultKind::StuckMismatch);
        faults.inject(1, 1, FaultKind::StuckMismatch);
        let faulty = build_faulty_array(&cfg(), &stored(), &faults).expect("array");
        let q = vec![1u8; 16]; // exact content of row 0
        let outcome = TdamArray::search(&faulty, &q).expect("search");
        assert_eq!(outcome.best_row(), Some(0));
    }

    #[test]
    fn faulty_cell_behaviour() {
        let enc = Encoding::paper_default();
        let stuck_mis = faulty_cell(1, enc, Some(FaultKind::StuckMismatch)).expect("cell");
        let stuck_match = faulty_cell(1, enc, Some(FaultKind::StuckMatch)).expect("cell");
        for q in 0..4u8 {
            assert!(!stuck_mis.evaluate(q).expect("eval").is_match());
            assert!(stuck_match.evaluate(q).expect("eval").is_match());
        }
    }
}
