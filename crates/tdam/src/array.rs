//! The M×N TD-AM array (paper Fig. 3(a)).
//!
//! `M` delay chains share vertical search lines, so one query is compared
//! against all stored vectors in parallel; each row's accumulated delay is
//! digitized by a per-row counter TDC. Search latency is set by the
//! slowest row in each step plus the conversion; search energy sums the
//! per-row chain energies and conversions (the shared SL drivers are
//! counted once, not per row).

use crate::chain::{ChainResult, DelayChain};
use crate::config::ArrayConfig;
use crate::energy::EnergyBreakdown;
use crate::engine::{BatchQuery, BatchResult, SearchMetrics, SimilarityEngine};
use crate::packed::{PackedArray, PackedScratch};
use crate::tdc::CounterTdc;
use crate::timing::StageTiming;
use crate::TdamError;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of programming one row through write-verify.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramRowReport {
    /// Total erase+write pulse pairs across all FeFETs in the row.
    pub pulse_pairs: usize,
    /// Total programming energy, joules.
    pub energy: f64,
    /// Largest `|V_TH achieved − target|` in the row, volts.
    pub worst_vth_error: f64,
}

/// Per-row outcome of an array search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RowResult {
    /// Raw chain result.
    pub chain: ChainResult,
    /// The TDC count for this row.
    pub count: u64,
    /// The mismatch count the sensing circuitry decodes from the delay.
    pub decoded_mismatches: usize,
}

/// Outcome of an array search across all rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Per-row results, in row order.
    pub rows: Vec<RowResult>,
    /// Total energy for the search.
    pub energy: EnergyBreakdown,
    /// Full search-cycle latency: precharge + search-line settle +
    /// slowest rising step + slowest falling step + TDC latch.
    pub latency: f64,
}

impl SearchOutcome {
    /// The row with the smallest decoded mismatch count (ties broken by
    /// lowest index); `None` for an empty array.
    pub fn best_row(&self) -> Option<usize> {
        self.rows
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.decoded_mismatches)
            .map(|(i, _)| i)
    }

    /// Decoded mismatch counts per row.
    pub fn decoded(&self) -> Vec<usize> {
        self.rows.iter().map(|r| r.decoded_mismatches).collect()
    }

    /// Flattens the outcome into the engine-level [`SearchMetrics`] view
    /// (decoded per-row distances, total energy, full-cycle latency).
    pub fn metrics(&self) -> SearchMetrics {
        SearchMetrics {
            best_row: self.best_row(),
            distances: self
                .rows
                .iter()
                .map(|r| Some(r.decoded_mismatches))
                .collect(),
            energy: self.energy.total(),
            latency: self.latency,
        }
    }
}

/// A TD-AM array of `rows` delay chains sharing search lines.
///
/// # Examples
///
/// ```
/// use tdam::array::TdamArray;
/// use tdam::config::ArrayConfig;
/// use tdam::engine::SimilarityEngine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = ArrayConfig::paper_default().with_stages(4).with_rows(2);
/// let mut am = TdamArray::new(cfg)?;
/// am.store(0, &[3, 2, 1, 0])?;
/// am.store(1, &[0, 0, 1, 1])?;
/// let out = TdamArray::search(&am, &[0, 0, 1, 2])?;
/// assert_eq!(out.best_row(), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TdamArray {
    config: ArrayConfig,
    timing: StageTiming,
    tdc: CounterTdc,
    chains: Vec<DelayChain>,
    /// Bumped on every mutation of stored contents (store, program, age),
    /// so compiled delay tables can detect that they have gone stale.
    generation: u64,
}

impl TdamArray {
    /// Creates an array with every row initialized to all-zero vectors and
    /// an analytically calibrated timing model.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::InvalidConfig`] for invalid configurations.
    pub fn new(config: ArrayConfig) -> Result<Self, TdamError> {
        let timing = StageTiming::analytic(&config.tech, config.c_load)?;
        Self::with_timing(config, timing)
    }

    /// Creates an array with an explicit timing calibration.
    ///
    /// # Errors
    ///
    /// As [`TdamArray::new`].
    pub fn with_timing(config: ArrayConfig, timing: StageTiming) -> Result<Self, TdamError> {
        config.validate()?;
        let tdc = CounterTdc::matched(&timing)?;
        let zeros = vec![0u8; config.stages];
        let chains = (0..config.rows)
            .map(|_| DelayChain::with_timing(&zeros, &config, timing))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            config,
            timing,
            tdc,
            chains,
            generation: 0,
        })
    }

    /// The mutation generation: incremented every time stored contents
    /// change ([`SimilarityEngine::store`], [`TdamArray::store_cells`],
    /// [`TdamArray::program_row`], [`TdamArray::age`]). Compiled views
    /// record the generation they were built at so a reprogram-after-
    /// compile is caught as [`TdamError::StaleCompile`] instead of
    /// silently serving wrong bits.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Overrides the mutation generation. Used by [`crate::store`] when
    /// rebuilding an array from a checkpoint: the restored array adopts a
    /// generation *strictly newer* than the one it was captured at, so
    /// any [`CompiledSnapshot`] taken before the checkpoint is stale.
    pub(crate) fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// The array configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// The stage timing calibration.
    pub fn timing(&self) -> &StageTiming {
        &self.timing
    }

    /// The per-row TDC model.
    pub fn tdc(&self) -> &CounterTdc {
        &self.tdc
    }

    /// The per-row delay chains, in physical row order. Crate-internal:
    /// the packed serving representation ([`crate::packed`]) reads cell
    /// states and nominality directly from the chains when building its
    /// bit planes.
    pub(crate) fn chains(&self) -> &[DelayChain] {
        &self.chains
    }

    /// The vector stored at `row`.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::RowOutOfBounds`] for invalid rows.
    pub fn stored(&self, row: usize) -> Result<Vec<u8>, TdamError> {
        self.chains
            .get(row)
            .map(DelayChain::stored)
            .ok_or(TdamError::RowOutOfBounds {
                row,
                rows: self.config.rows,
            })
    }

    /// Replaces a row with pre-built (e.g. variation-perturbed) cells.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::RowOutOfBounds`] or shape errors from
    /// [`DelayChain::from_cells`].
    pub fn store_cells(
        &mut self,
        row: usize,
        cells: Vec<crate::cell::Cell>,
    ) -> Result<(), TdamError> {
        if row >= self.chains.len() {
            return Err(TdamError::RowOutOfBounds {
                row,
                rows: self.config.rows,
            });
        }
        self.chains[row] = DelayChain::from_cells(cells, &self.config, self.timing)?;
        self.generation += 1;
        Ok(())
    }

    /// Programs a row by actually write-verifying FeFET devices: every
    /// cell's `F_A` is programmed to its stored state and `F_B` to the
    /// reversed state through the erase + write-verify flow of
    /// [`tdam_fefet::programming`], and the *achieved* (quantized-by-
    /// domain-granularity) threshold voltages are installed in the row's
    /// cells. Returns the aggregate pulse count and write energy.
    ///
    /// This is the write path a real deployment pays before any search;
    /// [`SimilarityEngine::store`] is the idealized (nominal-threshold)
    /// shortcut.
    ///
    /// # Errors
    ///
    /// Returns row/shape/range errors like `store`, and
    /// [`TdamError::WriteVerify`] if a device fails write-verify.
    pub fn program_row(
        &mut self,
        row: usize,
        values: &[u8],
    ) -> Result<ProgramRowReport, TdamError> {
        let single_shot = tdam_fefet::programming::RetryPolicy {
            max_attempts: 1,
            amplitude_step: 0.0,
            max_amplitude: f64::INFINITY,
        };
        Ok(self.program_row_with_retry(row, values, &single_shot)?.0)
    }

    /// As [`TdamArray::program_row`], but retries each device's
    /// write-verify per the bounded, amplitude-escalating `policy` before
    /// giving up. Returns the aggregate report (pulse pairs and energy
    /// include failed attempts — retries are not free) and the worst
    /// per-device attempt count used anywhere in the row.
    ///
    /// # Errors
    ///
    /// Returns row/shape/range errors like `store`, and
    /// [`TdamError::WriteVerify`] once a device exhausts the policy.
    pub fn program_row_with_retry(
        &mut self,
        row: usize,
        values: &[u8],
        policy: &tdam_fefet::programming::RetryPolicy,
    ) -> Result<(ProgramRowReport, usize), TdamError> {
        use tdam_fefet::preisach::PreisachParams;
        use tdam_fefet::programming::{program_vth_with_retry, ProgramConfig, ProgramError};
        use tdam_fefet::{Fefet, FefetParams};

        fn prog_err(e: ProgramError) -> TdamError {
            match e {
                ProgramError::VerifyFailed { target, achieved } => {
                    TdamError::WriteVerify { target, achieved }
                }
                ProgramError::InvalidState { .. } => TdamError::InvalidConfig {
                    what: "programming state outside the device ladder",
                },
            }
        }

        if row >= self.chains.len() {
            return Err(TdamError::RowOutOfBounds {
                row,
                rows: self.config.rows,
            });
        }
        if values.len() != self.config.stages {
            return Err(TdamError::LengthMismatch {
                got: values.len(),
                expected: self.config.stages,
            });
        }
        self.config.encoding.validate(values)?;

        let ladder = crate::cell::VoltageLadder::for_encoding(self.config.encoding);
        let levels = self.config.encoding.levels();
        let dev_params = FefetParams {
            preisach: PreisachParams {
                domains: 512,
                ..PreisachParams::default()
            },
            ..FefetParams::default()
        };
        let prog_cfg = ProgramConfig::default();
        let mut report = ProgramRowReport {
            pulse_pairs: 0,
            energy: 0.0,
            worst_vth_error: 0.0,
        };
        let mut worst_attempts = 0usize;
        let mut cells = Vec::with_capacity(values.len());
        for &v in values {
            let mut dev_a = Fefet::new(dev_params);
            let mut dev_b = Fefet::new(dev_params);
            let target_a = ladder.vth(v);
            let target_b = ladder.vth(levels - 1 - v);
            let rep_a = program_vth_with_retry(&mut dev_a, target_a, &prog_cfg, policy)
                .map_err(prog_err)?;
            let rep_b = program_vth_with_retry(&mut dev_b, target_b, &prog_cfg, policy)
                .map_err(prog_err)?;
            report.pulse_pairs += rep_a.report.pulse_pairs + rep_b.report.pulse_pairs;
            report.energy += rep_a.report.energy + rep_b.report.energy;
            report.worst_vth_error = report
                .worst_vth_error
                .max((rep_a.report.achieved_vth - target_a).abs())
                .max((rep_b.report.achieved_vth - target_b).abs());
            worst_attempts = worst_attempts.max(rep_a.attempts).max(rep_b.attempts);
            cells.push(crate::cell::Cell::with_vth(
                v,
                self.config.encoding,
                rep_a.report.achieved_vth,
                rep_b.report.achieved_vth,
            )?);
        }
        self.chains[row] = DelayChain::from_cells(cells, &self.config, self.timing)?;
        self.generation += 1;
        Ok((report, worst_attempts))
    }

    /// The cells of `row`, including any fault- or variation-perturbed
    /// thresholds installed by [`TdamArray::store_cells`].
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::RowOutOfBounds`] for invalid rows.
    pub fn row_cells(&self, row: usize) -> Result<&[crate::cell::Cell], TdamError> {
        self.chains
            .get(row)
            .map(DelayChain::cells)
            .ok_or(TdamError::RowOutOfBounds {
                row,
                rows: self.config.rows,
            })
    }

    /// Ages every cell in the array through the given lifetime: all
    /// threshold voltages contract toward the window center per the
    /// retention/endurance models (see [`tdam_fefet::retention`]), so
    /// subsequent searches see end-of-life margins.
    ///
    /// # Errors
    ///
    /// Propagates cell-construction errors (none for valid states).
    pub fn age(&mut self, lifetime: &tdam_fefet::retention::Lifetime) -> Result<(), TdamError> {
        let chains = std::mem::take(&mut self.chains);
        for chain in chains {
            let aged_cells = chain
                .stored()
                .iter()
                .zip(chain_cells(&chain))
                .map(|(&value, (vth_a, vth_b))| {
                    crate::cell::Cell::with_vth(
                        value,
                        self.config.encoding,
                        lifetime.age_vth(vth_a),
                        lifetime.age_vth(vth_b),
                    )
                })
                .collect::<Result<Vec<_>, _>>()?;
            self.chains.push(DelayChain::from_cells(
                aged_cells,
                &self.config,
                self.timing,
            )?);
        }
        self.generation += 1;
        Ok(())
    }

    /// Searches a query against all rows, without the mutable-engine
    /// plumbing of the [`SimilarityEngine`] trait.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::LengthMismatch`] or
    /// [`TdamError::ValueOutOfRange`] for malformed queries.
    pub fn search(&self, query: &[u8]) -> Result<SearchOutcome, TdamError> {
        let results = self
            .chains
            .iter()
            .map(|chain| chain.evaluate(query))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self.assemble(results))
    }

    /// Digitizes per-chain results and aggregates the array-level energy
    /// and latency — shared by the reference and compiled search paths.
    fn assemble(&self, results: Vec<ChainResult>) -> SearchOutcome {
        let mut acc = OutcomeAccumulator::new(results.len());
        for chain_result in results {
            acc.push_chain(self, chain_result);
        }
        acc.finish(self)
    }

    /// Compiles every nominal row into flat per-cell delay tables (see
    /// [`crate::chain::CompiledChain`]) for the batched query path. Rows
    /// holding variation-perturbed cells keep the full model and fall back
    /// to [`DelayChain::evaluate`] per query.
    ///
    /// The compiled view borrows the array: it is built once per batch
    /// (or held across batches) and shared read-only by worker threads.
    /// For a view that outlives the borrow — and therefore must detect
    /// reprogramming — see [`TdamArray::compile_snapshot`].
    pub fn compile(&self) -> CompiledArray<'_> {
        CompiledArray {
            array: self,
            compiled: self.chains.iter().map(DelayChain::compile).collect(),
            packed: PackedArray::build(self, &std::collections::BTreeSet::new()),
            generation: self.generation,
        }
    }

    /// Compiles into an **owned** snapshot that can be held across
    /// mutations of the source array. Every search through the snapshot
    /// revalidates the source's [generation](TdamArray::generation); once
    /// the array has been reprogrammed the snapshot refuses to serve
    /// ([`TdamError::StaleCompile`]) instead of returning wrong bits.
    pub fn compile_snapshot(&self) -> CompiledSnapshot {
        CompiledSnapshot {
            array: self.clone(),
            compiled: self.chains.iter().map(DelayChain::compile).collect(),
            packed: PackedArray::build(self, &std::collections::BTreeSet::new()),
            generation: self.generation,
        }
    }
}

/// Incremental row digitization and array-level aggregation: the loop
/// body of [`TdamArray::assemble`], factored out so the packed serving
/// path ([`crate::packed`]) can push already-digitized rows without
/// materializing an intermediate `Vec<ChainResult>` per query — with the
/// same accumulation order (row order), so the energy arithmetic stays
/// bitwise identical between the paths whenever the per-row figures are.
struct OutcomeAccumulator {
    rows: Vec<RowResult>,
    energy: EnergyBreakdown,
    worst_rise: f64,
    worst_fall: f64,
}

impl OutcomeAccumulator {
    fn new(rows: usize) -> Self {
        Self {
            rows: Vec::with_capacity(rows),
            energy: EnergyBreakdown::default(),
            worst_rise: 0.0,
            worst_fall: 0.0,
        }
    }

    /// Digitizes one behavioral/LUT chain result and accumulates it.
    fn push_chain(&mut self, array: &TdamArray, chain_result: ChainResult) {
        let count = array.tdc.convert(chain_result.total_delay);
        let decoded = array.tdc.decode_mismatches(
            &array.timing,
            array.config.stages,
            chain_result.total_delay,
        );
        let tdc_energy = array.tdc.conversion_energy(chain_result.total_delay);
        self.push_row(
            RowResult {
                chain: chain_result,
                count,
                decoded_mismatches: decoded,
            },
            tdc_energy,
        );
    }

    /// Accumulates an already-digitized row (the packed path's entry:
    /// its count-indexed digests arrive with the TDC view precomputed).
    fn push_row(&mut self, row: RowResult, tdc_energy: f64) {
        // Row energies, minus the shared SL drivers (added once at finish).
        let mut row_energy = row.chain.energy;
        row_energy.search_lines = 0.0;
        row_energy.tdc = tdc_energy;
        self.energy.accumulate(&row_energy);
        self.worst_rise = self.worst_rise.max(row.chain.rising_delay);
        self.worst_fall = self.worst_fall.max(row.chain.falling_delay);
        self.rows.push(row);
    }

    fn finish(self, array: &TdamArray) -> SearchOutcome {
        let Self {
            rows,
            mut energy,
            worst_rise,
            worst_fall,
        } = self;
        // Shared search-line drivers, once per column pair.
        energy.search_lines = array.config.stages as f64 * array.timing.e_sl;
        // Full search cycle: precharge, search-line settle (pulse launch
        // window), both propagation steps, and the final TDC latch.
        let latency = array.config.tech.t_precharge
            + array.config.tech.t_launch
            + worst_rise
            + worst_fall
            + array.tdc.resolution;
        SearchOutcome {
            rows,
            energy,
            latency,
        }
    }
}

/// One compiled search: table rows walk the LUT, perturbed rows fall back
/// to the full model. Shared by [`CompiledArray`] and [`CompiledSnapshot`].
fn compiled_search(
    array: &TdamArray,
    compiled: &[Option<crate::chain::CompiledChain>],
    query: &[u8],
) -> Result<SearchOutcome, TdamError> {
    // Validate once up front; the per-row table walks then skip the
    // redundant length/range checks (the dominant overhead for small
    // compiled rows).
    validate_query(array, query)?;
    let results = compiled
        .iter()
        .zip(&array.chains)
        .map(|(compiled, chain)| match compiled {
            Some(c) => Ok(c.evaluate_prevalidated(query)),
            None => chain.evaluate(query),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(array.assemble(results))
}

/// Shape- and range-checks one query against the array geometry.
fn validate_query(array: &TdamArray, query: &[u8]) -> Result<(), TdamError> {
    if query.len() != array.config.stages {
        return Err(TdamError::LengthMismatch {
            got: query.len(),
            expected: array.config.stages,
        });
    }
    array.config.encoding.validate(query)
}

/// Shape- and range-checks a whole batch in one pass over its contiguous
/// element storage, so the per-query worker loop can skip validation.
fn validate_batch(array: &TdamArray, batch: &BatchQuery) -> Result<(), TdamError> {
    if batch.width() != array.config.stages {
        return Err(TdamError::LengthMismatch {
            got: batch.width(),
            expected: array.config.stages,
        });
    }
    array.config.encoding.validate(batch.elements())
}

/// Queries per worker tile in the batch drivers. Matches the packed
/// kernel's scratch capacity so each L1-resident row block is streamed
/// from memory once per eight queries instead of once per query (the
/// query-major blocking documented in [`crate::packed`]). Tile
/// boundaries depend only on the batch index — never on the thread
/// count — which is what keeps batch results thread-count invariant.
const QUERY_TILE: usize = 8;

/// Finishes one query of a counted tile into a full [`SearchOutcome`]:
/// packed rows read their `(even, odd)` counts from slot `t` and go
/// through count-indexed digitization, the rest fall back to the full
/// behavioral model and the shared [`OutcomeAccumulator`] arithmetic.
fn finish_search_from_counts(
    array: &TdamArray,
    packed: &PackedArray,
    scratch: &PackedScratch,
    t: usize,
    query: &[u8],
) -> Result<SearchOutcome, TdamError> {
    let mut acc = OutcomeAccumulator::new(array.chains.len());
    for (row, chain) in array.chains.iter().enumerate() {
        if packed.is_packed(row) {
            let (even, odd) = packed.counts(scratch, t, row);
            let (row_result, tdc_energy) = packed.digitize(even, odd);
            acc.push_row(row_result, tdc_energy);
        } else {
            acc.push_chain(array, chain.evaluate(query)?);
        }
    }
    Ok(acc.finish(array))
}

/// Finishes one query of a counted tile decision-only: decoded per-row
/// distances and the winner, with no per-row analog reconstruction —
/// the output the hardware TDC actually exports, at a fraction of the
/// materialization cost of a full [`SearchOutcome`]. Decisions are
/// exactly identical to the full paths' ([`SearchOutcome::best_row`]/
/// [`SearchOutcome::decoded`]); non-packed rows fall back to the
/// behavioral model's decode.
fn finish_decide_from_counts(
    array: &TdamArray,
    packed: &PackedArray,
    scratch: &PackedScratch,
    t: usize,
    query: &[u8],
) -> Result<crate::packed::PackedDecision, TdamError> {
    let mut distances = Vec::with_capacity(array.chains.len());
    let mut best: Option<(usize, usize)> = None;
    for (row, chain) in array.chains.iter().enumerate() {
        let decoded = if packed.is_packed(row) {
            let (even, odd) = packed.counts(scratch, t, row);
            packed.decoded(even, odd)
        } else {
            let r = chain.evaluate(query)?;
            array
                .tdc
                .decode_mismatches(&array.timing, array.config.stages, r.total_delay)
        };
        // Strictly-less keeps the first minimal row, matching
        // `SearchOutcome::best_row`'s tie-break.
        if best.is_none_or(|(_, d)| decoded < d) {
            best = Some((row, decoded));
        }
        distances.push(decoded);
    }
    Ok(crate::packed::PackedDecision {
        best_row: best.map(|(row, _)| row),
        distances,
    })
}

/// One packed-kernel search over a pre-validated query: a tile of one
/// through the ladder-dispatched block kernel ([`crate::packed`]).
/// Shared by [`CompiledArray`] and [`CompiledSnapshot`]; the caller owns
/// validation, staleness checks, and the reusable scratch.
fn packed_search_prevalidated(
    array: &TdamArray,
    packed: &PackedArray,
    query: &[u8],
    scratch: &mut PackedScratch,
) -> Result<SearchOutcome, TdamError> {
    packed.expand_query(query, scratch);
    packed.mismatch_counts(scratch);
    finish_search_from_counts(array, packed, scratch, 0, query)
}

/// One worker item of the tiled batch-search driver: expands queries
/// `[tile·QUERY_TILE, …)` of the batch into the tile scratch, runs the
/// block kernel once for the whole tile, and finishes each query in
/// batch order (so the first error a tile reports is the first in batch
/// order, preserving the drivers' error contract through the flatten).
fn packed_search_tile(
    array: &TdamArray,
    packed: &PackedArray,
    batch: &crate::engine::BatchQuery,
    tile: usize,
    scratch: &mut PackedScratch,
) -> Result<Vec<SearchOutcome>, TdamError> {
    let start = tile * QUERY_TILE;
    let end = (start + QUERY_TILE).min(batch.len());
    packed.expand_tile((start..end).map(|i| batch.get(i)), scratch);
    packed.mismatch_counts(scratch);
    (start..end)
        .enumerate()
        .map(|(t, i)| finish_search_from_counts(array, packed, scratch, t, batch.get(i)))
        .collect()
}

/// As [`packed_search_tile`], decision-only.
fn packed_decide_tile(
    array: &TdamArray,
    packed: &PackedArray,
    batch: &crate::engine::BatchQuery,
    tile: usize,
    scratch: &mut PackedScratch,
) -> Result<Vec<crate::packed::PackedDecision>, TdamError> {
    let start = tile * QUERY_TILE;
    let end = (start + QUERY_TILE).min(batch.len());
    packed.expand_tile((start..end).map(|i| batch.get(i)), scratch);
    packed.mismatch_counts(scratch);
    (start..end)
        .enumerate()
        .map(|(t, i)| finish_decide_from_counts(array, packed, scratch, t, batch.get(i)))
        .collect()
}

/// A read-only compiled view of a [`TdamArray`]: every nominal row's
/// delay function collapsed to a flat lookup table, shareable across
/// worker threads for batched serving.
///
/// Produced by [`TdamArray::compile`]. Searches through this view return
/// results **bit-identical** to [`TdamArray::search`].
#[derive(Debug, Clone)]
pub struct CompiledArray<'a> {
    array: &'a TdamArray,
    compiled: Vec<Option<crate::chain::CompiledChain>>,
    packed: PackedArray,
    generation: u64,
}

impl CompiledArray<'_> {
    /// How many rows compiled to lookup tables (the rest fall back to the
    /// full variation-aware model).
    pub fn compiled_rows(&self) -> usize {
        self.compiled.iter().filter(|c| c.is_some()).count()
    }

    /// How many rows the bit-sliced packed kernel serves (the rest fall
    /// back to the full variation-aware model). Equals
    /// [`CompiledArray::compiled_rows`]: packing and LUT compilation
    /// refuse exactly the same (non-nominal or degenerate-timing) rows.
    pub fn packed_rows(&self) -> usize {
        self.packed.packed_rows()
    }

    /// The bit-sliced packed view backing [`CompiledArray::search_packed`]
    /// and the batched path.
    pub fn packed(&self) -> &PackedArray {
        &self.packed
    }

    /// Whether every row is served from a lookup table.
    pub fn fully_compiled(&self) -> bool {
        self.compiled.iter().all(Option::is_some)
    }

    /// The array [generation](TdamArray::generation) these tables were
    /// compiled at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Searches one query through the compiled tables.
    ///
    /// # Errors
    ///
    /// As [`TdamArray::search`], plus [`TdamError::StaleCompile`] if the
    /// array's generation no longer matches the one the tables were built
    /// at. (The shared borrow already prevents reprogramming while this
    /// view is alive, so the check documents the contract shared with the
    /// owned [`CompiledSnapshot`] rather than catching live mutation.)
    pub fn search(&self, query: &[u8]) -> Result<SearchOutcome, TdamError> {
        if self.array.generation != self.generation {
            return Err(TdamError::StaleCompile {
                compiled: self.generation,
                current: self.array.generation,
            });
        }
        compiled_search(self.array, &self.compiled, query)
    }

    /// Searches one query through the bit-sliced packed kernel
    /// ([`crate::packed`]): mismatch counts, decoded distances, and the
    /// winner are exactly identical to [`TdamArray::search`]; the analog
    /// delay figures are reconstructed count-indexed and agree within the
    /// documented ulp bound.
    ///
    /// # Errors
    ///
    /// As [`CompiledArray::search`].
    pub fn search_packed(&self, query: &[u8]) -> Result<SearchOutcome, TdamError> {
        if self.array.generation != self.generation {
            return Err(TdamError::StaleCompile {
                compiled: self.generation,
                current: self.array.generation,
            });
        }
        validate_query(self.array, query)?;
        let mut scratch = self.packed.scratch();
        packed_search_prevalidated(self.array, &self.packed, query, &mut scratch)
    }

    /// Answers a whole batch through the packed kernel, fanning queries
    /// out across `threads` worker threads (`None` = all cores; see
    /// [`crate::parallel`]). Validation is hoisted to one pass over the
    /// whole batch and each worker reuses one query-plane scratch, so the
    /// hot loop performs no per-query heap allocation. Results are in
    /// batch order and bit-identical for every thread count; versus the
    /// behavioral model they carry the packed equivalence contract
    /// ([`crate::packed`]).
    ///
    /// # Errors
    ///
    /// Propagates the first per-query error in batch order.
    pub fn search_batch(
        &self,
        batch: &crate::engine::BatchQuery,
        threads: Option<usize>,
    ) -> Result<Vec<SearchOutcome>, TdamError> {
        if self.array.generation != self.generation {
            return Err(TdamError::StaleCompile {
                compiled: self.generation,
                current: self.array.generation,
            });
        }
        validate_batch(self.array, batch)?;
        let tiles = crate::parallel::run_chunked_scratch(
            batch.len().div_ceil(QUERY_TILE),
            threads,
            || self.packed.tile_scratch(QUERY_TILE),
            |scratch, tile| packed_search_tile(self.array, &self.packed, batch, tile, scratch),
        )?;
        Ok(tiles.into_iter().flatten().collect())
    }

    /// Answers a whole batch through the scalar per-cell delay LUTs —
    /// the pre-packed serving path, kept as the bit-identical-to-
    /// behavioral comparison tier for benchmarks and equivalence tests.
    ///
    /// # Errors
    ///
    /// As [`CompiledArray::search_batch`].
    pub fn search_batch_lut(
        &self,
        batch: &crate::engine::BatchQuery,
        threads: Option<usize>,
    ) -> Result<Vec<SearchOutcome>, TdamError> {
        crate::parallel::run_chunked(batch.len(), threads, |i| self.search(batch.get(i)))
    }

    /// Answers a whole batch decision-only: per-query winner and decoded
    /// distances ([`crate::packed::PackedDecision`]), skipping the
    /// per-row analog reconstruction entirely. This is the kernel at
    /// full speed — the output is what the hardware TDC exports — and
    /// its fields are exactly identical to [`SearchOutcome::best_row`] /
    /// [`SearchOutcome::decoded`] from [`CompiledArray::search_batch`]
    /// on the same batch.
    ///
    /// # Errors
    ///
    /// As [`CompiledArray::search_batch`].
    pub fn decide_batch(
        &self,
        batch: &crate::engine::BatchQuery,
        threads: Option<usize>,
    ) -> Result<Vec<crate::packed::PackedDecision>, TdamError> {
        if self.array.generation != self.generation {
            return Err(TdamError::StaleCompile {
                compiled: self.generation,
                current: self.array.generation,
            });
        }
        validate_batch(self.array, batch)?;
        let tiles = crate::parallel::run_chunked_scratch(
            batch.len().div_ceil(QUERY_TILE),
            threads,
            || self.packed.tile_scratch(QUERY_TILE),
            |scratch, tile| packed_decide_tile(self.array, &self.packed, batch, tile, scratch),
        )?;
        Ok(tiles.into_iter().flatten().collect())
    }

    /// Forces a dispatch-ladder rung for this view's packed kernel
    /// ([`crate::packed::PackedKernel`]); tests and benchmarks use this
    /// to pin a rung, production code leaves detection alone. Returns
    /// `false` (keeping the current rung) when the requested rung is not
    /// available in this build/CPU.
    pub fn force_kernel(&mut self, kernel: crate::packed::PackedKernel) -> bool {
        self.packed.set_kernel(kernel)
    }

    /// The dispatch-ladder rung this view's packed kernel executes.
    pub fn kernel(&self) -> crate::packed::PackedKernel {
        self.packed.kernel()
    }
}

/// An **owned** compiled view of a [`TdamArray`]: the delay tables plus a
/// clone of the source array, stamped with the source's
/// [generation](TdamArray::generation) at compile time.
///
/// Unlike [`CompiledArray`], a snapshot outlives the borrow of its source,
/// so the source can be reprogrammed while the snapshot is held — exactly
/// the situation where serving from the old tables would silently return
/// wrong bits. Every checked search therefore revalidates the source's
/// generation and fails with [`TdamError::StaleCompile`] once they
/// diverge; the serving runtime ([`crate::runtime`]) catches that error
/// and recompiles.
///
/// Produced by [`TdamArray::compile_snapshot`]. Searches return results
/// **bit-identical** to [`TdamArray::search`] on the array state at
/// compile time.
#[derive(Debug, Clone)]
pub struct CompiledSnapshot {
    array: TdamArray,
    compiled: Vec<Option<crate::chain::CompiledChain>>,
    packed: PackedArray,
    generation: u64,
}

impl CompiledSnapshot {
    /// The array [generation](TdamArray::generation) this snapshot was
    /// compiled at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether this snapshot still matches `source` (no reprogramming
    /// since compile).
    pub fn is_fresh(&self, source: &TdamArray) -> bool {
        source.generation == self.generation
    }

    /// How many rows compiled to lookup tables (the rest fall back to the
    /// full variation-aware model).
    pub fn compiled_rows(&self) -> usize {
        self.compiled.iter().filter(|c| c.is_some()).count()
    }

    /// Whether every row is served from a lookup table.
    pub fn fully_compiled(&self) -> bool {
        self.compiled.iter().all(Option::is_some)
    }

    /// How many rows the bit-sliced packed kernel serves (equals
    /// [`CompiledSnapshot::compiled_rows`]; see
    /// [`CompiledArray::packed_rows`]).
    pub fn packed_rows(&self) -> usize {
        self.packed.packed_rows()
    }

    /// The bit-sliced packed view backing the packed serving paths.
    pub fn packed(&self) -> &PackedArray {
        &self.packed
    }

    /// Searches one query, first verifying the snapshot still matches
    /// `source`.
    ///
    /// # Errors
    ///
    /// [`TdamError::StaleCompile`] if `source` was mutated after this
    /// snapshot was compiled; otherwise as [`TdamArray::search`].
    pub fn search(&self, source: &TdamArray, query: &[u8]) -> Result<SearchOutcome, TdamError> {
        if !self.is_fresh(source) {
            return Err(TdamError::StaleCompile {
                compiled: self.generation,
                current: source.generation,
            });
        }
        self.search_unchecked(query)
    }

    /// Searches one query against the snapshot's own (internally
    /// consistent) state, without consulting the source array. Use when
    /// staleness has already been checked for the whole batch, or when
    /// serving deliberately from the frozen snapshot.
    ///
    /// # Errors
    ///
    /// As [`TdamArray::search`].
    pub fn search_unchecked(&self, query: &[u8]) -> Result<SearchOutcome, TdamError> {
        compiled_search(&self.array, &self.compiled, query)
    }

    /// Searches one query through the bit-sliced packed kernel, first
    /// verifying the snapshot still matches `source`. Decisions (counts,
    /// decoded distances, winner) are exactly identical to the behavioral
    /// model; delays carry the packed reconstruction contract
    /// ([`crate::packed`]).
    ///
    /// # Errors
    ///
    /// As [`CompiledSnapshot::search`].
    pub fn search_packed(
        &self,
        source: &TdamArray,
        query: &[u8],
    ) -> Result<SearchOutcome, TdamError> {
        if !self.is_fresh(source) {
            return Err(TdamError::StaleCompile {
                compiled: self.generation,
                current: source.generation,
            });
        }
        self.search_packed_unchecked(query)
    }

    /// Packed-kernel search against the snapshot's own frozen state,
    /// without consulting the source array (see
    /// [`CompiledSnapshot::search_unchecked`]).
    ///
    /// # Errors
    ///
    /// As [`TdamArray::search`].
    pub fn search_packed_unchecked(&self, query: &[u8]) -> Result<SearchOutcome, TdamError> {
        validate_query(&self.array, query)?;
        let mut scratch = self.packed.scratch();
        packed_search_prevalidated(&self.array, &self.packed, query, &mut scratch)
    }

    /// Answers a whole batch through the packed kernel, verifying
    /// freshness against `source` once up front, then fanning queries out
    /// across `threads` workers with one reused query-plane scratch per
    /// worker and batch-level validation (no per-query allocation or
    /// re-validation in the hot loop).
    ///
    /// # Errors
    ///
    /// [`TdamError::StaleCompile`] if stale, otherwise the first per-query
    /// error in batch order.
    pub fn search_batch(
        &self,
        source: &TdamArray,
        batch: &crate::engine::BatchQuery,
        threads: Option<usize>,
    ) -> Result<Vec<SearchOutcome>, TdamError> {
        if !self.is_fresh(source) {
            return Err(TdamError::StaleCompile {
                compiled: self.generation,
                current: source.generation,
            });
        }
        validate_batch(&self.array, batch)?;
        let tiles = crate::parallel::run_chunked_scratch(
            batch.len().div_ceil(QUERY_TILE),
            threads,
            || self.packed.tile_scratch(QUERY_TILE),
            |scratch, tile| packed_search_tile(&self.array, &self.packed, batch, tile, scratch),
        )?;
        Ok(tiles.into_iter().flatten().collect())
    }

    /// Answers a whole batch through the scalar per-cell delay LUTs (the
    /// bit-identical-to-behavioral comparison tier; see
    /// [`CompiledArray::search_batch_lut`]).
    ///
    /// # Errors
    ///
    /// As [`CompiledSnapshot::search_batch`].
    pub fn search_batch_lut(
        &self,
        source: &TdamArray,
        batch: &crate::engine::BatchQuery,
        threads: Option<usize>,
    ) -> Result<Vec<SearchOutcome>, TdamError> {
        if !self.is_fresh(source) {
            return Err(TdamError::StaleCompile {
                compiled: self.generation,
                current: source.generation,
            });
        }
        crate::parallel::run_chunked(batch.len(), threads, |i| {
            self.search_unchecked(batch.get(i))
        })
    }

    /// Answers a whole batch decision-only against the snapshot's frozen
    /// state after a freshness check (see
    /// [`CompiledArray::decide_batch`]).
    ///
    /// # Errors
    ///
    /// As [`CompiledSnapshot::search_batch`].
    pub fn decide_batch(
        &self,
        source: &TdamArray,
        batch: &crate::engine::BatchQuery,
        threads: Option<usize>,
    ) -> Result<Vec<crate::packed::PackedDecision>, TdamError> {
        if !self.is_fresh(source) {
            return Err(TdamError::StaleCompile {
                compiled: self.generation,
                current: source.generation,
            });
        }
        validate_batch(&self.array, batch)?;
        let tiles = crate::parallel::run_chunked_scratch(
            batch.len().div_ceil(QUERY_TILE),
            threads,
            || self.packed.tile_scratch(QUERY_TILE),
            |scratch, tile| packed_decide_tile(&self.array, &self.packed, batch, tile, scratch),
        )?;
        Ok(tiles.into_iter().flatten().collect())
    }

    /// Incrementally re-syncs this snapshot to `source` after row
    /// mutations, rebuilding **only** the listed rows: each row's chain is
    /// recloned, its scalar delay LUT recompiled, and its packed bit
    /// planes surgically rewritten in place
    /// ([`PackedArray::repack_row`](crate::packed::PackedArray)); the
    /// snapshot then adopts `source`'s generation. Cost is O(rows
    /// touched · stages) instead of the O(array) of a fresh
    /// [`TdamArray::compile_snapshot`] — the repack half of the online
    /// mutation path, measured and pinned by the `ext_mutation` bench.
    ///
    /// The caller must list **every** row whose stored contents changed
    /// since this snapshot's generation (the serving runtime tracks the
    /// dirty-row set; see [`crate::runtime`]). `source` must have the
    /// same geometry, timing, and TDC calibration the snapshot was
    /// compiled from — only row contents may differ. After the call the
    /// snapshot is bit-identical to `source.compile_snapshot()`.
    ///
    /// Returns the number of rows refreshed.
    ///
    /// # Panics
    ///
    /// Panics if a listed row is out of bounds.
    pub fn refresh_rows(
        &mut self,
        source: &TdamArray,
        rows: impl IntoIterator<Item = usize>,
    ) -> usize {
        debug_assert_eq!(self.array.config, source.config);
        let mut refreshed = 0;
        for row in rows {
            let chain = source.chains[row].clone();
            self.compiled[row] = chain.compile();
            self.array.chains[row] = chain;
            self.packed.repack_row(&self.array, row);
            refreshed += 1;
        }
        self.array.generation = source.generation;
        self.generation = source.generation;
        refreshed
    }

    /// Forces a dispatch-ladder rung for this snapshot's packed kernel
    /// (see [`CompiledArray::force_kernel`]).
    pub fn force_kernel(&mut self, kernel: crate::packed::PackedKernel) -> bool {
        self.packed.set_kernel(kernel)
    }

    /// The dispatch-ladder rung this snapshot's packed kernel executes.
    pub fn kernel(&self) -> crate::packed::PackedKernel {
        self.packed.kernel()
    }
}

/// Extracts each cell's actual `(F_A, F_B)` thresholds from a chain.
fn chain_cells(chain: &DelayChain) -> Vec<(f64, f64)> {
    chain.cells().iter().map(|c| c.vth_actual()).collect()
}

impl SimilarityEngine for TdamArray {
    fn name(&self) -> &str {
        "This work (4T-2FeFET TD-AM)"
    }

    fn is_quantitative(&self) -> bool {
        true
    }

    fn rows(&self) -> usize {
        self.config.rows
    }

    fn width(&self) -> usize {
        self.config.stages
    }

    fn bits_per_element(&self) -> u8 {
        self.config.encoding.bits()
    }

    fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError> {
        if row >= self.chains.len() {
            return Err(TdamError::RowOutOfBounds {
                row,
                rows: self.config.rows,
            });
        }
        self.chains[row] = DelayChain::with_timing(values, &self.config, self.timing)?;
        self.generation += 1;
        Ok(())
    }

    fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        let outcome = TdamArray::search(self, query)?;
        Ok(outcome.metrics())
    }

    /// Batched override: packs nominal rows into the bit-sliced kernel
    /// once, then fans the queries out across all cores. Winners and
    /// decoded distances are exactly identical to the sequential default;
    /// analog delay/latency figures carry the packed reconstruction
    /// contract ([`crate::packed`]; pinned in `tests/batch_parallel.rs`
    /// and `tests/packed_equiv.rs`).
    fn search_batch(&mut self, batch: &BatchQuery) -> Result<BatchResult, TdamError> {
        if batch.width() != self.config.stages {
            return Err(TdamError::LengthMismatch {
                got: batch.width(),
                expected: self.config.stages,
            });
        }
        let compiled = self.compile();
        let outcomes = compiled.search_batch(batch, None)?;
        Ok(BatchResult {
            queries: outcomes.iter().map(SearchOutcome::metrics).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn array(rows: usize, stages: usize) -> TdamArray {
        TdamArray::new(
            ArrayConfig::paper_default()
                .with_rows(rows)
                .with_stages(stages),
        )
        .unwrap()
    }

    #[test]
    fn store_and_retrieve() {
        let mut am = array(2, 4);
        am.store(1, &[1, 2, 3, 0]).unwrap();
        assert_eq!(am.stored(1).unwrap(), vec![1, 2, 3, 0]);
        assert_eq!(am.stored(0).unwrap(), vec![0, 0, 0, 0]);
        assert!(am.stored(2).is_err());
    }

    #[test]
    fn best_row_is_nearest() {
        let mut am = array(4, 8);
        am.store(0, &[0, 0, 0, 0, 0, 0, 0, 0]).unwrap();
        am.store(1, &[1, 1, 1, 1, 1, 1, 1, 1]).unwrap();
        am.store(2, &[1, 1, 1, 1, 0, 0, 0, 0]).unwrap();
        am.store(3, &[3, 3, 3, 3, 3, 3, 3, 3]).unwrap();
        let out = TdamArray::search(&am, &[1, 1, 1, 0, 0, 0, 0, 0]).unwrap();
        assert_eq!(out.best_row(), Some(2));
        assert_eq!(out.decoded(), vec![3, 5, 1, 8]);
    }

    #[test]
    fn decoded_equals_ground_truth_nominal() {
        let mut am = array(3, 16);
        am.store(0, &[2; 16]).unwrap();
        am.store(1, &[0; 16]).unwrap();
        am.store(2, &[3; 16]).unwrap();
        let q: Vec<u8> = (0..16).map(|i| (i % 4) as u8).collect();
        let out = TdamArray::search(&am, &q).unwrap();
        for r in &out.rows {
            assert_eq!(r.decoded_mismatches, r.chain.mismatches);
        }
    }

    #[test]
    fn invalid_operations_rejected() {
        let mut am = array(1, 4);
        assert!(am.store(5, &[0; 4]).is_err());
        assert!(am.store(0, &[0; 3]).is_err());
        assert!(am.store(0, &[9; 4]).is_err());
        assert!(TdamArray::search(&am, &[0; 3]).is_err());
    }

    #[test]
    fn latency_tracks_worst_row() {
        let mut am = array(2, 16);
        am.store(0, &[1; 16]).unwrap(); // will fully match
        am.store(1, &[2; 16]).unwrap(); // 16 mismatches
        let out = TdamArray::search(&am, &[1; 16]).unwrap();
        let worst = out.rows[1].chain.total_delay;
        assert!(out.latency >= worst, "latency must cover the slowest row");
    }

    #[test]
    fn energy_includes_tdc_and_shared_sl() {
        let am = array(2, 8);
        let out = TdamArray::search(&am, &[1; 8]).unwrap();
        assert!(out.energy.tdc > 0.0);
        assert!(out.energy.search_lines > 0.0);
        // SLs are shared: same as a 1-row array of the same width.
        let am1 = array(1, 8);
        let out1 = TdamArray::search(&am1, &[1; 8]).unwrap();
        assert!((out.energy.search_lines - out1.energy.search_lines).abs() < 1e-24);
    }

    #[test]
    fn aging_preserves_then_breaks_decode() {
        use tdam_fefet::retention::Lifetime;
        let mut am = array(1, 32);
        am.store(0, &[1; 32]).unwrap();
        let q = vec![2u8; 32];
        let fresh = TdamArray::search(&am, &q).unwrap().decoded()[0];
        assert_eq!(fresh, 32);

        // Ten-year retention: decode still exact.
        let mut decade = Lifetime::fresh();
        decade.seconds = 3.15e8;
        am.age(&decade).unwrap();
        let aged = TdamArray::search(&am, &q).unwrap().decoded()[0];
        assert_eq!(aged, 32, "10-year-aged array must still decode");

        // Deep fatigue: the window collapses and the count degrades.
        let mut am2 = array(1, 32);
        am2.store(0, &[1; 32]).unwrap();
        let mut worn = Lifetime::fresh();
        worn.cycles = 1e13;
        am2.age(&worn).unwrap();
        let broken = TdamArray::search(&am2, &q).unwrap().decoded()[0];
        assert!(
            broken < 32,
            "a fully fatigued window cannot hold the ladder apart: {broken}"
        );
    }

    #[test]
    fn program_row_write_verify_path() {
        let mut am = array(2, 8);
        let values = [0u8, 1, 2, 3, 3, 2, 1, 0];
        let report = am.program_row(0, &values).unwrap();
        assert!(report.pulse_pairs >= 16, "at least one pair per FeFET");
        assert!(report.energy > 1e-13, "write energy {:.3e}", report.energy);
        assert!(
            report.worst_vth_error <= 10e-3 + 1e-12,
            "verify tolerance respected: {:.4e}",
            report.worst_vth_error
        );
        // The programmed row still searches correctly: achieved thresholds
        // are within the sensing margin.
        let out = TdamArray::search(&am, &values).unwrap();
        assert_eq!(out.rows[0].decoded_mismatches, 0);
        let mut q = values;
        q[3] = 0;
        let out = TdamArray::search(&am, &q).unwrap();
        assert_eq!(out.rows[0].decoded_mismatches, 1);
    }

    #[test]
    fn program_row_validates_input() {
        let mut am = array(1, 4);
        assert!(am.program_row(3, &[0; 4]).is_err());
        assert!(am.program_row(0, &[0; 3]).is_err());
        assert!(am.program_row(0, &[9; 4]).is_err());
    }

    #[test]
    fn writes_cost_far_more_than_searches() {
        let mut am = array(1, 16);
        let report = am.program_row(0, &[1; 16]).unwrap();
        let search = TdamArray::search(&am, &[1; 16]).unwrap();
        assert!(
            report.energy > 50.0 * search.energy.total(),
            "write {:.3e} vs search {:.3e}",
            report.energy,
            search.energy.total()
        );
    }

    #[test]
    fn compiled_array_bit_identical_search() {
        let mut am = array(6, 16);
        for row in 0..6 {
            let v: Vec<u8> = (0..16).map(|i| ((i + row) % 4) as u8).collect();
            am.store(row, &v).unwrap();
        }
        let compiled = am.compile();
        assert!(compiled.fully_compiled());
        assert_eq!(compiled.compiled_rows(), 6);
        for q in [vec![0u8; 16], (0..16).map(|i| (i % 4) as u8).collect()] {
            let reference = TdamArray::search(&am, &q).unwrap();
            let fast = compiled.search(&q).unwrap();
            assert_eq!(fast, reference, "compiled path must be bit-identical");
        }
    }

    #[test]
    fn perturbed_rows_fall_back_but_still_match_reference() {
        let mut am = array(3, 8);
        am.store(0, &[1; 8]).unwrap();
        am.store(2, &[2; 8]).unwrap();
        // Row 1: perturbed thresholds — must not compile, must still agree
        // with the reference search via the fallback path.
        let cells = (0..8)
            .map(|_| crate::cell::Cell::with_vth(1, am.config().encoding, 0.63, 1.02).unwrap())
            .collect();
        am.store_cells(1, cells).unwrap();
        let compiled = am.compile();
        assert!(!compiled.fully_compiled());
        assert_eq!(compiled.compiled_rows(), 2);
        let q = vec![2u8; 8];
        assert_eq!(
            compiled.search(&q).unwrap(),
            TdamArray::search(&am, &q).unwrap()
        );
    }

    #[test]
    fn batch_search_matches_sequential_loop() {
        let mut am = array(4, 8);
        am.store(0, &[0, 1, 2, 3, 0, 1, 2, 3]).unwrap();
        am.store(1, &[3, 3, 3, 3, 0, 0, 0, 0]).unwrap();
        am.store(2, &[1; 8]).unwrap();
        let rows: Vec<Vec<u8>> = (0..10)
            .map(|k| (0..8).map(|i| ((i * k + k) % 4) as u8).collect())
            .collect();
        let batch = BatchQuery::from_rows(&rows).unwrap();
        let batched = am.search_batch(&batch).unwrap();
        assert_eq!(batched.len(), 10);
        // The packed batch path preserves the decision exactly; the analog
        // figures are reconstructed count-indexed and agree to ulps (see
        // crate::packed).
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs());
        for (i, q) in rows.iter().enumerate() {
            let single = SimilarityEngine::search(&mut am, q).unwrap();
            let got = &batched.queries[i];
            assert_eq!(got.best_row, single.best_row);
            assert_eq!(got.distances, single.distances);
            assert!(close(got.energy, single.energy));
            assert!(close(got.latency, single.latency));
        }
        // Width mismatch rejected before any work.
        let bad = BatchQuery::new(5);
        assert!(am.search_batch(&bad).is_err());
    }

    #[test]
    fn packed_search_single_query_matches_batch_path() {
        let mut am = array(4, 10);
        for row in 0..4 {
            let v: Vec<u8> = (0..10).map(|i| ((i * 2 + row) % 4) as u8).collect();
            am.store(row, &v).unwrap();
        }
        let compiled = am.compile();
        assert_eq!(compiled.packed_rows(), compiled.compiled_rows());
        let rows: Vec<Vec<u8>> = (0..5)
            .map(|k| (0..10).map(|i| ((i + k) % 4) as u8).collect())
            .collect();
        let batch = BatchQuery::from_rows(&rows).unwrap();
        let batched = compiled.search_batch(&batch, Some(1)).unwrap();
        for (i, q) in rows.iter().enumerate() {
            assert_eq!(compiled.search_packed(q).unwrap(), batched[i]);
        }
        // The scalar LUT tier stays available and bit-identical to the
        // behavioral reference.
        let lut = compiled.search_batch_lut(&batch, Some(1)).unwrap();
        for (i, q) in rows.iter().enumerate() {
            assert_eq!(lut[i], TdamArray::search(&am, q).unwrap());
        }
    }

    #[test]
    fn packed_batch_rejects_invalid_elements_up_front() {
        let am = array(2, 4);
        let compiled = am.compile();
        let mut batch = BatchQuery::new(4);
        batch.push(&[0, 1, 2, 3]).unwrap();
        // Push a query with an out-of-range element for the 2-bit
        // encoding: batch-level validation must reject the whole batch.
        batch.push(&[0, 9, 0, 0]).unwrap();
        assert!(compiled.search_batch(&batch, Some(1)).is_err());
    }

    #[test]
    fn compiled_batch_thread_count_invariant() {
        let mut am = array(3, 8);
        am.store(0, &[1; 8]).unwrap();
        am.store(1, &[2; 8]).unwrap();
        let rows: Vec<Vec<u8>> = (0..7)
            .map(|k| (0..8).map(|i| ((i + k) % 4) as u8).collect())
            .collect();
        let batch = BatchQuery::from_rows(&rows).unwrap();
        let compiled = am.compile();
        let one = compiled.search_batch(&batch, Some(1)).unwrap();
        for threads in [Some(2), Some(5), None] {
            assert_eq!(compiled.search_batch(&batch, threads).unwrap(), one);
        }
    }

    #[test]
    fn generation_tracks_every_mutation_path() {
        let mut am = array(2, 4);
        assert_eq!(am.generation(), 0);
        am.store(0, &[1, 2, 3, 0]).unwrap();
        assert_eq!(am.generation(), 1);
        let cells = (0..4)
            .map(|_| crate::cell::Cell::with_vth(1, am.config().encoding, 0.63, 1.02).unwrap())
            .collect();
        am.store_cells(1, cells).unwrap();
        assert_eq!(am.generation(), 2);
        am.program_row(0, &[0, 1, 2, 3]).unwrap();
        assert_eq!(am.generation(), 3);
        am.age(&tdam_fefet::retention::Lifetime::fresh()).unwrap();
        assert_eq!(am.generation(), 4);
        // Failed mutations must not bump: nothing changed.
        assert!(am.store(9, &[0; 4]).is_err());
        assert_eq!(am.generation(), 4);
    }

    #[test]
    fn stale_snapshot_refuses_to_serve() {
        let mut am = array(2, 4);
        am.store(0, &[1, 2, 3, 0]).unwrap();
        let snap = am.compile_snapshot();
        assert!(snap.is_fresh(&am));
        assert_eq!(
            snap.search(&am, &[1, 2, 3, 0]).unwrap(),
            TdamArray::search(&am, &[1, 2, 3, 0]).unwrap()
        );

        // Reprogram after compile: the old tables would decode row 0 as a
        // perfect match for the *old* contents — that must be refused.
        am.store(0, &[3, 3, 3, 3]).unwrap();
        assert!(!snap.is_fresh(&am));
        let err = snap.search(&am, &[1, 2, 3, 0]).unwrap_err();
        assert_eq!(
            err,
            TdamError::StaleCompile {
                compiled: 1,
                current: 2
            }
        );
        let batch = BatchQuery::from_rows(&[vec![1u8, 2, 3, 0]]).unwrap();
        assert!(matches!(
            snap.search_batch(&am, &batch, Some(1)).unwrap_err(),
            TdamError::StaleCompile { .. }
        ));
        // The unchecked path still serves the frozen compile-time state.
        let frozen = snap.search_unchecked(&[1, 2, 3, 0]).unwrap();
        assert_eq!(frozen.rows[0].decoded_mismatches, 0);

        // Recompile heals it.
        let snap2 = am.compile_snapshot();
        assert_eq!(
            snap2.search(&am, &[3, 3, 3, 3]).unwrap().best_row(),
            Some(0)
        );
        assert_eq!(err.class(), crate::ErrorClass::Transient);
    }

    #[test]
    fn refresh_rows_resyncs_a_stale_snapshot_incrementally() {
        let mut am = array(6, 16);
        for row in 0..6 {
            let v: Vec<u8> = (0..16).map(|i| ((i * 5 + row) % 4) as u8).collect();
            am.store(row, &v).unwrap();
        }
        let mut snap = am.compile_snapshot();

        // Mutate a few rows (one of them twice) and refresh exactly the
        // touched set: the snapshot must serve again and be bit-identical
        // to a from-scratch recompile.
        am.store(2, &[3; 16]).unwrap();
        am.store(4, &[1; 16]).unwrap();
        am.store(2, &[0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3])
            .unwrap();
        assert!(!snap.is_fresh(&am));
        assert_eq!(snap.refresh_rows(&am, [2usize, 4]), 2);
        assert!(snap.is_fresh(&am));

        let rebuilt = am.compile_snapshot();
        assert_eq!(snap.generation(), rebuilt.generation());
        let rows: Vec<Vec<u8>> = (0..9)
            .map(|k| (0..16).map(|i| ((i + 2 * k) % 4) as u8).collect())
            .collect();
        for q in &rows {
            assert_eq!(
                snap.search(&am, q).unwrap(),
                rebuilt.search(&am, q).unwrap()
            );
            assert_eq!(
                snap.search_packed(&am, q).unwrap(),
                rebuilt.search_packed(&am, q).unwrap()
            );
        }
        let batch = BatchQuery::from_rows(&rows).unwrap();
        assert_eq!(
            snap.decide_batch(&am, &batch, Some(1)).unwrap(),
            rebuilt.decide_batch(&am, &batch, Some(1)).unwrap()
        );
    }

    #[test]
    fn refresh_rows_tracks_compiled_tier_transitions() {
        let mut am = array(3, 8);
        for row in 0..3 {
            am.store(row, &[1; 8]).unwrap();
        }
        let mut snap = am.compile_snapshot();
        assert!(snap.fully_compiled());
        // A perturbed-cell write demotes the row's scalar LUT and packed
        // service on refresh...
        let cells = (0..8)
            .map(|_| crate::cell::Cell::with_vth(1, am.config().encoding, 0.63, 1.02).unwrap())
            .collect();
        am.store_cells(1, cells).unwrap();
        snap.refresh_rows(&am, [1usize]);
        assert_eq!(snap.compiled_rows(), 2);
        assert_eq!(snap.packed_rows(), 2);
        // ...and a nominal rewrite restores both tiers.
        am.store(1, &[2; 8]).unwrap();
        snap.refresh_rows(&am, [1usize]);
        assert!(snap.fully_compiled());
        assert_eq!(snap.packed_rows(), 3);
        assert_eq!(snap.search_unchecked(&[2; 8]).unwrap().best_row(), Some(1));
    }

    #[test]
    fn snapshot_search_bit_identical_to_reference() {
        let mut am = array(5, 16);
        for row in 0..5 {
            let v: Vec<u8> = (0..16).map(|i| ((i * 3 + row) % 4) as u8).collect();
            am.store(row, &v).unwrap();
        }
        let snap = am.compile_snapshot();
        assert!(snap.fully_compiled());
        assert_eq!(snap.compiled_rows(), 5);
        assert_eq!(snap.generation(), am.generation());
        let rows: Vec<Vec<u8>> = (0..9)
            .map(|k| (0..16).map(|i| ((i + k) % 4) as u8).collect())
            .collect();
        for q in &rows {
            assert_eq!(
                snap.search(&am, q).unwrap(),
                TdamArray::search(&am, q).unwrap()
            );
        }
        let batch = BatchQuery::from_rows(&rows).unwrap();
        let one = snap.search_batch(&am, &batch, Some(1)).unwrap();
        for threads in [Some(3), None] {
            assert_eq!(snap.search_batch(&am, &batch, threads).unwrap(), one);
        }
    }

    #[test]
    fn engine_trait_roundtrip() {
        let mut am = array(2, 4);
        SimilarityEngine::store(&mut am, 0, &[1, 2, 3, 0]).unwrap();
        let metrics = SimilarityEngine::search(&mut am, &[1, 2, 3, 0]).unwrap();
        assert_eq!(metrics.best_row, Some(0));
        assert_eq!(metrics.distances[0], Some(0));
        assert!(metrics.energy > 0.0);
        assert!(metrics.latency > 0.0);
        assert!(am.is_quantitative());
        assert_eq!(am.total_bits(), 2 * 4 * 2);
    }

    proptest! {
        #[test]
        fn search_never_misranks_nominal(
            stored in prop::collection::vec(prop::collection::vec(0u8..4, 8), 3),
            query in prop::collection::vec(0u8..4, 8),
        ) {
            let mut am = array(3, 8);
            for (i, row) in stored.iter().enumerate() {
                am.store(i, row).unwrap();
            }
            let out = TdamArray::search(&am, &query).unwrap();
            let best = out.best_row().unwrap();
            let truth: Vec<usize> = stored
                .iter()
                .map(|row| row.iter().zip(&query).filter(|(a, b)| a != b).count())
                .collect();
            let min_truth = *truth.iter().min().unwrap();
            prop_assert_eq!(truth[best], min_truth);
        }
    }
}
