//! Full circuit-level simulation of a delay chain (Fig. 4).
//!
//! Delay chains are feed-forward: each stage's output drives only the next
//! stage's inverter gate. This module exploits that by simulating one
//! stage-sized circuit at a time and handing the sampled output waveform
//! to the next stage as a PWL source — the numerical behaviour (edge
//! slew propagation, partial-swing errors) is preserved without ever
//! assembling a chain-sized matrix, so 32–128-stage transients finish in
//! milliseconds.
//!
//! Both operation steps of the 2-step scheme are simulated: step I sends a
//! rising edge with odd stages deactivated (their MN forced to `V_DD` by
//! `V_SL0` on both search lines), step II sends a falling edge with even
//! stages deactivated.

use crate::cell::Cell;
use crate::config::ArrayConfig;
use crate::stage::{build_stage_netlist, MnDrive};
use crate::TdamError;
use tdam_ckt::analysis::{TranConfig, Transient};
use tdam_ckt::netlist::Netlist;
use tdam_ckt::waveform::{Edge, Trace, Waveform};

/// Which operation step to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Step I: rising input edge, even stages active.
    RisingEven,
    /// Step II: falling input edge, odd stages active.
    FallingOdd,
}

/// Result of circuit-simulating one step through the whole chain.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// 50% input-edge to 50% output-edge delay, seconds.
    pub delay: f64,
    /// Supply energy summed over all stages, joules.
    pub supply_energy: f64,
    /// The waveform at the final stage output.
    pub output: Trace,
}

/// Result of a full 2-step circuit evaluation.
#[derive(Debug, Clone)]
pub struct CircuitChainResult {
    /// Step-I result.
    pub rising: StepResult,
    /// Step-II result.
    pub falling: StepResult,
}

impl CircuitChainResult {
    /// Total delay `rising + falling`, seconds.
    pub fn total_delay(&self) -> f64 {
        self.rising.delay + self.falling.delay
    }

    /// Total supply energy over both steps, joules.
    pub fn total_energy(&self) -> f64 {
        self.rising.supply_energy + self.falling.supply_energy
    }
}

/// A circuit-level delay chain built from explicit cells.
#[derive(Debug, Clone)]
pub struct CircuitChain {
    cells: Vec<Cell>,
    config: ArrayConfig,
}

impl CircuitChain {
    /// Builds a circuit chain storing `values` with nominal cells.
    ///
    /// # Errors
    ///
    /// Returns shape/range errors as [`DelayChain::new`](crate::chain::DelayChain::new).
    pub fn new(values: &[u8], config: &ArrayConfig) -> Result<Self, TdamError> {
        config.validate()?;
        if values.len() != config.stages {
            return Err(TdamError::LengthMismatch {
                got: values.len(),
                expected: config.stages,
            });
        }
        let cells = values
            .iter()
            .map(|&v| Cell::new(v, config.encoding))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            cells,
            config: *config,
        })
    }

    /// Builds a circuit chain from explicit (possibly perturbed) cells.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::LengthMismatch`] for a wrong cell count.
    pub fn from_cells(cells: Vec<Cell>, config: &ArrayConfig) -> Result<Self, TdamError> {
        config.validate()?;
        if cells.len() != config.stages {
            return Err(TdamError::LengthMismatch {
                got: cells.len(),
                expected: config.stages,
            });
        }
        Ok(Self {
            cells,
            config: *config,
        })
    }

    /// Simulates one step of the 2-step scheme against `query`.
    ///
    /// Active stages whose cell mismatches have their MN forced low
    /// (mismatch) and matching ones high — the cell-level MN dynamics are
    /// validated separately in [`crate::cell`] and [`crate::stage`]; forcing
    /// keeps each stage circuit at five nodes so 128-stage chains remain
    /// fast. Pass `with_cells = true` to include the full 2-FeFET cell in
    /// every active stage instead.
    ///
    /// # Errors
    ///
    /// Propagates circuit failures and query validation errors.
    pub fn simulate_step(
        &self,
        query: &[u8],
        step: Step,
        with_cells: bool,
    ) -> Result<StepResult, TdamError> {
        if query.len() != self.cells.len() {
            return Err(TdamError::LengthMismatch {
                got: query.len(),
                expected: self.cells.len(),
            });
        }
        self.config.encoding.validate(query)?;
        let tech = &self.config.tech;
        let vdd = tech.vdd;

        // Launch edge at t = 2 ns (compute phase settled).
        let t_edge = 2.0e-9;
        let (v_from, v_to) = match step {
            Step::RisingEven => (0.0, vdd),
            Step::FallingOdd => (vdd, 0.0),
        };
        let mut input_wave = Waveform::Pwl(vec![
            (0.0, v_from),
            (t_edge, v_from),
            (t_edge + 20e-12, v_to),
        ]);
        let mut input_edge_kind = match step {
            Step::RisingEven => Edge::Rising,
            Step::FallingOdd => Edge::Falling,
        };

        // Generous per-stage horizon: edge launch + mismatch penalty bound.
        let t_stage = t_edge
            + 40.0
                * (crate::timing::StageTiming::analytic(tech, self.config.c_load)?.d_c
                    + 4.0 * crate::timing::StageTiming::analytic(tech, self.config.c_load)?.d_inv)
            + 1.0e-9;

        let mut t_in_edge = None;
        let mut energy = 0.0;
        let mut output = Trace::default();

        for (j, cell) in self.cells.iter().enumerate() {
            let active = match step {
                Step::RisingEven => j % 2 == 0,
                Step::FallingOdd => j % 2 == 1,
            };
            let outcome = cell.evaluate(query[j])?;
            let drive = if !active {
                MnDrive::ForcedMatch
            } else if with_cells {
                MnDrive::Cell {
                    cell: cell.clone(),
                    query: query[j],
                }
            } else if outcome.is_match() {
                MnDrive::ForcedMatch
            } else {
                MnDrive::ForcedMismatch
            };
            let nl = build_stage_netlist(tech, self.config.c_load, &drive, input_wave.clone())?;
            let res = Transient::new(&nl, TranConfig::until(t_stage).with_max_step(3e-12)).run()?;
            let in_trace = res.trace("in")?;
            if t_in_edge.is_none() {
                t_in_edge = in_trace.first_crossing(vdd / 2.0, input_edge_kind);
            }
            energy += res.delivered_energy("VDD")?;
            output = res.trace("out")?;
            input_wave = output.to_waveform(4000);
            // The inverter flips the edge for the next stage.
            input_edge_kind = match input_edge_kind {
                Edge::Rising => Edge::Falling,
                Edge::Falling => Edge::Rising,
                Edge::Any => Edge::Any,
            };
        }

        let t_in = t_in_edge.ok_or(TdamError::InvalidConfig {
            what: "input edge not found in first stage",
        })?;
        let t_out =
            output
                .first_crossing(vdd / 2.0, input_edge_kind)
                .ok_or(TdamError::InvalidConfig {
                    what: "chain output never switched (horizon too short?)",
                })?;
        Ok(StepResult {
            delay: t_out - t_in,
            supply_energy: energy,
            output,
        })
    }

    /// Runs both steps and combines them.
    ///
    /// # Errors
    ///
    /// As [`CircuitChain::simulate_step`].
    pub fn evaluate(
        &self,
        query: &[u8],
        with_cells: bool,
    ) -> Result<CircuitChainResult, TdamError> {
        let rising = self.simulate_step(query, Step::RisingEven, with_cells)?;
        let falling = self.simulate_step(query, Step::FallingOdd, with_cells)?;
        Ok(CircuitChainResult { rising, falling })
    }

    /// Builds ONE netlist containing every stage of the chain — no
    /// waveform handoff — for a given step of the 2-step scheme. Node
    /// names: `"in"`, `"out0"…"outN-1"`, `"ctopJ"`, `"mnJ"`.
    ///
    /// This is the ground-truth topology the stage-by-stage handoff of
    /// [`CircuitChain::simulate_step`] approximates; the MNA system grows
    /// to several unknowns per stage, which is what the circuit
    /// simulator's sparse solver exists for.
    ///
    /// # Errors
    ///
    /// Returns query shape/range errors.
    pub fn build_monolithic_netlist(&self, query: &[u8], step: Step) -> Result<Netlist, TdamError> {
        if query.len() != self.cells.len() {
            return Err(TdamError::LengthMismatch {
                got: query.len(),
                expected: self.cells.len(),
            });
        }
        self.config.encoding.validate(query)?;
        let tech = &self.config.tech;
        let vdd = tech.vdd;
        let mut nl = Netlist::new();
        let vddn = nl.node("vdd");
        nl.vsource("VDD", vddn, Netlist::GND, Waveform::dc(vdd));

        let t_edge = 2.0e-9;
        let (v_from, v_to) = match step {
            Step::RisingEven => (0.0, vdd),
            Step::FallingOdd => (vdd, 0.0),
        };
        let inp = nl.node("in");
        nl.vsource(
            "VIN",
            inp,
            Netlist::GND,
            Waveform::Pwl(vec![
                (0.0, v_from),
                (t_edge, v_from),
                (t_edge + 20e-12, v_to),
            ]),
        );

        let mut prev = inp;
        for (j, cell) in self.cells.iter().enumerate() {
            let out = nl.node(&format!("out{j}"));
            let ctop = nl.node(&format!("ctop{j}"));
            let mn = nl.node(&format!("mn{j}"));
            nl.mosfet(&format!("MP{j}"), out, prev, vddn, tech.pmos);
            nl.mosfet(&format!("MN{j}"), out, prev, Netlist::GND, tech.nmos);
            nl.capacitor(&format!("CS{j}"), out, Netlist::GND, tech.c_self)?;
            // The device model is pure transconductance (no gate charge),
            // so the next stage's inverter gate capacitance is an explicit
            // capacitor at every output — for the last stage it stands in
            // for the TDC input.
            nl.capacitor(&format!("CG{j}"), out, Netlist::GND, tech.c_gate)?;
            nl.mosfet(
                &format!("MSW{j}"),
                ctop,
                mn,
                out,
                tech.pmos.with_width_multiple(tech.switch_width_mult),
            );
            nl.capacitor(&format!("CL{j}"), ctop, Netlist::GND, self.config.c_load)?;
            let active = match step {
                Step::RisingEven => j % 2 == 0,
                Step::FallingOdd => j % 2 == 1,
            };
            let mismatch = active && !cell.evaluate(query[j])?.is_match();
            nl.vsource(
                &format!("VMN{j}"),
                mn,
                Netlist::GND,
                Waveform::dc(if mismatch { 0.0 } else { vdd }),
            );
            prev = out;
        }
        Ok(nl)
    }

    /// Simulates one step through the monolithic (single-matrix) netlist
    /// and measures the chain delay exactly as
    /// [`CircuitChain::simulate_step`] does.
    ///
    /// # Errors
    ///
    /// Propagates circuit failures and query validation errors.
    pub fn simulate_step_monolithic(
        &self,
        query: &[u8],
        step: Step,
    ) -> Result<StepResult, TdamError> {
        let nl = self.build_monolithic_netlist(query, step)?;
        let tech = &self.config.tech;
        let vdd = tech.vdd;
        let timing = crate::timing::StageTiming::analytic(tech, self.config.c_load)?;
        let n = self.cells.len();
        let t_stop = 2.0e-9 + 4.0 * (n as f64) * (timing.d_c + 4.0 * timing.d_inv) + 1.0e-9;
        let res = Transient::new(&nl, TranConfig::until(t_stop).with_max_step(3e-12)).run()?;
        let in_edge = match step {
            Step::RisingEven => Edge::Rising,
            Step::FallingOdd => Edge::Falling,
        };
        let t_in = res.trace("in")?.first_crossing(vdd / 2.0, in_edge).ok_or(
            TdamError::InvalidConfig {
                what: "input edge not found",
            },
        )?;
        // Output edge polarity flips once per stage.
        let out_edge = if n.is_multiple_of(2) {
            in_edge
        } else {
            match in_edge {
                Edge::Rising => Edge::Falling,
                Edge::Falling => Edge::Rising,
                Edge::Any => Edge::Any,
            }
        };
        let output = res.trace(&format!("out{}", n - 1))?;
        let t_out = output
            .first_crossing(vdd / 2.0, out_edge)
            .ok_or(TdamError::InvalidConfig {
                what: "chain output never switched (horizon too short?)",
            })?;
        Ok(StepResult {
            delay: t_out - t_in,
            supply_energy: res.delivered_energy("VDD")?,
            output,
        })
    }

    /// Simulates the *naive* single-pass scheme the 2-step operation
    /// replaces: every stage active at once, one rising edge through the
    /// whole chain.
    ///
    /// Because the inverter flips the edge at every stage, only stages
    /// whose output transition is *falling* are meaningfully loaded by the
    /// PMOS-gated capacitor — a mismatch's delay contribution depends on
    /// its **position parity**, which destroys the linear delay ↔ Hamming
    /// distance mapping. The 2-step scheme exists to fix exactly this; the
    /// `ablation_two_step` bench quantifies it.
    ///
    /// # Errors
    ///
    /// As [`CircuitChain::simulate_step`].
    pub fn simulate_naive(&self, query: &[u8]) -> Result<StepResult, TdamError> {
        if query.len() != self.cells.len() {
            return Err(TdamError::LengthMismatch {
                got: query.len(),
                expected: self.cells.len(),
            });
        }
        self.config.encoding.validate(query)?;
        let tech = &self.config.tech;
        let vdd = tech.vdd;
        let t_edge = 2.0e-9;
        let mut input_wave = Waveform::Pwl(vec![(0.0, 0.0), (t_edge, 0.0), (t_edge + 20e-12, vdd)]);
        let mut edge_kind = Edge::Rising;
        let timing = crate::timing::StageTiming::analytic(tech, self.config.c_load)?;
        let t_stage = t_edge + 40.0 * (timing.d_c + 4.0 * timing.d_inv) + 1.0e-9;

        let mut t_in_edge = None;
        let mut energy = 0.0;
        let mut output = Trace::default();
        for (j, cell) in self.cells.iter().enumerate() {
            let outcome = cell.evaluate(query[j])?;
            let drive = if outcome.is_match() {
                MnDrive::ForcedMatch
            } else {
                MnDrive::ForcedMismatch
            };
            let nl = build_stage_netlist(tech, self.config.c_load, &drive, input_wave.clone())?;
            let res = Transient::new(&nl, TranConfig::until(t_stage).with_max_step(3e-12)).run()?;
            if t_in_edge.is_none() {
                t_in_edge = res.trace("in")?.first_crossing(vdd / 2.0, edge_kind);
            }
            energy += res.delivered_energy("VDD")?;
            output = res.trace("out")?;
            input_wave = output.to_waveform(4000);
            edge_kind = match edge_kind {
                Edge::Rising => Edge::Falling,
                Edge::Falling => Edge::Rising,
                Edge::Any => Edge::Any,
            };
        }
        let t_in = t_in_edge.ok_or(TdamError::InvalidConfig {
            what: "input edge not found in first stage",
        })?;
        let t_out =
            output
                .first_crossing(vdd / 2.0, edge_kind)
                .ok_or(TdamError::InvalidConfig {
                    what: "chain output never switched (horizon too short?)",
                })?;
        Ok(StepResult {
            delay: t_out - t_in,
            supply_energy: energy,
            output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::DelayChain;
    use tdam_num::LinearFit;

    fn cfg(stages: usize) -> ArrayConfig {
        ArrayConfig::paper_default().with_stages(stages)
    }

    #[test]
    fn more_mismatches_more_delay() {
        let config = cfg(8);
        let chain = CircuitChain::new(&[1; 8], &config).unwrap();
        let d0 = chain.evaluate(&[1; 8], false).unwrap().total_delay();
        let d4 = chain
            .evaluate(&[2, 2, 2, 2, 1, 1, 1, 1], false)
            .unwrap()
            .total_delay();
        let d8 = chain.evaluate(&[2; 8], false).unwrap().total_delay();
        assert!(d0 < d4 && d4 < d8, "d0={d0:e} d4={d4:e} d8={d8:e}");
    }

    #[test]
    fn circuit_delay_linear_in_mismatches() {
        // Fig. 4(c) at circuit level, on a short chain for test speed.
        let config = cfg(8);
        let chain = CircuitChain::new(&[1; 8], &config).unwrap();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for n_mis in [0usize, 2, 4, 6, 8] {
            let mut q = vec![1u8; 8];
            for item in q.iter_mut().take(n_mis) {
                *item = 2;
            }
            let d = chain.evaluate(&q, false).unwrap().total_delay();
            xs.push(n_mis as f64);
            ys.push(d);
        }
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!(fit.r_squared > 0.98, "R² = {} ys={ys:?}", fit.r_squared);
    }

    #[test]
    fn circuit_and_behavioral_agree() {
        let config = cfg(8);
        let circuit = CircuitChain::new(&[1; 8], &config).unwrap();
        let timing = crate::timing::StageTiming::from_circuit(&config.tech, config.c_load).unwrap();
        let behavioral = DelayChain::with_timing(&[1; 8], &config, timing).unwrap();
        for n_mis in [0usize, 3, 8] {
            let mut q = vec![1u8; 8];
            for item in q.iter_mut().take(n_mis) {
                *item = 3;
            }
            let d_ckt = circuit.evaluate(&q, false).unwrap().total_delay();
            let d_beh = behavioral.evaluate(&q).unwrap().total_delay;
            let err = (d_ckt - d_beh).abs() / d_ckt.max(1e-15);
            assert!(
                err < 0.35,
                "n_mis={n_mis}: circuit {d_ckt:.3e} vs behavioral {d_beh:.3e} ({:.0}%)",
                err * 100.0
            );
        }
    }

    #[test]
    fn step_split_matches_even_odd_mismatches() {
        let config = cfg(4);
        let chain = CircuitChain::new(&[1, 1, 1, 1], &config).unwrap();
        // Mismatch only at position 0 (even): step I slower than step II.
        let r = chain.evaluate(&[2, 1, 1, 1], false).unwrap();
        assert!(
            r.rising.delay > r.falling.delay,
            "rising {:.3e} vs falling {:.3e}",
            r.rising.delay,
            r.falling.delay
        );
        // Mismatch only at position 1 (odd): step II slower.
        let r = chain.evaluate(&[1, 2, 1, 1], false).unwrap();
        assert!(r.falling.delay > r.rising.delay);
    }

    #[test]
    fn with_cells_mode_close_to_forced() {
        let config = cfg(4);
        let chain = CircuitChain::new(&[1; 4], &config).unwrap();
        let q = [2u8, 1, 2, 1];
        let forced = chain.evaluate(&q, false).unwrap().total_delay();
        let cells = chain.evaluate(&q, true).unwrap().total_delay();
        let err = (forced - cells).abs() / forced;
        assert!(
            err < 0.25,
            "forced {forced:.3e} vs full-cell {cells:.3e} ({:.0}%)",
            err * 100.0
        );
    }

    #[test]
    fn monolithic_validates_stage_handoff() {
        // The waveform-handoff approximation must agree with the
        // single-matrix ground truth (which exercises the sparse solver:
        // 16 stages ≈ 50 node unknowns plus 17 source branches).
        let config = cfg(16);
        let chain = CircuitChain::new(&[1; 16], &config).unwrap();
        let mut q = vec![1u8; 16];
        for item in q.iter_mut().take(6) {
            *item = 2;
        }
        let handoff = chain.simulate_step(&q, Step::RisingEven, false).unwrap();
        let monolithic = chain
            .simulate_step_monolithic(&q, Step::RisingEven)
            .unwrap();
        let err = (handoff.delay - monolithic.delay).abs() / monolithic.delay;
        assert!(
            err < 0.10,
            "handoff {:.4e} vs monolithic {:.4e} ({:.1}% apart)",
            handoff.delay,
            monolithic.delay,
            err * 100.0
        );
    }

    #[test]
    fn monolithic_delay_grows_with_mismatches() {
        let config = cfg(8);
        let chain = CircuitChain::new(&[1; 8], &config).unwrap();
        let d0 = chain
            .simulate_step_monolithic(&[1; 8], Step::RisingEven)
            .unwrap()
            .delay;
        let d4 = chain
            .simulate_step_monolithic(&[2, 1, 2, 1, 2, 1, 2, 1], Step::RisingEven)
            .unwrap()
            .delay;
        assert!(d4 > d0 + 2.0 * 10e-12, "d0 {d0:.3e} d4 {d4:.3e}");
    }

    #[test]
    fn shape_errors() {
        let config = cfg(4);
        let chain = CircuitChain::new(&[1; 4], &config).unwrap();
        assert!(chain.evaluate(&[1; 3], false).is_err());
        assert!(CircuitChain::new(&[1; 3], &config).is_err());
    }
}
