//! FeFET-based time-domain associative memory (TD-AM) for multi-bit
//! similarity computation — the core contribution of the DATE 2024 paper.
//!
//! # Architecture
//!
//! The TD-AM compares a multi-bit query vector `Q` against `M` stored
//! vectors `D_1..D_M` in parallel. Each row is a *delay chain* of `N`
//! cascaded delay stages; stage `j` of row `i` compares query element
//! `q_j` with stored element `D_{i,j}` using a 2-FeFET in-memory-computing
//! cell ([`cell`]). A *match* leaves the stage at its intrinsic inverter
//! delay `d_INV`; a *mismatch* discharges the cell's match node, turning on
//! a PMOS switch that attaches a load capacitor to the stage output and
//! adds `d_C`. The accumulated pulse delay is therefore linear in the
//! number of mismatching elements — a quantitative Hamming distance in the
//! time domain:
//!
//! ```text
//! d_tot = 2·N·d_INV + N_mis·d_C
//! ```
//!
//! The 2-step operation scheme ([`chain`]) processes the pulse's rising
//! edge through even stages (odd stages deactivated) and the falling edge
//! through odd stages, sidestepping the PMOS/NMOS speed mismatch and edge
//! degradation of naive inverter chains without paying for buffers.
//!
//! # Modules
//!
//! - [`encoding`] — multi-bit element encoding and Hamming distance
//! - [`cell`] — the 2-FeFET multi-bit IMC cell (behavioral + netlist)
//! - [`stage`] — the variable-capacitance delay stage (behavioral + netlist)
//! - [`chain`] — delay chains and the 2-step operation scheme
//! - [`chain_circuit`] — full circuit-level chain simulation (Fig. 4)
//! - [`array`](mod@array) — the M×N TD-AM array with parallel search
//! - [`tdc`] — time-to-digital conversion (counter sensing model)
//! - [`timing`] — calibrated stage timing/energy model (analytic or
//!   extracted from circuit simulation)
//! - [`calibration`] — multi-point circuit extraction with bilinear
//!   interpolation for sweep-grade lookups
//! - [`energy`] — search energy accounting
//! - [`monte_carlo`] — V_TH-variation Monte Carlo (Fig. 6)
//! - [`engine`] — the [`engine::SimilarityEngine`] trait shared with the
//!   baseline designs of Table I, including the batched
//!   [`engine::SimilarityEngine::search_batch`] serving path
//! - [`parallel`] — the scoped-thread worker pool with deterministic
//!   seeded work splitting behind every batched/parallel code path
//! - [`area`] — cell/stage/array footprint estimates (F² + MOM caps)
//! - [`faults`] — cell-level fault injection (stuck, drifted) and its
//!   effect on decoding
//! - [`resilience`] — array-scale fault detection, write-verify repair
//!   with spare-row remapping, graceful degradation, and seeded parallel
//!   fault campaigns
//! - [`runtime`] — the fault-tolerant serving runtime: per-batch deadline
//!   budgets with partial results, panic isolation, health probes with a
//!   circuit breaker, and a compiled-LUT → behavioral → degraded backend
//!   fallback chain
//! - [`store`] — durable state: CRC-checksummed checkpoint snapshots with
//!   atomic commit, a write-ahead journal of post-checkpoint mutations,
//!   warm-start recovery that falls back to the last good generation, and
//!   a seeded crash-injection campaign
//! - [`serve`] — the sharded network front-end: row-range scatter-gather
//!   top-k (bit-identical to brute force), bounded-queue admission
//!   control with explicit load shedding, probe-gated warm-standby
//!   failover, and a seeded TCP chaos campaign
//! - [`clock`] — the wall/virtual time abstraction every deadline,
//!   backoff wait, flush window, and scrub tick reads
//! - [`corpus`] — million-row two-tier search: a seeded coarse centroid
//!   pre-filter picks `nprobe` candidate shards, the exact packed tier
//!   re-ranks them, and an LRU cache with a resident-byte budget keeps
//!   only hot shard snapshots compiled
//! - [`sim`] — deterministic full-system simulation: a whole deployment
//!   on virtual time with seed-scheduled network/disk/device faults,
//!   judged against independent oracles, with seed replay and greedy
//!   schedule shrinking
//! - [`margins`] — sensing-margin feasibility of 1–4-bit precision under
//!   variation (the paper's "higher-precision potential" analysis)
//! - [`power`] — idle static (leakage) power, the flip side of the
//!   "no DC current" time-domain argument
//! - [`throughput`] — pipelined search cycle time and queries/second
//!
//! # Examples
//!
//! Single-query search:
//!
//! ```
//! use tdam::array::TdamArray;
//! use tdam::config::ArrayConfig;
//! use tdam::engine::SimilarityEngine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ArrayConfig::paper_default().with_stages(8).with_rows(2);
//! let mut am = TdamArray::new(cfg)?;
//! am.store(0, &[0, 1, 2, 3, 3, 2, 1, 0])?;
//! am.store(1, &[0, 0, 0, 0, 0, 0, 0, 0])?;
//! let outcome = TdamArray::search(&am, &[0, 1, 2, 3, 3, 2, 1, 1])?;
//! assert_eq!(outcome.best_row(), Some(0));
//! assert_eq!(outcome.rows[0].chain.mismatches, 1);
//! # Ok(())
//! # }
//! ```
//!
//! Batched serving — store rows, answer a whole batch in one call (the
//! stored rows are compiled to delay lookup tables and the queries fan
//! out across worker threads), then read each query's best row:
//!
//! ```
//! use tdam::config::ArrayConfig;
//! use tdam::{BatchQuery, SimilarityEngine, TdamArray};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ArrayConfig::paper_default().with_stages(4).with_rows(2);
//! let mut am = TdamArray::new(cfg)?;
//! am.store(0, &[0, 1, 2, 3])?;
//! am.store(1, &[3, 3, 0, 0])?;
//! let mut batch = BatchQuery::new(4);
//! batch.push(&[0, 1, 2, 2])?; // close to row 0
//! batch.push(&[3, 3, 0, 1])?; // close to row 1
//! let result = am.search_batch(&batch)?;
//! assert_eq!(result.best_rows(), vec![Some(0), Some(1)]);
//! # Ok(())
//! # }
//! ```

// Default builds carry zero unsafe. The `simd` feature needs exactly one
// exception — the `core::arch` intrinsic calls in `packed::simd`, which
// carries its own `#[allow(unsafe_code)]` plus a module-level safety
// contract — so the crate drops from `forbid` to `deny` only there.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod area;
pub mod array;
pub mod calibration;
pub mod cell;
pub mod chain;
pub mod chain_circuit;
pub mod clock;
pub mod config;
pub mod corpus;
pub mod encoding;
pub mod energy;
pub mod engine;
pub mod faults;
pub mod margins;
pub mod monte_carlo;
pub mod packed;
pub mod parallel;
pub mod power;
pub mod resilience;
pub mod runtime;
pub mod serve;
pub mod sim;
pub mod stage;
pub mod store;
pub mod tdc;
pub mod throughput;
pub mod timing;

pub use array::{CompiledArray, CompiledSnapshot, SearchOutcome, TdamArray};
pub use chain::DelayChain;
pub use config::{ArrayConfig, TechParams};
pub use corpus::{CorpusBuilder, CorpusConfig, CorpusEngine, CorpusTierStatus};
pub use encoding::Encoding;
pub use engine::{BatchQuery, BatchResult, SearchMetrics, SimilarityEngine};
pub use packed::{PackedArray, PackedDecision, PackedScratch};
pub use runtime::{BackendKind, BatchOutcome, QueryOutcome, ResilientEngine, RuntimeConfig};
pub use serve::{
    cluster_layout, FrontEnd, ServeClient, ServeConfig, ServeError, ShardMap, ShardedService,
    ShedReason, TopK,
};
pub use store::{
    run_crash_chaos, CheckpointStore, CrashChaosConfig, CrashChaosReport, DeploymentState,
    DurableEngine, JournalOp, RecoveryReport, StoreError,
};
pub use timing::StageTiming;

/// Errors from TD-AM construction and operation.
#[derive(Debug, Clone, PartialEq)]
pub enum TdamError {
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Which parameter.
        what: &'static str,
    },
    /// A vector element exceeds the encoding's value range.
    ValueOutOfRange {
        /// Offending element value.
        value: u8,
        /// Number of representable levels.
        levels: u8,
    },
    /// A vector has the wrong number of elements for the array.
    LengthMismatch {
        /// Elements provided.
        got: usize,
        /// Elements expected (stages per chain).
        expected: usize,
    },
    /// A row index is out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Number of rows.
        rows: usize,
    },
    /// Write-verify programming failed to converge on a target threshold
    /// even after the retry policy's escalation was exhausted.
    WriteVerify {
        /// Target threshold voltage, volts.
        target: f64,
        /// Best threshold the device reached, volts.
        achieved: f64,
    },
    /// A parallel worker thread panicked or was lost.
    Worker,
    /// A compiled delay-LUT view no longer matches the array it was built
    /// from: the array was reprogrammed (or had faults injected) after
    /// compilation. Recompiling fixes it — serving from the stale tables
    /// would silently return wrong bits.
    StaleCompile {
        /// Array generation the tables were compiled at.
        compiled: u64,
        /// The array's current generation.
        current: u64,
    },
    /// An underlying circuit simulation failed.
    Circuit(tdam_ckt::CktError),
}

/// The serving-layer error taxonomy: how a failure should be handled by
/// a runtime that wants to keep answering queries (see [`runtime`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ErrorClass {
    /// Retrying the same operation may succeed: lost workers (panics),
    /// stale compiled tables (recompile), circuit convergence failures.
    Transient,
    /// The hardware completed the operation but with reduced fidelity
    /// (e.g. a device exhausted write-verify escalation): serving can
    /// continue with the degradation surfaced to the caller.
    Degraded,
    /// Deterministic caller or configuration bugs: no retry will fix a
    /// shape mismatch, an out-of-range value, or a malformed netlist.
    Permanent,
}

impl TdamError {
    /// Classifies this error for the serving runtime's retry/degrade
    /// decisions (see [`ErrorClass`]).
    pub fn class(&self) -> ErrorClass {
        match self {
            Self::Worker | Self::StaleCompile { .. } => ErrorClass::Transient,
            Self::WriteVerify { .. } => ErrorClass::Degraded,
            Self::Circuit(e) => match e.class() {
                tdam_ckt::FailureClass::Transient => ErrorClass::Transient,
                tdam_ckt::FailureClass::Permanent => ErrorClass::Permanent,
            },
            Self::InvalidConfig { .. }
            | Self::ValueOutOfRange { .. }
            | Self::LengthMismatch { .. }
            | Self::RowOutOfBounds { .. } => ErrorClass::Permanent,
        }
    }

    /// Whether a bounded retry can plausibly succeed.
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }
}

impl core::fmt::Display for TdamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            Self::ValueOutOfRange { value, levels } => {
                write!(
                    f,
                    "element value {value} out of range for {levels}-level encoding"
                )
            }
            Self::LengthMismatch { got, expected } => {
                write!(
                    f,
                    "vector length {got} does not match chain length {expected}"
                )
            }
            Self::RowOutOfBounds { row, rows } => {
                write!(f, "row {row} out of bounds (array has {rows} rows)")
            }
            Self::WriteVerify { target, achieved } => write!(
                f,
                "write-verify failed: target V_TH {target:.3} V, achieved {achieved:.3} V"
            ),
            Self::Worker => write!(f, "a parallel worker thread failed"),
            Self::StaleCompile { compiled, current } => write!(
                f,
                "compiled delay tables are stale: compiled at generation \
                 {compiled}, array is at generation {current}"
            ),
            Self::Circuit(e) => write!(f, "circuit simulation failed: {e}"),
        }
    }
}

impl std::error::Error for TdamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tdam_ckt::CktError> for TdamError {
    fn from(e: tdam_ckt::CktError) -> Self {
        Self::Circuit(e)
    }
}
