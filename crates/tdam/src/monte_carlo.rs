//! V_TH-variation Monte Carlo analysis (paper Fig. 6).
//!
//! The paper models all FeFET non-idealities as a threshold-voltage shift
//! and examines the *worst-case* computation — every stage mismatched with
//! the minimum one-level distance — under per-state variation levels up to
//! σ = 60 mV plus the experimentally fitted per-state model. A run passes
//! when its total delay stays within the sensing margin (±`d_C`/2) of the
//! nominal all-mismatch delay, i.e. the counter still decodes the correct
//! mismatch count.

use crate::cell::Cell;
use crate::chain::DelayChain;
use crate::config::ArrayConfig;
use crate::parallel;
use crate::timing::StageTiming;
use crate::TdamError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tdam_fefet::variation::VthVariation;
use tdam_num::{Histogram, Summary};

/// Configuration of a Monte Carlo experiment.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Array/chain configuration.
    pub array: ArrayConfig,
    /// Threshold-voltage variation model.
    pub variation: VthVariation,
    /// Number of Monte Carlo runs.
    pub runs: usize,
    /// Stored element value used for every stage.
    pub stored_value: u8,
    /// Query element value used for every stage (the paper's worst case is
    /// an adjacent level: minimum conduction overdrive on every stage).
    pub query_value: u8,
    /// RNG seed.
    pub seed: u64,
}

impl McConfig {
    /// The paper's Fig. 6 worst case: every stage stores `1` and is
    /// queried with `2` (one-level mismatch on all stages).
    pub fn worst_case(array: ArrayConfig, variation: VthVariation, runs: usize, seed: u64) -> Self {
        Self {
            array,
            variation,
            runs,
            stored_value: 1,
            query_value: 2,
            seed,
        }
    }
}

/// Aggregated Monte Carlo outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct McResult {
    /// Total delay of each run, seconds.
    pub delays: Vec<f64>,
    /// Summary statistics over the delays.
    pub summary: Summary,
    /// The nominal (variation-free) delay of the same computation.
    pub nominal_delay: f64,
    /// The sensing margin (`d_C`/2) used for the pass criterion.
    pub sensing_margin: f64,
    /// Fraction of runs whose delay error stays within the sensing margin.
    pub within_margin: f64,
    /// Fraction of runs whose decoded mismatch count is exactly correct.
    pub decode_accuracy: f64,
}

impl McResult {
    /// Builds a histogram of the run delays with `bins` bins spanning
    /// slightly past the observed extremes.
    ///
    /// # Panics
    ///
    /// Panics if there are no delays (zero-run configurations are rejected
    /// earlier).
    pub fn histogram(&self, bins: usize) -> Histogram {
        assert!(!self.delays.is_empty(), "no Monte Carlo runs recorded");
        let span = (self.summary.max - self.summary.min).max(1e-15);
        let lo = self.summary.min - 0.05 * span;
        let hi = self.summary.max + 0.05 * span;
        let mut h = Histogram::new(lo, hi, bins).expect("widened non-empty range");
        h.extend_from_slice(&self.delays);
        h
    }
}

/// Runs the Monte Carlo experiment, parallelized across available cores.
///
/// Each run samples an actual threshold voltage for both FeFETs of every
/// cell from the variation model (the cell's `F_A` is programmed to the
/// stored state, `F_B` to the reversed state), then evaluates the chain's
/// variation-aware delay model.
///
/// # Errors
///
/// Returns [`TdamError::InvalidConfig`] for zero runs or query/stored
/// values outside the encoding, plus any chain-construction errors.
pub fn run(cfg: &McConfig) -> Result<McResult, TdamError> {
    if cfg.runs == 0 {
        return Err(TdamError::InvalidConfig {
            what: "Monte Carlo needs at least one run",
        });
    }
    cfg.array.validate()?;
    let enc = cfg.array.encoding;
    enc.validate(&[cfg.stored_value, cfg.query_value])?;
    let levels = enc.levels();
    if levels as usize > cfg.variation.states() {
        return Err(TdamError::InvalidConfig {
            what: "variation model has fewer states than the encoding",
        });
    }

    let timing = StageTiming::analytic(&cfg.array.tech, cfg.array.c_load)?;
    let stages = cfg.array.stages;
    let query = vec![cfg.query_value; stages];

    // One independent RNG stream per run, derived from the run index —
    // not the worker-thread index — so the sampled delays are identical
    // for every thread count (see `crate::parallel`).
    let rev_state = levels - 1 - cfg.stored_value;
    let delays: Vec<f64> =
        parallel::run_chunked(cfg.runs, None, |run| -> Result<f64, TdamError> {
            let mut rng = StdRng::seed_from_u64(parallel::mix_seed(cfg.seed, run as u64));
            let cells = (0..stages)
                .map(|_| {
                    let sample = |state: u8, rng: &mut StdRng| {
                        cfg.variation.sample_vth(state, rng).map_err(|_| {
                            TdamError::ValueOutOfRange {
                                value: state,
                                levels,
                            }
                        })
                    };
                    let vth_a = sample(cfg.stored_value, &mut rng)?;
                    let vth_b = sample(rev_state, &mut rng)?;
                    Cell::with_vth(cfg.stored_value, enc, vth_a, vth_b)
                })
                .collect::<Result<Vec<_>, _>>()?;
            let chain = DelayChain::from_cells(cells, &cfg.array, timing)?;
            Ok(chain.evaluate(&query)?.total_delay)
        })?;

    let nominal_chain =
        DelayChain::with_timing(&vec![cfg.stored_value; stages], &cfg.array, timing)?;
    let nominal = nominal_chain.evaluate(&query)?;
    let nominal_delay = nominal.total_delay;
    let margin = timing.sensing_margin();
    let within = delays
        .iter()
        .filter(|&&d| (d - nominal_delay).abs() <= margin)
        .count() as f64
        / delays.len() as f64;
    let decode_ok = delays
        .iter()
        .filter(|&&d| nominal_chain.decode_mismatches(d) == nominal.mismatches)
        .count() as f64
        / delays.len() as f64;

    let summary = Summary::from_slice(&delays);
    Ok(McResult {
        delays,
        summary,
        nominal_delay,
        sensing_margin: margin,
        within_margin: within,
        decode_accuracy: decode_ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(stages: usize) -> ArrayConfig {
        ArrayConfig::paper_default().with_stages(stages)
    }

    #[test]
    fn zero_sigma_is_exact() {
        let cfg = McConfig::worst_case(base(32), VthVariation::none(), 50, 1);
        let r = run(&cfg).unwrap();
        assert_eq!(r.within_margin, 1.0);
        assert_eq!(r.decode_accuracy, 1.0);
        assert!(r.summary.std_dev < 1e-18, "σ=0 must be deterministic");
        assert!((r.summary.mean - r.nominal_delay).abs() < 1e-15);
    }

    #[test]
    fn spread_grows_with_sigma() {
        let lo = run(&McConfig::worst_case(
            base(32),
            VthVariation::uniform(20e-3),
            200,
            2,
        ))
        .unwrap();
        let hi = run(&McConfig::worst_case(
            base(32),
            VthVariation::uniform(60e-3),
            200,
            2,
        ))
        .unwrap();
        assert!(
            hi.summary.std_dev > lo.summary.std_dev,
            "σ=60mV spread {} must exceed σ=20mV spread {}",
            hi.summary.std_dev,
            lo.summary.std_dev
        );
    }

    #[test]
    fn spread_grows_with_chain_length() {
        let short = run(&McConfig::worst_case(
            base(64),
            VthVariation::uniform(40e-3),
            200,
            3,
        ))
        .unwrap();
        let long = run(&McConfig::worst_case(
            base(128),
            VthVariation::uniform(40e-3),
            200,
            3,
        ))
        .unwrap();
        assert!(long.summary.std_dev > short.summary.std_dev);
    }

    #[test]
    fn experimental_variation_mostly_within_margin() {
        // The paper's robustness claim: with the measured variation model,
        // the vast majority of runs stay within the sensing margin.
        let r = run(&McConfig::worst_case(
            base(64),
            VthVariation::experimental(),
            300,
            4,
        ))
        .unwrap();
        assert!(
            r.within_margin > 0.9,
            "experimental variation should be robust, within_margin = {}",
            r.within_margin
        );
    }

    #[test]
    fn histogram_covers_all_runs() {
        let r = run(&McConfig::worst_case(
            base(32),
            VthVariation::uniform(40e-3),
            100,
            5,
        ))
        .unwrap();
        let h = r.histogram(20);
        assert_eq!(h.total(), 100);
    }

    #[test]
    fn invalid_configs_rejected() {
        let cfg = McConfig {
            runs: 0,
            ..McConfig::worst_case(base(8), VthVariation::none(), 1, 0)
        };
        assert!(run(&cfg).is_err());
        let cfg = McConfig {
            query_value: 9,
            ..McConfig::worst_case(base(8), VthVariation::none(), 10, 0)
        };
        assert!(run(&cfg).is_err());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mk = || {
            run(&McConfig::worst_case(
                base(16),
                VthVariation::uniform(40e-3),
                64,
                42,
            ))
            .unwrap()
        };
        let a = mk();
        let b = mk();
        // Per-run seeding makes the result order-stable, not just
        // multiset-stable: run i's delay is a pure function of (seed, i).
        assert_eq!(a.delays, b.delays);
    }
}
