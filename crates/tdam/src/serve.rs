//! Sharded fault-tolerant serving front-end: a network-facing top-k
//! similarity service over a pool of [`ResilientEngine`] shards.
//!
//! The paper's TD-AM arrays are physically bounded to a few hundred
//! rows, so a production corpus must be tiled across many arrays. This
//! module supplies the serving tier above the per-array runtime:
//!
//! - **Row-range sharding** ([`ShardMap`]): the corpus is split into
//!   contiguous row ranges, one [`ResilientEngine`] per range, and a
//!   query scatter-gathers across shards. The merged top-k is
//!   **bit-identical** to brute force over the unsharded corpus (pinned
//!   in `tests/serve.rs`): both sides rank by `(distance, row)`.
//! - **Admission control and load shedding** ([`FrontEnd`]): a bounded
//!   request queue plus deadline-aware rejection layered on the
//!   per-shard [`DeadlinePolicy`]. An over-budget request is answered
//!   with an explicit [`ServeError::Overloaded`] — never silently
//!   queued into unbounded tail latency.
//! - **Warm-standby failover**: each shard can keep a standby engine
//!   restored from its [`CheckpointStore`] generation. When a shard's
//!   circuit breaker opens (crash or persistent slowness), the standby
//!   is promoted **only after** known-answer health probes pass; a
//!   standby that fails its probes is discarded and the shard stays
//!   down (served as an explicitly `partial` answer) rather than
//!   serving silent wrong answers.
//! - **Coarse pre-filter tier** ([`ShardedService::install_corpus_tier`]):
//!   an optional [`CorpusEngine`] whose posting lists are exactly the
//!   shard ranges. When installed, a query scans the centroid array
//!   first and scatters over the `nprobe` probed shards only — the
//!   million-row path — and a probed shard that is down is served
//!   exact ideal-code answers from the tier's snapshot cache instead
//!   of degrading to a partial answer. [`cluster_layout`] permutes a
//!   corpus cluster-contiguously so the ranges are pure.
//! - **Chaos campaign** ([`run_serve_chaos`]): seeded closed-loop load
//!   over the real TCP front-end with injected shard crashes, slow
//!   shards, and overload bursts, asserting zero silent wrong answers
//!   and explicit shed accounting (see `ext_serve_scale`).
//!
//! The wire protocol is hand-rolled length-prefixed TCP over
//! `std::net` (no external dependencies): a `u32` little-endian frame
//! length followed by a tagged payload encoded with the same
//! [`Writer`]/[`Reader`] primitives as the checkpoint codec.

use std::collections::VecDeque;
use std::io::{Read, Write as IoWrite};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::clock::{Clock, Timestamp};
use crate::config::ArrayConfig;
use crate::corpus::{ClusterData, CorpusConfig, CorpusEngine, CorpusTierStatus};
use crate::engine::BatchQuery;
use crate::resilience::{DegradationLevel, ResilienceConfig};
use crate::runtime::{
    BackendKind, CircuitBreaker, DeadlinePolicy, QueryOutcome, ResilientEngine, RuntimeConfig,
    RuntimeStats,
};
use crate::store::{CheckpointStore, Codec, Reader, StoreError, Writer};
use crate::timing::StageTiming;
use crate::{ErrorClass, TdamError};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why the front-end refused a request instead of serving it late.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded admission queue was full.
    QueueFull,
    /// The request's deadline budget was already spent (on arrival or
    /// while queued), so serving it could only produce a late answer.
    DeadlineExpired,
}

impl core::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::QueueFull => write!(f, "admission queue full"),
            Self::DeadlineExpired => write!(f, "deadline budget exhausted"),
        }
    }
}

/// Errors from the serving front-end and its clients.
#[derive(Debug)]
pub enum ServeError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// The request was explicitly shed by admission control.
    Overloaded(ShedReason),
    /// Every shard is down: no part of the corpus can answer.
    Unavailable,
    /// A malformed frame or an out-of-contract request/reply.
    Protocol(String),
    /// A simulation-layer failure propagated from a shard.
    Sim(TdamError),
    /// A checkpoint-store failure (standby restore/restock).
    Store(StoreError),
}

impl ServeError {
    /// Classifies this error for retry decisions, mirroring
    /// [`TdamError::class`]: sheds and availability gaps are
    /// [`ErrorClass::Transient`] (retry later, possibly elsewhere),
    /// protocol violations are caller bugs.
    pub fn class(&self) -> ErrorClass {
        match self {
            Self::Io(_) | Self::Overloaded(_) | Self::Unavailable => ErrorClass::Transient,
            Self::Protocol(_) => ErrorClass::Permanent,
            Self::Sim(e) => e.class(),
            Self::Store(e) => match e {
                StoreError::Io(_) => ErrorClass::Transient,
                StoreError::Sim(inner) => inner.class(),
                _ => ErrorClass::Permanent,
            },
        }
    }
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Overloaded(reason) => write!(f, "request shed: {reason}"),
            Self::Unavailable => write!(f, "no shard available to answer"),
            Self::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            Self::Sim(e) => write!(f, "shard failure: {e}"),
            Self::Store(e) => write!(f, "checkpoint store failure: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Sim(e) => Some(e),
            Self::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<TdamError> for ServeError {
    fn from(e: TdamError) -> Self {
        Self::Sim(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

// ---------------------------------------------------------------------------
// Shard map
// ---------------------------------------------------------------------------

/// Consistent row-range sharding: corpus row `r` lives on shard
/// `r / rows_per_shard`, and every shard except possibly the last holds
/// exactly `rows_per_shard` contiguous rows.
///
/// The map is a pure function of `(total_rows, rows_per_shard)`, so
/// every replica of the front-end routes identically and a merged
/// result can always be traced back to global row ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    total_rows: usize,
    rows_per_shard: usize,
    shards: usize,
}

impl ShardMap {
    /// Builds the map.
    ///
    /// # Errors
    ///
    /// [`TdamError::InvalidConfig`] when either count is zero.
    pub fn new(total_rows: usize, rows_per_shard: usize) -> Result<Self, TdamError> {
        if total_rows == 0 {
            return Err(TdamError::InvalidConfig {
                what: "shard map needs at least one corpus row",
            });
        }
        if rows_per_shard == 0 {
            return Err(TdamError::InvalidConfig {
                what: "shard capacity must be nonzero",
            });
        }
        Ok(Self {
            total_rows,
            rows_per_shard,
            shards: total_rows.div_ceil(rows_per_shard),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total corpus rows across all shards.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// The global row range `(base, len)` owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics when `s` is out of range.
    pub fn range(&self, s: usize) -> (usize, usize) {
        assert!(s < self.shards, "shard {s} out of range ({})", self.shards);
        let base = s * self.rows_per_shard;
        (base, self.rows_per_shard.min(self.total_rows - base))
    }

    /// Maps a global row id to `(shard, local_row)`.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of range.
    pub fn locate(&self, row: usize) -> (usize, usize) {
        assert!(
            row < self.total_rows,
            "row {row} out of range ({})",
            self.total_rows
        );
        (row / self.rows_per_shard, row % self.rows_per_shard)
    }
}

// ---------------------------------------------------------------------------
// Service configuration
// ---------------------------------------------------------------------------

/// Configuration of a [`ShardedService`] and its [`FrontEnd`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Array template; `rows` is overridden per shard by the shard map.
    pub array: ArrayConfig,
    /// Per-shard resilience provisioning (spares, references).
    pub resilience: ResilienceConfig,
    /// Per-shard runtime policy. The per-request deadline overrides
    /// `runtime.deadline` on every scatter, so leave it `None` here.
    pub runtime: RuntimeConfig,
    /// Corpus rows per shard (the physical array bound).
    pub rows_per_shard: usize,
    /// Consecutive shard-level failures (errors, timeouts) before a
    /// shard's breaker opens and it is taken out of rotation (min 1).
    pub shard_breaker_threshold: usize,
    /// Bounded admission queue depth; a request arriving past this is
    /// shed with [`ShedReason::QueueFull`].
    pub queue_capacity: usize,
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Deadline applied when a request does not carry its own.
    pub default_deadline: Duration,
    /// Per-connection socket I/O budget (slow-peer protection): a
    /// client that stalls mid-frame or refuses to drain its replies for
    /// this long is disconnected instead of parking a server thread.
    pub io_timeout: Duration,
}

impl ServeConfig {
    /// A small paper-scale default: 3-stage-bit arrays of 64 rows per
    /// shard, single-threaded per-shard engines (the front-end supplies
    /// cross-request parallelism), and a generous 250 ms default
    /// deadline.
    pub fn paper_default() -> Self {
        Self {
            array: ArrayConfig::paper_default(),
            resilience: ResilienceConfig::default(),
            runtime: RuntimeConfig {
                deadline: DeadlinePolicy::None,
                threads: Some(1),
                // Per-shard health probes are amortized: the front-end's
                // known-answer failover probes are the primary gate.
                health_interval: 32,
                ..RuntimeConfig::default()
            },
            rows_per_shard: 64,
            shard_breaker_threshold: 2,
            queue_capacity: 64,
            workers: 4,
            default_deadline: Duration::from_millis(250),
            io_timeout: Duration::from_secs(2),
        }
    }
}

// ---------------------------------------------------------------------------
// Top-k answers
// ---------------------------------------------------------------------------

/// A merged scatter-gather answer.
///
/// `neighbors` is ranked by `(distance, row)` ascending — the same
/// total order as [`brute_force_topk`] — so a complete, undegraded
/// answer is bit-identical to unsharded brute force.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopK {
    /// Up to `k` `(distance, global_row)` pairs, best first.
    pub neighbors: Vec<(usize, usize)>,
    /// Some shards did not contribute (down, or the deadline expired
    /// mid-scatter): the answer covers only part of the corpus.
    pub partial: bool,
    /// Some contributing shard answered with reduced fidelity (masked
    /// columns, spare-row remaps, or a degraded backend).
    pub degraded: bool,
    /// Shards that contributed candidates.
    pub shards_answered: usize,
    /// Total shards in the map.
    pub shards_total: usize,
}

impl TopK {
    /// Whether the answer covers the whole corpus at full fidelity —
    /// exactly the condition under which it must be bit-identical to
    /// brute force (asserted by the chaos campaign).
    pub fn complete(&self) -> bool {
        !self.partial && !self.degraded
    }
}

/// Reference answer: brute-force top-k over the full corpus, ranked by
/// `(distance, row)` ascending. Distances are element-wise Hamming, the
/// same metric the TD-AM measures in the time domain.
///
/// # Errors
///
/// [`TdamError::LengthMismatch`] / [`TdamError::ValueOutOfRange`] when
/// the query does not fit the corpus encoding.
pub fn brute_force_topk(
    corpus: &[Vec<u8>],
    encoding: crate::encoding::Encoding,
    query: &[u8],
    k: usize,
) -> Result<Vec<(usize, usize)>, TdamError> {
    let mut ranked = Vec::with_capacity(corpus.len());
    for (row, stored) in corpus.iter().enumerate() {
        ranked.push((encoding.hamming(stored, query)?, row));
    }
    ranked.sort_unstable();
    ranked.truncate(k);
    Ok(ranked)
}

/// Reorders `corpus` cluster-contiguously for a corpus-tier service:
/// rows are clustered with the seeded quantizer of
/// [`CorpusBuilder`](crate::corpus::CorpusBuilder) and emitted cluster
/// by cluster, so the row-range shards of a [`ShardedService`] built
/// over the permuted corpus (with `rows_per_shard = cfg.shard_rows`)
/// approximate the clusters and the installed pre-filter
/// ([`ShardedService::install_corpus_tier`]) prunes well.
///
/// Returns the permuted corpus plus `source`, where `source[new_row]`
/// is the row's index in the input corpus (for mapping answers back).
///
/// # Errors
///
/// Propagates [`CorpusBuilder`](crate::corpus::CorpusBuilder)
/// validation and build errors.
pub fn cluster_layout(
    cfg: &CorpusConfig,
    corpus: &[Vec<u8>],
) -> Result<(Vec<Vec<u8>>, Vec<usize>), TdamError> {
    let mut builder = crate::corpus::CorpusBuilder::new(*cfg)?;
    builder.append_rows(corpus)?;
    let engine = builder.build()?;
    let mut permuted = Vec::with_capacity(corpus.len());
    let mut source = Vec::with_capacity(corpus.len());
    for c in 0..engine.shards() {
        for &id in engine.shard_ids(c) {
            permuted.push(corpus[id as usize].clone());
            source.push(id as usize);
        }
    }
    Ok((permuted, source))
}

// ---------------------------------------------------------------------------
// Shards
// ---------------------------------------------------------------------------

/// Mutable per-shard serving state, guarded by the shard's lock.
#[derive(Debug)]
struct ShardState {
    engine: ResilientEngine,
    /// Injected per-request service delay (chaos: slow shard).
    slow: Option<Duration>,
    /// Out of rotation: the breaker opened and no standby has passed
    /// its probes yet.
    down: bool,
    /// Front-end-level breaker over whole-shard failures. Distinct from
    /// the engine's internal health breaker: this one counts requests
    /// the shard failed to answer at all.
    breaker: CircuitBreaker,
}

/// One shard: a row range, its serving engine, and its warm standby.
struct Shard {
    base: usize,
    rows: usize,
    state: Mutex<ShardState>,
    /// Warm standby engine restored from the checkpoint generation,
    /// promoted only after known-answer probes pass.
    standby: Mutex<Option<ResilientEngine>>,
    /// Per-shard checkpoint store backing the standby (None = no
    /// standby provisioning).
    store: Option<CheckpointStore>,
}

impl core::fmt::Debug for Shard {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Shard")
            .field("base", &self.base)
            .field("rows", &self.rows)
            .finish_non_exhaustive()
    }
}

/// Mutex lock that survives a poisoned peer: serving state must stay
/// reachable even if a panicking thread died while holding the lock
/// (the runtime already isolates worker panics; this is the last line).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Service-level counters (everything above per-shard runtime stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests that entered the scatter path.
    pub requests: usize,
    /// Answers that covered every shard at full fidelity.
    pub complete: usize,
    /// Answers flagged partial (downed shard or mid-scatter expiry).
    pub partial: usize,
    /// Answers flagged degraded by a contributing shard.
    pub degraded: usize,
    /// Shards taken out of rotation by an open breaker.
    pub shard_downs: usize,
    /// Standby promotions that passed known-answer probes.
    pub failovers: usize,
    /// Standby candidates rejected by their probes.
    pub probe_failures: usize,
    /// Standbys restocked from the checkpoint store after a promotion.
    pub restocks: usize,
}

impl Codec for ServiceStats {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.requests);
        w.put_usize(self.complete);
        w.put_usize(self.partial);
        w.put_usize(self.degraded);
        w.put_usize(self.shard_downs);
        w.put_usize(self.failovers);
        w.put_usize(self.probe_failures);
        w.put_usize(self.restocks);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            requests: r.get_usize()?,
            complete: r.get_usize()?,
            partial: r.get_usize()?,
            degraded: r.get_usize()?,
            shard_downs: r.get_usize()?,
            failovers: r.get_usize()?,
            probe_failures: r.get_usize()?,
            restocks: r.get_usize()?,
        })
    }
}

/// One shard's externally visible condition, as reported by the stats
/// endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// Global row range base.
    pub base: usize,
    /// Rows owned.
    pub rows: usize,
    /// Out of rotation.
    pub down: bool,
    /// Whether a warm standby is currently stocked.
    pub standby_ready: bool,
    /// Backend the serving engine is on.
    pub backend: BackendKind,
    /// The engine's cumulative runtime statistics (retries, backoff
    /// waits, breaker trips, fallback transitions, repairs).
    pub stats: RuntimeStats,
}

// ---------------------------------------------------------------------------
// The sharded service
// ---------------------------------------------------------------------------

/// A pool of [`ResilientEngine`] shards behind a scatter-gather top-k
/// search, with per-shard circuit breaking and warm-standby failover.
///
/// Thread-safe: requests lock one shard at a time in shard order, so
/// concurrent requests pipeline across shards.
#[derive(Debug)]
pub struct ShardedService {
    map: ShardMap,
    shards: Vec<Shard>,
    encoding: crate::encoding::Encoding,
    stages: usize,
    /// Array template the shards were provisioned from (kept so the
    /// corpus pre-filter tier can calibrate bit-identical packed
    /// snapshots).
    template: ArrayConfig,
    /// Optional coarse pre-filter: a [`CorpusEngine`] whose posting
    /// lists are exactly this service's shard ranges. When installed,
    /// a query scatters over the `nprobe` probed shards only.
    corpus_tier: Option<Mutex<CorpusEngine>>,
    /// The stored corpus (kept for known-answer failover probes).
    corpus: Vec<Vec<u8>>,
    breaker_threshold: usize,
    /// Fast-path flag: at least one shard is down, so the next request
    /// should attempt failover before scattering.
    any_down: AtomicBool,
    /// Only one request at a time pays for failover probing.
    failover_gate: Mutex<()>,
    stats: Mutex<ServiceStats>,
    /// Time source for deadlines and injected service delays (virtual
    /// in the deterministic simulation).
    clock: Clock,
}

impl ShardedService {
    /// Builds the service over `corpus`, one engine per shard-map
    /// range. When `standby_dir` is given, each shard commits its
    /// deployment state to a per-shard [`CheckpointStore`] under that
    /// directory and keeps a warm standby restored from it.
    ///
    /// # Errors
    ///
    /// [`ServeError::Sim`] when the corpus does not fit the array
    /// template; [`ServeError::Store`] when standby provisioning fails.
    pub fn new(
        cfg: &ServeConfig,
        corpus: &[Vec<u8>],
        standby_dir: Option<&Path>,
    ) -> Result<Self, ServeError> {
        Self::new_with_clock(cfg, corpus, standby_dir, Clock::default())
    }

    /// [`ShardedService::new`] with every shard engine (and the service
    /// itself) placed on an explicit clock — the deterministic
    /// simulation's entry point.
    ///
    /// # Errors
    ///
    /// As [`ShardedService::new`].
    pub fn new_with_clock(
        cfg: &ServeConfig,
        corpus: &[Vec<u8>],
        standby_dir: Option<&Path>,
        clock: Clock,
    ) -> Result<Self, ServeError> {
        let stores = match standby_dir {
            Some(dir) => {
                let map = ShardMap::new(corpus.len(), cfg.rows_per_shard)?;
                let mut stores = Vec::with_capacity(map.shards());
                for s in 0..map.shards() {
                    stores.push(CheckpointStore::open(dir.join(format!("shard{s}")))?);
                }
                Some(stores)
            }
            None => None,
        };
        Self::build(cfg, corpus, stores, clock)
    }

    /// Builds a fully in-memory service for the deterministic
    /// simulation: every shard's standby checkpoint store lives on its
    /// own [`crate::store::MemStorage`] (virtual paths, no real disk),
    /// and every engine runs on `clock` (virtual time when a
    /// [`crate::clock::SimClock`] handle is passed).
    ///
    /// Returns the service plus the per-shard storage handles so a
    /// chaos harness can inject [`crate::store::DiskFault`]s and power
    /// losses into individual shards' durable state.
    ///
    /// # Errors
    ///
    /// As [`ShardedService::new`].
    #[allow(clippy::type_complexity)]
    pub fn new_sim(
        cfg: &ServeConfig,
        corpus: &[Vec<u8>],
        clock: Clock,
    ) -> Result<(Self, Vec<crate::store::MemStorage>), ServeError> {
        let map = ShardMap::new(corpus.len(), cfg.rows_per_shard)?;
        let mut stores = Vec::with_capacity(map.shards());
        let mut disks = Vec::with_capacity(map.shards());
        for s in 0..map.shards() {
            let disk = crate::store::MemStorage::new();
            stores.push(CheckpointStore::open_with(
                format!("/sim/shard{s}"),
                std::sync::Arc::new(disk.clone()),
            )?);
            disks.push(disk);
        }
        Ok((Self::build(cfg, corpus, Some(stores), clock)?, disks))
    }

    /// Shared constructor body: one engine per shard-map range, with an
    /// optional pre-opened checkpoint store per shard backing a warm
    /// standby.
    fn build(
        cfg: &ServeConfig,
        corpus: &[Vec<u8>],
        stores: Option<Vec<CheckpointStore>>,
        clock: Clock,
    ) -> Result<Self, ServeError> {
        let map = ShardMap::new(corpus.len(), cfg.rows_per_shard)?;
        let stages = cfg.array.stages;
        let mut stores = stores.map(std::collections::VecDeque::from);
        let mut shards = Vec::with_capacity(map.shards());
        for s in 0..map.shards() {
            let (base, rows) = map.range(s);
            let array = cfg.array.with_rows(rows);
            let mut engine =
                ResilientEngine::new(array, cfg.resilience, cfg.runtime)?.with_clock(clock.clone());
            for (local, values) in corpus[base..base + rows].iter().enumerate() {
                engine.store(local, values)?;
            }
            let (store, standby) = match stores
                .as_mut()
                .and_then(std::collections::VecDeque::pop_front)
            {
                Some(store) => {
                    store.commit(&engine.checkpoint())?;
                    let (state, _ops, _report) = store.recover()?;
                    let standby =
                        ResilientEngine::restore(&state, cfg.runtime)?.with_clock(clock.clone());
                    (Some(store), Some(standby))
                }
                None => (None, None),
            };
            shards.push(Shard {
                base,
                rows,
                state: Mutex::new(ShardState {
                    engine,
                    slow: None,
                    down: false,
                    breaker: CircuitBreaker::new(cfg.shard_breaker_threshold.max(1)),
                }),
                standby: Mutex::new(standby),
                store,
            });
        }
        Ok(Self {
            map,
            shards,
            encoding: cfg.array.encoding,
            stages,
            template: cfg.array,
            corpus_tier: None,
            corpus: corpus.to_vec(),
            breaker_threshold: cfg.shard_breaker_threshold.max(1),
            any_down: AtomicBool::new(false),
            failover_gate: Mutex::new(()),
            stats: Mutex::new(ServiceStats::default()),
            clock,
        })
    }

    /// The clock this service reads deadlines from.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Query width (stages per chain).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Element encoding of the corpus.
    pub fn encoding(&self) -> crate::encoding::Encoding {
        self.encoding
    }

    /// Snapshot of the service-level counters.
    pub fn service_stats(&self) -> ServiceStats {
        *lock(&self.stats)
    }

    /// Installs the coarse pre-filter tier: a [`CorpusEngine`] whose
    /// posting lists are *exactly* this service's shard ranges, with a
    /// per-range mode centroid (no training — the ranges are the
    /// clusters). Subsequent [`ShardedService::search_topk`] calls scan
    /// the centroid tier first and scatter over the `nprobe` nearest
    /// shards only; a probed shard that is down is served exact
    /// ideal-code answers from the tier's snapshot cache (flagged
    /// `degraded`, never silently dropped).
    ///
    /// For the pre-filter to prune well the corpus should be laid out
    /// cluster-contiguously — see [`cluster_layout`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Sim`] when the tier's timing calibration or
    /// rebuild fails.
    pub fn install_corpus_tier(
        &mut self,
        nprobe: usize,
        cache_budget_bytes: usize,
    ) -> Result<(), ServeError> {
        let timing = StageTiming::analytic(&self.template.tech, self.template.c_load)
            .map_err(ServeError::Sim)?;
        let levels = self.encoding.levels() as usize;
        let mut centroids = Vec::with_capacity(self.map.shards() * self.stages);
        let mut clusters = Vec::with_capacity(self.map.shards());
        for s in 0..self.map.shards() {
            let (base, rows) = self.map.range(s);
            let mut counts = vec![0u32; self.stages * levels];
            let mut codes = Vec::with_capacity(rows * self.stages);
            for row in &self.corpus[base..base + rows] {
                for (j, &v) in row.iter().enumerate() {
                    counts[j * levels + v as usize] += 1;
                }
                codes.extend_from_slice(row);
            }
            for j in 0..self.stages {
                let at = j * levels;
                let mut best = 0usize;
                for v in 1..levels {
                    if counts[at + v] > counts[at + best] {
                        best = v;
                    }
                }
                centroids.push(best as u8);
            }
            clusters.push(ClusterData {
                codes,
                ids: (base as u32..(base + rows) as u32).collect(),
            });
        }
        let cfg = CorpusConfig {
            array: self.template,
            shard_rows: self.map.range(0).1,
            nprobe: nprobe.max(1),
            train_iters: 0,
            train_sample: 1,
            cache_budget_bytes,
            seed: 0,
            threads: Some(1),
        };
        let tier = CorpusEngine::from_persistent_parts(
            cfg,
            timing,
            centroids,
            clusters,
            RuntimeStats::default(),
            self.clock.clone(),
        )
        .map_err(ServeError::Sim)?;
        self.corpus_tier = Some(Mutex::new(tier));
        Ok(())
    }

    /// Cache/geometry snapshot of the corpus pre-filter tier, `None`
    /// when no tier is installed.
    pub fn corpus_status(&self) -> Option<CorpusTierStatus> {
        self.corpus_tier.as_ref().map(|t| lock(t).status())
    }

    /// Snapshot of every shard's condition (for the stats endpoint).
    pub fn shard_statuses(&self) -> Vec<ShardStatus> {
        self.shards
            .iter()
            .map(|shard| {
                let st = lock(&shard.state);
                ShardStatus {
                    base: shard.base,
                    rows: shard.rows,
                    down: st.down,
                    standby_ready: lock(&shard.standby).is_some(),
                    backend: st.engine.backend(),
                    stats: *st.engine.stats(),
                }
            })
            .collect()
    }

    /// Live mutation: stores `values` at global corpus `row`, updating
    /// the owning shard's engine and the probe corpus together (so
    /// later known-answer failover probes expect the *new* content).
    ///
    /// # Errors
    ///
    /// [`ServeError::Sim`] when the row or values do not fit.
    ///
    /// # Panics
    ///
    /// Panics when `row` is outside the shard map.
    pub fn store_row(&mut self, row: usize, values: &[u8]) -> Result<(), ServeError> {
        let (s, local) = self.map.locate(row);
        lock(&self.shards[s].state)
            .engine
            .store(local, values)
            .map_err(ServeError::Sim)?;
        self.corpus[row] = values.to_vec();
        if let Some(tier) = &self.corpus_tier {
            // Keep the pre-filter coherent: the tier's posting list
            // (and any resident snapshot, via surgical repack) must
            // reflect the same write the shard engine just absorbed.
            lock(tier)
                .update_row(row, values)
                .map_err(ServeError::Sim)?;
        }
        Ok(())
    }

    /// Ages one shard's device array through `lifetime` (retention +
    /// endurance drift). Mirrors the journal [`crate::store::JournalOp::Age`]
    /// apply path: the mutation goes through
    /// [`ResilientEngine::array_mut`], so the shard's compiled snapshot
    /// is invalidated and fully recompiled on its next serve.
    ///
    /// # Errors
    ///
    /// [`ServeError::Sim`] when cell reconstruction under the aged
    /// window fails.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn age_shard(
        &self,
        shard: usize,
        lifetime: &tdam_fefet::retention::Lifetime,
    ) -> Result<(), ServeError> {
        lock(&self.shards[shard].state)
            .engine
            .array_mut()
            .age(lifetime)
            .map_err(ServeError::Sim)
    }

    /// Forces one immediate retention-scrub pass on every shard engine
    /// (the clock-driven periodic scrub calls the same machinery; the
    /// simulator uses this to heal drift at a schedule-controlled
    /// moment).
    ///
    /// # Errors
    ///
    /// [`ServeError::Sim`] when a scrub probe fails outright.
    pub fn scrub_all(&self) -> Result<(), ServeError> {
        for shard in &self.shards {
            lock(&shard.state)
                .engine
                .scrub_now()
                .map_err(ServeError::Sim)?;
        }
        Ok(())
    }

    /// Commits `shard`'s *live* engine state as a fresh checkpoint
    /// generation on its standby store and restocks the standby from
    /// it, so a later failover can promote a standby that reflects
    /// recent live mutations (without this, a post-mutation standby
    /// flunks its known-answer probes against the updated corpus and
    /// the shard stays out of rotation — safe, but unavailable).
    /// No-op for shards provisioned without a store.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when the commit fails.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn commit_shard(&self, shard: usize) -> Result<(), ServeError> {
        let sh = &self.shards[shard];
        let Some(store) = &sh.store else {
            return Ok(());
        };
        let state = lock(&sh.state).engine.checkpoint();
        store.commit(&state).map_err(ServeError::Store)?;
        self.restock_standby(sh);
        Ok(())
    }

    /// Scatter-gather top-k search under a wall-clock deadline.
    ///
    /// The deadline is admission-checked up front: a zero or
    /// already-spent budget rejects the *whole request* with
    /// [`ServeError::Overloaded`]`(`[`ShedReason::DeadlineExpired`]`)`
    /// rather than hanging or returning an empty answer. A deadline
    /// that expires mid-scatter still returns the candidates gathered
    /// so far, flagged `partial`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] on admission rejection,
    /// [`ServeError::Unavailable`] when no shard could contribute,
    /// [`ServeError::Sim`] for caller bugs (shape/range mismatches).
    pub fn search_topk(
        &self,
        query: &[u8],
        k: usize,
        deadline: Duration,
    ) -> Result<TopK, ServeError> {
        // Validate the query up front so caller bugs never count
        // against shard health.
        if query.len() != self.stages {
            return Err(ServeError::Sim(TdamError::LengthMismatch {
                got: query.len(),
                expected: self.stages,
            }));
        }
        self.encoding.validate(query).map_err(ServeError::Sim)?;
        if deadline.is_zero() {
            return Err(ServeError::Overloaded(ShedReason::DeadlineExpired));
        }
        let start = self.clock.now();
        if self.any_down.load(Ordering::Acquire) {
            self.try_failover();
        }

        // Coarse pre-filter: when the corpus tier is installed, scan
        // its centroid array and scatter over the probed shards only.
        // A pruned shard is *not* a fidelity loss — pruning is the
        // tier's contract — so it neither flags `partial` nor counts
        // toward `shards_answered`.
        let probed: Option<Vec<usize>> = match &self.corpus_tier {
            Some(tier) => Some(lock(tier).probe(query).map_err(ServeError::Sim)?),
            None => None,
        };

        let mut batch = BatchQuery::new(self.stages);
        batch.push(query).map_err(ServeError::Sim)?;
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        let mut partial = false;
        let mut degraded = false;
        let mut shards_answered = 0usize;
        let mut budget_expired = false;
        for (s, shard) in self.shards.iter().enumerate() {
            if let Some(p) = &probed {
                if !p.contains(&s) {
                    continue;
                }
            }
            let mut st = lock(&shard.state);
            if st.down {
                if let Some(tier) = &self.corpus_tier {
                    // A probed shard that is out of rotation still
                    // answers: the tier's snapshot cache holds the same
                    // stored codes and re-ranks them exactly. Flagged
                    // `degraded` (ideal-code answers bypass the shard's
                    // device-level state), never silently dropped.
                    drop(st);
                    lock(tier).scan_shard(s, query, &mut candidates);
                    shards_answered += 1;
                    degraded = true;
                    continue;
                }
                partial = true;
                continue;
            }
            let slow_injected = st.slow.is_some();
            if let Some(delay) = st.slow {
                // Chaos injection: the shard really does serve slowly,
                // while holding its lock (head-of-line blocking).
                self.clock.sleep(delay);
            }
            let remaining = deadline
                .checked_sub(self.clock.elapsed(start))
                .filter(|r| !r.is_zero());
            let Some(remaining) = remaining else {
                // Mid-scatter expiry: completed shards still count. A
                // shard that burned the budget with its own injected
                // service delay owns the failure (this is how a slow
                // shard trips its breaker and gets failed over).
                partial = true;
                budget_expired = true;
                if slow_injected && st.breaker.record_failure() {
                    st.down = true;
                    drop(st);
                    self.any_down.store(true, Ordering::Release);
                    lock(&self.stats).shard_downs += 1;
                }
                break;
            };
            st.engine.cfg.deadline = DeadlinePolicy::WallClock(remaining);
            let served = st.engine.serve(&batch);
            let mut shard_failed = false;
            match served {
                Ok(outcome) => match &outcome.slots[0] {
                    QueryOutcome::Ok(m) => {
                        st.breaker.record_success();
                        shards_answered += 1;
                        let level = st.engine.array().degradation().level;
                        degraded |= level != DegradationLevel::Nominal
                            || outcome.backend == BackendKind::DegradedMasked;
                        for (local, dist) in m.distances.iter().enumerate() {
                            if let Some(d) = dist {
                                candidates.push((*d, shard.base + local));
                            } else {
                                // A row excluded from ranking (dead or
                                // unreadable) is a fidelity loss.
                                degraded = true;
                            }
                        }
                    }
                    QueryOutcome::TimedOut => {
                        // The shard burned the remaining budget without
                        // answering: that is a shard-health signal
                        // (slow shard) *and* a partial answer.
                        partial = true;
                        budget_expired = true;
                        shard_failed = true;
                    }
                    QueryOutcome::Failed { .. } => {
                        partial = true;
                        shard_failed = true;
                    }
                },
                Err(_) => {
                    partial = true;
                    shard_failed = true;
                }
            }
            if shard_failed && st.breaker.record_failure() {
                st.down = true;
                drop(st);
                self.any_down.store(true, Ordering::Release);
                lock(&self.stats).shard_downs += 1;
            }
        }

        if shards_answered == 0 {
            return if budget_expired {
                // The budget ran out before any shard could answer:
                // that is a shed, not an availability gap.
                Err(ServeError::Overloaded(ShedReason::DeadlineExpired))
            } else {
                // Every shard was down or failing.
                Err(ServeError::Unavailable)
            };
        }
        candidates.sort_unstable();
        candidates.truncate(k);
        let mut stats = lock(&self.stats);
        stats.requests += 1;
        if partial {
            stats.partial += 1;
        }
        if degraded {
            stats.degraded += 1;
        }
        if !partial && !degraded {
            stats.complete += 1;
        }
        drop(stats);
        Ok(TopK {
            neighbors: candidates,
            partial,
            degraded,
            shards_answered,
            shards_total: self.map.shards(),
        })
    }

    /// Attempts warm-standby failover for every downed shard. Only one
    /// caller at a time pays the probing cost; concurrent requests keep
    /// serving partial answers until a standby has been promoted.
    pub fn try_failover(&self) {
        let Ok(_gate) = self.failover_gate.try_lock() else {
            return;
        };
        let mut still_down = false;
        for shard in &self.shards {
            if !lock(&shard.state).down {
                continue;
            }
            match self.promote_standby(shard) {
                Ok(true) => {}
                Ok(false) => still_down = true,
                Err(_) => still_down = true,
            }
        }
        self.any_down.store(still_down, Ordering::Release);
    }

    /// Promotes `shard`'s standby if its known-answer probes pass.
    /// Returns whether the shard is back in rotation.
    fn promote_standby(&self, shard: &Shard) -> Result<bool, ServeError> {
        let Some(mut candidate) = lock(&shard.standby).take() else {
            return Ok(false);
        };
        if !self.probe_candidate(&mut candidate, shard.base, shard.rows) {
            lock(&self.stats).probe_failures += 1;
            // The candidate flunked: discard it. A fresh restock from
            // the durable generation may still pass later (e.g. the
            // fault was injected into the live standby, not the
            // checkpoint).
            self.restock_standby(shard);
            return Ok(false);
        }
        {
            let mut st = lock(&shard.state);
            // The successor publishes its snapshot through the downed
            // engine's epoch holder: promotion is the same epoch swap as
            // any reprogram, so any in-flight batch drains on the old
            // pinned snapshot while new traffic sees the standby's.
            candidate.adopt_epochs(st.engine.epoch_handle());
            st.engine = candidate;
            st.down = false;
            st.slow = None;
            st.breaker = CircuitBreaker::new(self.breaker_threshold);
        }
        let mut stats = lock(&self.stats);
        stats.failovers += 1;
        drop(stats);
        self.restock_standby(shard);
        Ok(true)
    }

    /// Known-answer probes: every stored row of the range, queried
    /// exactly, must win its own search at distance zero. A standby
    /// that cannot reproduce the corpus it claims to hold is not
    /// promoted.
    fn probe_candidate(&self, candidate: &mut ResilientEngine, base: usize, rows: usize) -> bool {
        let probes = match BatchQuery::from_rows(&self.corpus[base..base + rows]) {
            Ok(b) => b,
            Err(_) => return false,
        };
        candidate.cfg.deadline = DeadlinePolicy::None;
        let outcome = match candidate.serve(&probes) {
            Ok(o) => o,
            Err(_) => return false,
        };
        let exact = outcome.slots.iter().enumerate().all(|(local, slot)| {
            slot.ok().is_some_and(|m| {
                m.best_row == Some(local) && m.distances.get(local).copied() == Some(Some(0))
            })
        });
        // Serving the probes runs the engine's own health machinery; if
        // that left residual degradation (masked stages, spare-row
        // exhaustion), the candidate would serve at reduced fidelity
        // forever — masking can even make a damaged standby answer the
        // exact-match probes correctly. Promotion requires full health.
        exact && candidate.array().degradation().level == DegradationLevel::Nominal
    }

    /// Refills `shard`'s standby slot from its checkpoint store.
    fn restock_standby(&self, shard: &Shard) {
        let Some(store) = &shard.store else {
            return;
        };
        let Ok((state, _ops, _report)) = store.recover() else {
            return;
        };
        let cfg = *lock(&shard.state).engine.runtime_config();
        if let Ok(engine) = ResilientEngine::restore(&state, cfg) {
            *lock(&shard.standby) = Some(engine.with_clock(self.clock.clone()));
            lock(&self.stats).restocks += 1;
        }
    }

    // -- chaos injection ---------------------------------------------------

    /// Chaos: hard-crash a shard (taken out of rotation immediately, as
    /// if its array went dark). The next request attempts failover.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn inject_crash(&self, shard: usize) {
        let mut st = lock(&self.shards[shard].state);
        st.down = true;
        drop(st);
        lock(&self.stats).shard_downs += 1;
        self.any_down.store(true, Ordering::Release);
    }

    /// Chaos: make a shard serve each request `delay` late (None clears
    /// the injection). A slow shard is detected through its breaker —
    /// requests time out against it until it is taken out of rotation.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn inject_slow(&self, shard: usize, delay: Option<Duration>) {
        lock(&self.shards[shard].state).slow = delay;
    }

    /// Chaos: corrupt the *standby* of a shard by sticking a whole
    /// column, so its known-answer probes must fail and promotion must
    /// be refused (the probe gate under test).
    ///
    /// # Errors
    ///
    /// [`ServeError::Unavailable`] when the shard has no stocked
    /// standby; [`ServeError::Sim`] when the injection itself fails.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn inject_standby_fault(&self, shard: usize, stage: usize) -> Result<(), ServeError> {
        let mut standby = lock(&self.shards[shard].standby);
        let Some(engine) = standby.as_mut() else {
            return Err(ServeError::Unavailable);
        };
        engine.array_mut().stuck_column(stage)?;
        Ok(())
    }

    /// Chaos: drop a shard's standby entirely (models a failed restock
    /// path), leaving the shard unrecoverable until re-provisioned.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn drop_standby(&self, shard: usize) {
        *lock(&self.shards[shard].standby) = None;
    }

    /// Whether the given shard is currently out of rotation.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn is_down(&self, shard: usize) -> bool {
        lock(&self.shards[shard].state).down
    }
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

/// Upper bound on a frame payload; a peer claiming more is a protocol
/// violation, not an allocation request.
pub const MAX_FRAME: usize = 1 << 20;

const REQ_QUERY: u8 = 0;
const REQ_STATS: u8 = 1;
const REQ_INFO: u8 = 2;

const REPLY_TOPK: u8 = 0;
const REPLY_OVERLOADED: u8 = 1;
const REPLY_ERROR: u8 = 2;
const REPLY_STATS: u8 = 3;
const REPLY_INFO: u8 = 4;

fn backend_tag(b: BackendKind) -> u8 {
    match b {
        BackendKind::CompiledLut => 0,
        BackendKind::Behavioral => 1,
        BackendKind::DegradedMasked => 2,
    }
}

fn backend_from_tag(t: u8) -> Result<BackendKind, ServeError> {
    match t {
        0 => Ok(BackendKind::CompiledLut),
        1 => Ok(BackendKind::Behavioral),
        2 => Ok(BackendKind::DegradedMasked),
        _ => Err(ServeError::Protocol(format!("unknown backend tag {t}"))),
    }
}

fn class_tag(c: ErrorClass) -> u8 {
    match c {
        ErrorClass::Transient => 0,
        ErrorClass::Degraded => 1,
        ErrorClass::Permanent => 2,
    }
}

fn class_from_tag(t: u8) -> Result<ErrorClass, ServeError> {
    match t {
        0 => Ok(ErrorClass::Transient),
        1 => Ok(ErrorClass::Degraded),
        2 => Ok(ErrorClass::Permanent),
        _ => Err(ServeError::Protocol(format!("unknown error class {t}"))),
    }
}

/// A request frame, decoded. Public so robustness harnesses (the wire
/// fuzzer, the deterministic simulation) can drive the exact production
/// codec byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Top-k query.
    Query {
        /// Query elements (one per stage).
        query: Vec<u8>,
        /// Neighbors requested.
        k: usize,
        /// Whole-request wall-clock budget in microseconds (0 = use the
        /// server's default deadline).
        deadline_us: u64,
    },
    /// Observability snapshot request.
    Stats,
    /// Corpus/topology description request.
    Info,
}

impl Request {
    /// Encodes this request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Self::Query {
                query,
                k,
                deadline_us,
            } => {
                w.put_u8(REQ_QUERY);
                w.put_u32(*k as u32);
                w.put_u64(*deadline_us);
                w.put_u32(query.len() as u32);
                for &b in query {
                    w.put_u8(b);
                }
            }
            Self::Stats => w.put_u8(REQ_STATS),
            Self::Info => w.put_u8(REQ_INFO),
        }
        w.into_bytes()
    }

    /// Decodes a frame payload; never panics and never allocates more
    /// than the declared (bounded) lengths.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on any malformed payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ServeError> {
        let mut r = Reader::new(bytes);
        let tag = r.get_u8().map_err(|_| truncated())?;
        match tag {
            REQ_QUERY => {
                let k = r.get_u32().map_err(|_| truncated())? as usize;
                let deadline_us = r.get_u64().map_err(|_| truncated())?;
                let n = r.get_u32().map_err(|_| truncated())? as usize;
                if n > MAX_FRAME {
                    return Err(ServeError::Protocol(format!("query length {n} too large")));
                }
                let mut query = Vec::with_capacity(n);
                for _ in 0..n {
                    query.push(r.get_u8().map_err(|_| truncated())?);
                }
                Ok(Self::Query {
                    query,
                    k,
                    deadline_us,
                })
            }
            REQ_STATS => Ok(Self::Stats),
            REQ_INFO => Ok(Self::Info),
            _ => Err(ServeError::Protocol(format!("unknown request tag {tag}"))),
        }
    }
}

/// Front-end counter snapshot, as served by the stats endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontStats {
    /// Connections accepted.
    pub connections: usize,
    /// Query requests received (before admission).
    pub received: usize,
    /// Requests shed because the admission queue was full.
    pub shed_queue: usize,
    /// Requests shed because their budget expired while queued.
    pub shed_deadline: usize,
    /// Requests answered with a top-k result.
    pub answered: usize,
    /// Requests answered with an error reply.
    pub errors: usize,
}

impl Codec for FrontStats {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.connections);
        w.put_usize(self.received);
        w.put_usize(self.shed_queue);
        w.put_usize(self.shed_deadline);
        w.put_usize(self.answered);
        w.put_usize(self.errors);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            connections: r.get_usize()?,
            received: r.get_usize()?,
            shed_queue: r.get_usize()?,
            shed_deadline: r.get_usize()?,
            answered: r.get_usize()?,
            errors: r.get_usize()?,
        })
    }
}

/// Live atomic counters behind [`FrontStats`].
#[derive(Debug, Default)]
struct FrontCounters {
    connections: AtomicU64,
    received: AtomicU64,
    shed_queue: AtomicU64,
    shed_deadline: AtomicU64,
    answered: AtomicU64,
    errors: AtomicU64,
}

impl FrontCounters {
    fn snapshot(&self) -> FrontStats {
        FrontStats {
            connections: self.connections.load(Ordering::Relaxed) as usize,
            received: self.received.load(Ordering::Relaxed) as usize,
            shed_queue: self.shed_queue.load(Ordering::Relaxed) as usize,
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed) as usize,
            answered: self.answered.load(Ordering::Relaxed) as usize,
            errors: self.errors.load(Ordering::Relaxed) as usize,
        }
    }
}

/// Full observability snapshot from the stats endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReply {
    /// Front-end admission counters.
    pub front: FrontStats,
    /// Service-level scatter-gather counters.
    pub service: ServiceStats,
    /// Per-shard condition including engine [`RuntimeStats`].
    pub shards: Vec<ShardStatus>,
    /// Corpus pre-filter tier condition (snapshot-cache hit/miss/evict
    /// counters, resident bytes), `None` when no tier is installed.
    pub corpus: Option<CorpusTierStatus>,
}

/// Corpus/topology description from the info endpoint, enough for a
/// client to build well-formed queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InfoReply {
    /// Elements per query (stages per chain).
    pub stages: usize,
    /// Encoding levels; valid element values are `0..levels`.
    pub levels: usize,
    /// Total corpus rows.
    pub rows: usize,
    /// Shard count.
    pub shards: usize,
}

/// A reply frame, decoded. Public for the same harnesses as
/// [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// A merged top-k answer.
    TopK(TopK),
    /// The request was shed by admission control.
    Overloaded(ShedReason),
    /// A serving error, classified for retry decisions.
    Error {
        /// Retryability classification.
        class: ErrorClass,
        /// Human-readable description.
        msg: String,
    },
    /// Observability snapshot.
    Stats(Box<StatsReply>),
    /// Corpus/topology description.
    Info(InfoReply),
}

fn truncated() -> ServeError {
    ServeError::Protocol("truncated frame".into())
}

impl Reply {
    /// Encodes this reply as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Self::TopK(t) => {
                w.put_u8(REPLY_TOPK);
                w.put_bool(t.partial);
                w.put_bool(t.degraded);
                w.put_u32(t.shards_answered as u32);
                w.put_u32(t.shards_total as u32);
                w.put_u32(t.neighbors.len() as u32);
                for &(dist, row) in &t.neighbors {
                    w.put_u64(dist as u64);
                    w.put_u64(row as u64);
                }
            }
            Self::Overloaded(reason) => {
                w.put_u8(REPLY_OVERLOADED);
                w.put_u8(match reason {
                    ShedReason::QueueFull => 0,
                    ShedReason::DeadlineExpired => 1,
                });
            }
            Self::Error { class, msg } => {
                w.put_u8(REPLY_ERROR);
                w.put_u8(class_tag(*class));
                let bytes = msg.as_bytes();
                w.put_u32(bytes.len() as u32);
                for &b in bytes {
                    w.put_u8(b);
                }
            }
            Self::Stats(s) => {
                w.put_u8(REPLY_STATS);
                s.front.encode(&mut w);
                s.service.encode(&mut w);
                w.put_u32(s.shards.len() as u32);
                for shard in &s.shards {
                    w.put_usize(shard.base);
                    w.put_usize(shard.rows);
                    w.put_bool(shard.down);
                    w.put_bool(shard.standby_ready);
                    w.put_u8(backend_tag(shard.backend));
                    shard.stats.encode(&mut w);
                }
                w.put_bool(s.corpus.is_some());
                if let Some(corpus) = &s.corpus {
                    corpus.encode(&mut w);
                }
            }
            Self::Info(i) => {
                w.put_u8(REPLY_INFO);
                w.put_u32(i.stages as u32);
                w.put_u32(i.levels as u32);
                w.put_u64(i.rows as u64);
                w.put_u32(i.shards as u32);
            }
        }
        w.into_bytes()
    }

    /// Decodes a frame payload; never panics and never allocates more
    /// than the declared (bounded) lengths.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on any malformed payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ServeError> {
        let mut r = Reader::new(bytes);
        let tag = r.get_u8().map_err(|_| truncated())?;
        match tag {
            REPLY_TOPK => {
                let partial = r.get_bool().map_err(|_| truncated())?;
                let degraded = r.get_bool().map_err(|_| truncated())?;
                let shards_answered = r.get_u32().map_err(|_| truncated())? as usize;
                let shards_total = r.get_u32().map_err(|_| truncated())? as usize;
                let n = r.get_u32().map_err(|_| truncated())? as usize;
                if n > MAX_FRAME {
                    return Err(ServeError::Protocol(format!("top-k size {n} too large")));
                }
                let mut neighbors = Vec::with_capacity(n);
                for _ in 0..n {
                    let dist = r.get_u64().map_err(|_| truncated())? as usize;
                    let row = r.get_u64().map_err(|_| truncated())? as usize;
                    neighbors.push((dist, row));
                }
                Ok(Self::TopK(TopK {
                    neighbors,
                    partial,
                    degraded,
                    shards_answered,
                    shards_total,
                }))
            }
            REPLY_OVERLOADED => match r.get_u8().map_err(|_| truncated())? {
                0 => Ok(Self::Overloaded(ShedReason::QueueFull)),
                1 => Ok(Self::Overloaded(ShedReason::DeadlineExpired)),
                t => Err(ServeError::Protocol(format!("unknown shed reason {t}"))),
            },
            REPLY_ERROR => {
                let class = class_from_tag(r.get_u8().map_err(|_| truncated())?)?;
                let n = r.get_u32().map_err(|_| truncated())? as usize;
                if n > MAX_FRAME {
                    return Err(ServeError::Protocol(format!("message length {n}")));
                }
                let mut bytes = Vec::with_capacity(n);
                for _ in 0..n {
                    bytes.push(r.get_u8().map_err(|_| truncated())?);
                }
                let msg = String::from_utf8(bytes)
                    .map_err(|_| ServeError::Protocol("non-utf8 error message".into()))?;
                Ok(Self::Error { class, msg })
            }
            REPLY_STATS => {
                let front = FrontStats::decode(&mut r).map_err(|_| truncated())?;
                let service = ServiceStats::decode(&mut r).map_err(|_| truncated())?;
                let n = r.get_u32().map_err(|_| truncated())? as usize;
                if n > MAX_FRAME {
                    return Err(ServeError::Protocol(format!("shard count {n}")));
                }
                let mut shards = Vec::with_capacity(n);
                for _ in 0..n {
                    shards.push(ShardStatus {
                        base: r.get_usize().map_err(|_| truncated())?,
                        rows: r.get_usize().map_err(|_| truncated())?,
                        down: r.get_bool().map_err(|_| truncated())?,
                        standby_ready: r.get_bool().map_err(|_| truncated())?,
                        backend: backend_from_tag(r.get_u8().map_err(|_| truncated())?)?,
                        stats: RuntimeStats::decode(&mut r).map_err(|_| truncated())?,
                    });
                }
                let corpus = if r.get_bool().map_err(|_| truncated())? {
                    Some(CorpusTierStatus::decode(&mut r).map_err(|_| truncated())?)
                } else {
                    None
                };
                Ok(Self::Stats(Box::new(StatsReply {
                    front,
                    service,
                    shards,
                    corpus,
                })))
            }
            REPLY_INFO => Ok(Self::Info(InfoReply {
                stages: r.get_u32().map_err(|_| truncated())? as usize,
                levels: r.get_u32().map_err(|_| truncated())? as usize,
                rows: r.get_u64().map_err(|_| truncated())? as usize,
                shards: r.get_u32().map_err(|_| truncated())? as usize,
            })),
            _ => Err(ServeError::Protocol(format!("unknown reply tag {tag}"))),
        }
    }
}

/// Writes one length-prefixed frame to any byte sink (a `TcpStream` in
/// production, a `Vec<u8>` in the deterministic simulation).
///
/// # Errors
///
/// [`ServeError::Io`] when the sink rejects the write.
pub fn write_frame(sink: &mut impl IoWrite, payload: &[u8]) -> Result<(), ServeError> {
    debug_assert!(payload.len() <= MAX_FRAME);
    sink.write_all(&(payload.len() as u32).to_le_bytes())?;
    sink.write_all(payload)?;
    Ok(())
}

/// Blocking read of one length-prefixed frame from any byte source.
/// `Ok(None)` = clean EOF at a frame boundary. The declared length is
/// validated against [`MAX_FRAME`] *before* the payload buffer is
/// allocated — a hostile header cannot force an over-allocation.
///
/// # Errors
///
/// [`ServeError::Protocol`] for an over-limit declared length,
/// [`ServeError::Io`] for a source failure or a mid-frame EOF.
pub fn read_frame(source: &mut impl Read) -> Result<Option<Vec<u8>>, ServeError> {
    let mut header = [0u8; 4];
    match source.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(ServeError::Protocol(format!(
            "frame length {len} too large"
        )));
    }
    let mut payload = vec![0u8; len];
    source.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Polling read of one frame with a read timeout, so server connection
/// threads notice shutdown, plus a stall budget: a peer that starts a
/// frame and then dribbles or stops (slow loris) is cut off once the
/// frame has been in flight for `stall_timeout`. `Ok(None)` = clean EOF
/// or shutdown.
fn read_frame_polling(
    stream: &mut TcpStream,
    running: &AtomicBool,
    clock: &Clock,
    stall_timeout: Duration,
) -> Result<Option<Vec<u8>>, ServeError> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut frame_started: Option<Timestamp> = None;
    loop {
        // Header complete? Then maybe the payload too.
        if buf.len() >= 4 {
            let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            if len > MAX_FRAME {
                return Err(ServeError::Protocol(format!(
                    "frame length {len} too large"
                )));
            }
            if buf.len() >= 4 + len {
                buf.drain(..4);
                buf.truncate(len);
                return Ok(Some(buf));
            }
        }
        if let Some(started) = frame_started {
            if clock.elapsed(started) >= stall_timeout {
                return Err(ServeError::Protocol("peer stalled mid-frame".into()));
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(None)
                } else {
                    Err(ServeError::Protocol("connection closed mid-frame".into()))
                };
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                frame_started.get_or_insert_with(|| clock.now());
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if !running.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

// ---------------------------------------------------------------------------
// Transport seam
// ---------------------------------------------------------------------------

/// A frame-oriented connection: the seam between the wire protocol and
/// its carrier. Production is [`TcpTransport`]; the deterministic
/// simulation substitutes an in-memory duplex that injects
/// seed-scheduled frame faults (truncation, bit-flips, duplication,
/// reordering, resets, stalls) on exactly the same encoded bytes.
pub trait Transport {
    /// Sends one frame payload.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on carrier failure.
    fn send(&mut self, payload: &[u8]) -> Result<(), ServeError>;
    /// Receives one frame payload; `Ok(None)` = clean end of stream.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on carrier failure, [`ServeError::Protocol`]
    /// on a malformed frame.
    fn recv(&mut self) -> Result<Option<Vec<u8>>, ServeError>;
}

/// TCP transport with socket read/write timeouts, so a stalled or
/// malicious peer costs a bounded amount of client time (the resulting
/// [`ServeError::Io`] classifies [`ErrorClass::Transient`] — retry).
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connects with `io_timeout` applied to both socket directions.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when connecting or configuring fails.
    pub fn connect(addr: SocketAddr, io_timeout: Duration) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?; // [real-net ok] TCP transport island
        let t = Some(io_timeout).filter(|t| !t.is_zero());
        stream.set_read_timeout(t)?; // [real-net ok] TCP transport island
        stream.set_write_timeout(t)?; // [real-net ok] TCP transport island
        Ok(Self { stream })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), ServeError> {
        write_frame(&mut self.stream, payload)
    }
    fn recv(&mut self) -> Result<Option<Vec<u8>>, ServeError> {
        read_frame(&mut self.stream)
    }
}

// ---------------------------------------------------------------------------
// Admission queue
// ---------------------------------------------------------------------------

/// One admitted query waiting for a worker.
struct Job {
    query: Vec<u8>,
    k: usize,
    deadline: Duration,
    arrived: Timestamp,
    /// Write half of the client connection (reads happen on the
    /// connection thread; replies are serialized through this lock).
    writer: Arc<Mutex<TcpStream>>,
}

/// Bounded MPMC queue: the admission-control boundary. `try_push` never
/// blocks — a full queue is an immediate, explicit shed.
struct JobQueue {
    inner: Mutex<(VecDeque<Job>, bool)>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits a job unless the queue is at capacity or closed.
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut inner = lock(&self.inner);
        if inner.1 || inner.0.len() >= self.capacity {
            return Err(job);
        }
        inner.0.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(job) = inner.0.pop_front() {
                return Some(job);
            }
            if inner.1 {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn close(&self) {
        lock(&self.inner).1 = true;
        self.ready.notify_all();
    }
}

// ---------------------------------------------------------------------------
// TCP front-end
// ---------------------------------------------------------------------------

/// The network-facing serving front-end: a TCP acceptor, a bounded
/// admission queue, and a worker pool draining it into
/// [`ShardedService::search_topk`].
///
/// Protocol: length-prefixed frames (`u32` LE length, then a tagged
/// payload; see [`ServeClient`]). Each connection serves one
/// outstanding request at a time. Stats/info requests bypass the
/// admission queue so observability keeps working under overload.
pub struct FrontEnd {
    addr: SocketAddr,
    service: Arc<ShardedService>,
    running: Arc<AtomicBool>,
    queue: Arc<JobQueue>,
    counters: Arc<FrontCounters>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl core::fmt::Debug for FrontEnd {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FrontEnd")
            .field("addr", &self.addr)
            .field("running", &self.running.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FrontEnd {
    /// Binds `bind_addr` (use port 0 for an ephemeral port) and starts
    /// the acceptor plus `cfg.workers` worker threads.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the listener cannot bind.
    pub fn start(
        service: Arc<ShardedService>,
        cfg: &ServeConfig,
        bind_addr: &str,
    ) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(bind_addr)?; // [real-net ok] TCP front-end island
        let addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let queue = Arc::new(JobQueue::new(cfg.queue_capacity));
        let counters = Arc::new(FrontCounters::default());
        let conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let mut worker_handles = Vec::with_capacity(cfg.workers.max(1));
        for _ in 0..cfg.workers.max(1) {
            let queue = Arc::clone(&queue);
            let service = Arc::clone(&service);
            let counters = Arc::clone(&counters);
            worker_handles.push(std::thread::spawn(move || {
                while let Some(job) = queue.pop() {
                    serve_job(&service, &counters, job);
                }
            }));
        }
        let io_timeout = cfg.io_timeout;

        let accept_handle = {
            let running = Arc::clone(&running);
            let queue = Arc::clone(&queue);
            let service = Arc::clone(&service);
            let counters = Arc::clone(&counters);
            let conn_handles = Arc::clone(&conn_handles);
            let default_deadline = cfg.default_deadline;
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if !running.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    counters.connections.fetch_add(1, Ordering::Relaxed);
                    let running = Arc::clone(&running);
                    let queue = Arc::clone(&queue);
                    let service = Arc::clone(&service);
                    let counters = Arc::clone(&counters);
                    let handle = std::thread::spawn(move || {
                        serve_connection(
                            stream,
                            &running,
                            &queue,
                            &service,
                            &counters,
                            default_deadline,
                            io_timeout,
                        );
                    });
                    lock(&conn_handles).push(handle);
                }
            })
        };

        Ok(Self {
            addr,
            service,
            running,
            queue,
            counters,
            accept_handle: Some(accept_handle),
            worker_handles,
            conn_handles,
        })
    }

    /// The bound address (for clients when started on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind this front-end (for in-process chaos
    /// injection during campaigns).
    pub fn service(&self) -> &Arc<ShardedService> {
        &self.service
    }

    /// Snapshot of the admission counters.
    pub fn front_stats(&self) -> FrontStats {
        self.counters.snapshot()
    }

    /// Stops accepting, drains the queue, and joins every thread.
    pub fn shutdown(&mut self) {
        if !self.running.swap(false, Ordering::AcqRel) {
            return;
        }
        self.queue.close();
        // Unblock the acceptor's blocking `accept` with a throwaway
        // connection; it re-checks `running` first thing.
        let _ = TcpStream::connect(self.addr); // [real-net ok] TCP front-end island
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        let handles: Vec<_> = lock(&self.conn_handles).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for FrontEnd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection read loop: decode frames, answer stats/info inline,
/// admit queries to the bounded queue. Slow-client protection: the
/// socket carries a write timeout (a client refusing to drain replies
/// cannot park a worker thread past `io_timeout`) and the frame reader
/// enforces a mid-frame stall budget (slow loris).
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: TcpStream,
    running: &AtomicBool,
    queue: &JobQueue,
    service: &ShardedService,
    counters: &FrontCounters,
    default_deadline: Duration,
    io_timeout: Duration,
) {
    let clock = service.clock().clone();
    if stream
        .set_write_timeout(Some(io_timeout).filter(|t| !t.is_zero())) // [real-net ok] TCP front-end island
        .is_err()
    {
        return;
    }
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(writer));
    let mut reader = stream;
    if reader
        .set_read_timeout(Some(Duration::from_millis(50))) // [real-net ok] TCP front-end island
        .is_err()
    {
        return;
    }
    loop {
        let frame = match read_frame_polling(&mut reader, running, &clock, io_timeout) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(_) => return,
        };
        let request = match Request::decode(&frame) {
            Ok(r) => r,
            Err(e) => {
                let reply = Reply::Error {
                    class: ErrorClass::Permanent,
                    msg: e.to_string(),
                };
                let _ = write_frame(&mut *lock(&writer), &reply.encode());
                continue;
            }
        };
        match request {
            Request::Query {
                query,
                k,
                deadline_us,
            } => {
                counters.received.fetch_add(1, Ordering::Relaxed);
                let deadline = if deadline_us == 0 {
                    default_deadline
                } else {
                    Duration::from_micros(deadline_us)
                };
                let job = Job {
                    query,
                    k,
                    deadline,
                    arrived: clock.now(),
                    writer: Arc::clone(&writer),
                };
                if queue.try_push(job).is_err() {
                    counters.shed_queue.fetch_add(1, Ordering::Relaxed);
                    let reply = Reply::Overloaded(ShedReason::QueueFull);
                    let _ = write_frame(&mut *lock(&writer), &reply.encode());
                }
            }
            Request::Stats => {
                let reply = Reply::Stats(Box::new(StatsReply {
                    front: counters.snapshot(),
                    service: service.service_stats(),
                    shards: service.shard_statuses(),
                    corpus: service.corpus_status(),
                }));
                let _ = write_frame(&mut *lock(&writer), &reply.encode());
            }
            Request::Info => {
                let reply = Reply::Info(InfoReply {
                    stages: service.stages(),
                    levels: service.encoding().levels() as usize,
                    rows: service.map().total_rows(),
                    shards: service.map().shards(),
                });
                let _ = write_frame(&mut *lock(&writer), &reply.encode());
            }
        }
    }
}

/// Worker body: re-check the deadline after queueing delay, then serve.
fn serve_job(service: &ShardedService, counters: &FrontCounters, job: Job) {
    let queued = service.clock().elapsed(job.arrived);
    let reply = match job.deadline.checked_sub(queued) {
        None => {
            counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
            Reply::Overloaded(ShedReason::DeadlineExpired)
        }
        Some(remaining) => match service.search_topk(&job.query, job.k, remaining) {
            Ok(topk) => {
                counters.answered.fetch_add(1, Ordering::Relaxed);
                Reply::TopK(topk)
            }
            Err(ServeError::Overloaded(reason)) => {
                counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
                Reply::Overloaded(reason)
            }
            Err(e) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
                Reply::Error {
                    class: e.class(),
                    msg: e.to_string(),
                }
            }
        },
    };
    let _ = write_frame(&mut *lock(&job.writer), &reply.encode());
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Default socket I/O budget for [`ServeClient::connect`]: a server
/// that stalls longer than this yields a [`ErrorClass::Transient`]
/// [`ServeError::Io`] instead of hanging the client forever.
pub const CLIENT_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Blocking client for the [`FrontEnd`] wire protocol (one outstanding
/// request per connection), generic over the [`Transport`] carrying its
/// frames.
#[derive(Debug)]
pub struct ServeClient<T: Transport = TcpTransport> {
    transport: T,
}

impl ServeClient<TcpTransport> {
    /// Connects to a front-end over TCP with [`CLIENT_IO_TIMEOUT`]
    /// applied to both socket directions.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the connection fails.
    pub fn connect(addr: SocketAddr) -> Result<Self, ServeError> {
        Self::connect_with_timeout(addr, CLIENT_IO_TIMEOUT)
    }

    /// Connects with an explicit socket I/O budget (zero = no timeout).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the connection fails.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        io_timeout: Duration,
    ) -> Result<Self, ServeError> {
        Ok(Self::over(TcpTransport::connect(addr, io_timeout)?))
    }
}

impl<T: Transport> ServeClient<T> {
    /// Wraps an already-established transport (the simulation's
    /// in-memory duplex, or a custom carrier).
    pub fn over(transport: T) -> Self {
        Self { transport }
    }

    fn round_trip(&mut self, request: &Request) -> Result<Reply, ServeError> {
        self.transport.send(&request.encode())?;
        match self.transport.recv()? {
            Some(frame) => Reply::decode(&frame),
            None => Err(ServeError::Protocol("server closed connection".into())),
        }
    }

    /// Top-k search with an explicit wall-clock budget.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the server shed the request,
    /// [`ServeError::Sim`]/[`ServeError::Unavailable`] when the server
    /// reported a serving error, [`ServeError::Io`] on socket failure.
    pub fn query(
        &mut self,
        query: &[u8],
        k: usize,
        deadline: Duration,
    ) -> Result<TopK, ServeError> {
        let request = Request::Query {
            query: query.to_vec(),
            k,
            deadline_us: deadline.as_micros().min(u128::from(u64::MAX)) as u64,
        };
        match self.round_trip(&request)? {
            Reply::TopK(t) => Ok(t),
            Reply::Overloaded(reason) => Err(ServeError::Overloaded(reason)),
            Reply::Error { class, msg } => match class {
                ErrorClass::Transient => Err(ServeError::Unavailable),
                _ => Err(ServeError::Protocol(msg)),
            },
            _ => Err(ServeError::Protocol("unexpected reply to query".into())),
        }
    }

    /// Fetches the server's observability snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] / [`ServeError::Protocol`] on transport
    /// failure.
    pub fn stats(&mut self) -> Result<StatsReply, ServeError> {
        match self.round_trip(&Request::Stats)? {
            Reply::Stats(s) => Ok(*s),
            _ => Err(ServeError::Protocol("unexpected reply to stats".into())),
        }
    }

    /// Fetches the corpus/topology description.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] / [`ServeError::Protocol`] on transport
    /// failure.
    pub fn info(&mut self) -> Result<InfoReply, ServeError> {
        match self.round_trip(&Request::Info)? {
            Reply::Info(i) => Ok(i),
            _ => Err(ServeError::Protocol("unexpected reply to info".into())),
        }
    }
}

// ---------------------------------------------------------------------------
// Load generation and chaos campaign
// ---------------------------------------------------------------------------

/// A deterministic corpus of `rows` vectors with elements in
/// `0..levels`, for load generation and campaigns.
pub fn seeded_corpus(rows: usize, stages: usize, levels: u8, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows)
        .map(|_| (0..stages).map(|_| rng.gen_range(0..levels)).collect())
        .collect()
}

/// Nearest-rank percentile over unsorted latency samples, in the
/// samples' own unit. Returns 0 for an empty slice.
pub fn percentile(samples: &mut [u64], pct: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((pct / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Configuration for [`run_serve_chaos`].
#[derive(Debug, Clone)]
pub struct ServeChaosConfig {
    /// Service + front-end configuration.
    pub serve: ServeConfig,
    /// Corpus rows.
    pub rows: usize,
    /// Master seed for the corpus and every client's query stream.
    pub seed: u64,
    /// Neighbors requested per query.
    pub k: usize,
    /// Closed-loop client threads in steady phases.
    pub clients: usize,
    /// Requests each client sends per phase.
    pub requests_per_client: usize,
    /// Per-request deadline in steady phases.
    pub deadline: Duration,
    /// Overload burst multiplier on `clients`.
    pub burst_factor: usize,
    /// Directory for per-shard checkpoint stores backing warm standbys
    /// (`None` disables failover: downed shards stay down).
    pub standby_dir: Option<PathBuf>,
    /// Front-end bind address (`127.0.0.1:0` for an ephemeral port).
    pub bind_addr: String,
    /// When false, run the steady phase only — a plain load test with
    /// no injected failures.
    pub chaos: bool,
}

impl ServeChaosConfig {
    /// A small, CI-sized campaign.
    pub fn quick(standby_dir: Option<PathBuf>) -> Self {
        let mut serve = ServeConfig::paper_default();
        serve.array.stages = 16;
        serve.rows_per_shard = 24;
        serve.workers = 4;
        serve.queue_capacity = 16;
        Self {
            serve,
            rows: 96,
            seed: 7,
            k: 5,
            clients: 3,
            requests_per_client: 12,
            deadline: Duration::from_millis(250),
            burst_factor: 4,
            standby_dir,
            bind_addr: "127.0.0.1:0".into(),
            chaos: true,
        }
    }
}

/// Per-phase campaign accounting, judged against brute force.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseReport {
    /// Phase name (`steady`, `overload`, `slow-shard`, `crash`,
    /// `recovered`).
    pub name: String,
    /// Requests sent.
    pub requests: usize,
    /// Top-k replies received.
    pub answered: usize,
    /// Replies flagged partial.
    pub partial: usize,
    /// Replies flagged degraded.
    pub degraded: usize,
    /// Explicit queue-full sheds observed by clients.
    pub shed_queue: usize,
    /// Explicit deadline sheds observed by clients.
    pub shed_deadline: usize,
    /// Transport/server errors observed by clients.
    pub errors: usize,
    /// Replies differing from brute force while flagged partial or
    /// degraded (allowed: the flag is the contract).
    pub flagged_mismatch: usize,
    /// Replies differing from brute force while claiming to be
    /// complete — silent wrong answers. Must be zero, always.
    pub silent_wrong: usize,
    /// Median latency of answered requests, microseconds.
    pub p50_us: u64,
    /// 99th percentile latency of answered requests, microseconds.
    pub p99_us: u64,
    /// Achieved request throughput (sent / wall time).
    pub qps: u64,
}

/// Full campaign result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeChaosReport {
    /// Per-phase accounting, in execution order.
    pub phases: Vec<PhaseReport>,
    /// Final service-level counters (failovers, probe gates, downs).
    pub service: ServiceStats,
    /// Final front-end admission counters.
    pub front: FrontStats,
    /// Final per-shard condition, including each engine's
    /// [`RuntimeStats`] (retries, backoff waits, breaker trips,
    /// backend transitions).
    pub shards: Vec<ShardStatus>,
}

impl ServeChaosReport {
    /// Silent wrong answers across every phase (the campaign's core
    /// invariant: this must be zero).
    pub fn silent_wrong(&self) -> usize {
        self.phases.iter().map(|p| p.silent_wrong).sum()
    }

    /// Explicit sheds across every phase.
    pub fn sheds(&self) -> usize {
        self.phases
            .iter()
            .map(|p| p.shed_queue + p.shed_deadline)
            .sum()
    }
}

struct ClientTally {
    answered: usize,
    partial: usize,
    degraded: usize,
    shed_queue: usize,
    shed_deadline: usize,
    errors: usize,
    flagged_mismatch: usize,
    silent_wrong: usize,
    latencies_us: Vec<u64>,
}

/// One closed-loop client: seeded query stream, every complete answer
/// judged bit-for-bit against brute force over the full corpus.
fn run_client(
    addr: SocketAddr,
    corpus: &[Vec<u8>],
    encoding: crate::encoding::Encoding,
    seed: u64,
    k: usize,
    requests: usize,
    deadline: Duration,
) -> Result<ClientTally, ServeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let clock = Clock::wall();
    let mut client = ServeClient::connect(addr)?;
    let stages = corpus.first().map_or(0, Vec::len);
    let levels = encoding.levels();
    let mut tally = ClientTally {
        answered: 0,
        partial: 0,
        degraded: 0,
        shed_queue: 0,
        shed_deadline: 0,
        errors: 0,
        flagged_mismatch: 0,
        silent_wrong: 0,
        latencies_us: Vec::with_capacity(requests),
    };
    for _ in 0..requests {
        // Queries orbit stored rows: take one, perturb a few elements.
        let mut query = corpus[rng.gen_range(0..corpus.len())].clone();
        for _ in 0..rng.gen_range(0..4usize) {
            let at = rng.gen_range(0..stages);
            query[at] = rng.gen_range(0..levels);
        }
        let sent = clock.now();
        match client.query(&query, k, deadline) {
            Ok(topk) => {
                tally
                    .latencies_us
                    .push(clock.elapsed(sent).as_micros() as u64);
                tally.answered += 1;
                if topk.partial {
                    tally.partial += 1;
                }
                if topk.degraded {
                    tally.degraded += 1;
                }
                let expected =
                    brute_force_topk(corpus, encoding, &query, k).map_err(ServeError::Sim)?;
                if topk.neighbors != expected {
                    if topk.complete() {
                        tally.silent_wrong += 1;
                    } else {
                        tally.flagged_mismatch += 1;
                    }
                }
            }
            Err(ServeError::Overloaded(ShedReason::QueueFull)) => tally.shed_queue += 1,
            Err(ServeError::Overloaded(ShedReason::DeadlineExpired)) => tally.shed_deadline += 1,
            Err(ServeError::Io(_)) | Err(ServeError::Protocol(_)) => {
                // Transport loss: reconnect and keep the campaign going.
                tally.errors += 1;
                client = ServeClient::connect(addr)?;
            }
            Err(_) => tally.errors += 1,
        }
    }
    Ok(tally)
}

/// Runs one phase of closed-loop load and folds the client tallies.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    name: &str,
    addr: SocketAddr,
    corpus: &Arc<Vec<Vec<u8>>>,
    encoding: crate::encoding::Encoding,
    seed: u64,
    k: usize,
    clients: usize,
    requests_per_client: usize,
    deadline: Duration,
) -> PhaseReport {
    let clock = Clock::wall();
    let started = clock.now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let corpus = Arc::clone(corpus);
                scope.spawn(move || {
                    run_client(
                        addr,
                        &corpus,
                        encoding,
                        seed ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                        k,
                        requests_per_client,
                        deadline,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().ok().and_then(Result::ok))
            .collect()
    });
    let elapsed = clock.elapsed(started);
    let requests = clients * requests_per_client;
    let mut latencies: Vec<u64> = Vec::new();
    let mut report = PhaseReport {
        name: name.to_string(),
        requests,
        answered: 0,
        partial: 0,
        degraded: 0,
        shed_queue: 0,
        shed_deadline: 0,
        errors: 0,
        flagged_mismatch: 0,
        silent_wrong: 0,
        p50_us: 0,
        p99_us: 0,
        qps: 0,
    };
    for t in tallies {
        report.answered += t.answered;
        report.partial += t.partial;
        report.degraded += t.degraded;
        report.shed_queue += t.shed_queue;
        report.shed_deadline += t.shed_deadline;
        report.errors += t.errors;
        report.flagged_mismatch += t.flagged_mismatch;
        report.silent_wrong += t.silent_wrong;
        latencies.extend(t.latencies_us);
    }
    report.p50_us = percentile(&mut latencies, 50.0);
    report.p99_us = percentile(&mut latencies, 99.0);
    report.qps = (requests as f64 / elapsed.as_secs_f64().max(1e-9)) as u64;
    report
}

/// Runs the serve chaos campaign: seeded closed-loop load over a real
/// TCP front-end through five phases — steady, overload burst,
/// slow-shard (breaker + failover), shard crash (failover), recovered —
/// judging every complete answer bit-for-bit against brute force.
///
/// The campaign itself only *measures*; callers assert the invariants
/// (`silent_wrong() == 0`, sheds explicit, failovers observed) so test
/// and bench contexts can set their own thresholds.
///
/// # Errors
///
/// [`ServeError`] when the service or front-end cannot be built.
pub fn run_serve_chaos(cfg: &ServeChaosConfig) -> Result<ServeChaosReport, ServeError> {
    let levels = cfg.serve.array.encoding.levels();
    let corpus = Arc::new(seeded_corpus(
        cfg.rows,
        cfg.serve.array.stages,
        levels,
        cfg.seed,
    ));
    let service = Arc::new(ShardedService::new(
        &cfg.serve,
        &corpus,
        cfg.standby_dir.as_deref(),
    )?);
    let encoding = service.encoding();
    let mut front = FrontEnd::start(Arc::clone(&service), &cfg.serve, &cfg.bind_addr)?;
    let addr = front.addr();
    let shards = service.map().shards();
    let mut phases = Vec::new();

    phases.push(run_phase(
        "steady",
        addr,
        &corpus,
        encoding,
        cfg.seed.wrapping_add(1),
        cfg.k,
        cfg.clients,
        cfg.requests_per_client,
        cfg.deadline,
    ));

    if !cfg.chaos {
        let report = ServeChaosReport {
            phases,
            service: service.service_stats(),
            front: front.front_stats(),
            shards: service.shard_statuses(),
        };
        front.shutdown();
        return Ok(report);
    }

    // Overload burst: more concurrency than workers and queue slots,
    // with a budget tight enough that queueing delay alone breaches it.
    phases.push(run_phase(
        "overload",
        addr,
        &corpus,
        encoding,
        cfg.seed.wrapping_add(2),
        cfg.k,
        cfg.clients * cfg.burst_factor.max(1),
        cfg.requests_per_client,
        Duration::from_micros((cfg.deadline.as_micros() / 16).max(200) as u64),
    ));

    // Slow shard: the last shard serves every request slower than the
    // whole budget, so requests hitting it expire, its breaker opens,
    // and the standby takes over.
    service.inject_slow(shards - 1, Some(cfg.deadline.saturating_add(cfg.deadline)));
    phases.push(run_phase(
        "slow-shard",
        addr,
        &corpus,
        encoding,
        cfg.seed.wrapping_add(3),
        cfg.k,
        cfg.clients,
        cfg.requests_per_client,
        cfg.deadline,
    ));
    // Promotion clears the injection with the shard swap; clear it
    // explicitly in case the phase ended before the breaker tripped.
    service.inject_slow(shards - 1, None);

    // Hard crash of shard 0; the next requests ride partial answers
    // until the probe-gated standby promotion brings it back.
    service.inject_crash(0);
    phases.push(run_phase(
        "crash",
        addr,
        &corpus,
        encoding,
        cfg.seed.wrapping_add(4),
        cfg.k,
        cfg.clients,
        cfg.requests_per_client,
        cfg.deadline,
    ));

    phases.push(run_phase(
        "recovered",
        addr,
        &corpus,
        encoding,
        cfg.seed.wrapping_add(5),
        cfg.k,
        cfg.clients,
        cfg.requests_per_client,
        cfg.deadline,
    ));

    let report = ServeChaosReport {
        phases,
        service: service.service_stats(),
        front: front.front_stats(),
        shards: service.shard_statuses(),
    };
    front.shutdown();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoding;

    #[test]
    fn shard_map_partitions_exactly() {
        let map = ShardMap::new(100, 24).unwrap();
        assert_eq!(map.shards(), 5);
        let mut covered = 0;
        for s in 0..map.shards() {
            let (base, len) = map.range(s);
            assert_eq!(base, covered);
            covered += len;
            for local in 0..len {
                assert_eq!(map.locate(base + local), (s, local));
            }
        }
        assert_eq!(covered, 100);
        // Exact division leaves no runt shard.
        let even = ShardMap::new(96, 24).unwrap();
        assert_eq!(even.shards(), 4);
        assert_eq!(even.range(3), (72, 24));
        assert!(ShardMap::new(0, 4).is_err());
        assert!(ShardMap::new(4, 0).is_err());
    }

    #[test]
    fn brute_force_ranks_by_distance_then_row() {
        let enc = Encoding::new(2).unwrap();
        let corpus = vec![
            vec![1, 1, 1, 1],
            vec![0, 0, 0, 0],
            vec![1, 1, 1, 1],
            vec![1, 1, 1, 0],
        ];
        let got = brute_force_topk(&corpus, enc, &[1, 1, 1, 1], 3).unwrap();
        // Ties broken by row id: row 0 before row 2 at distance 0.
        assert_eq!(got, vec![(0, 0), (0, 2), (1, 3)]);
        // k beyond the corpus returns everything, ranked.
        let all = brute_force_topk(&corpus, enc, &[1, 1, 1, 1], 99).unwrap();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn request_frames_round_trip() {
        for request in [
            Request::Query {
                query: vec![0, 3, 1, 2],
                k: 7,
                deadline_us: 125_000,
            },
            Request::Stats,
            Request::Info,
        ] {
            let decoded = Request::decode(&request.encode()).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn reply_frames_round_trip() {
        let replies = vec![
            Reply::TopK(TopK {
                neighbors: vec![(0, 3), (2, 11)],
                partial: true,
                degraded: false,
                shards_answered: 2,
                shards_total: 3,
            }),
            Reply::Overloaded(ShedReason::QueueFull),
            Reply::Overloaded(ShedReason::DeadlineExpired),
            Reply::Error {
                class: ErrorClass::Transient,
                msg: "shard failure".into(),
            },
            Reply::Stats(Box::new(StatsReply {
                front: FrontStats {
                    connections: 2,
                    received: 40,
                    shed_queue: 3,
                    shed_deadline: 1,
                    answered: 36,
                    errors: 0,
                },
                service: ServiceStats {
                    requests: 36,
                    complete: 30,
                    partial: 4,
                    degraded: 2,
                    shard_downs: 1,
                    failovers: 1,
                    probe_failures: 0,
                    restocks: 1,
                },
                shards: vec![ShardStatus {
                    base: 0,
                    rows: 24,
                    down: false,
                    standby_ready: true,
                    backend: BackendKind::CompiledLut,
                    stats: RuntimeStats::default(),
                }],
                corpus: None,
            })),
            Reply::Stats(Box::new(StatsReply {
                front: FrontStats::default(),
                service: ServiceStats::default(),
                shards: Vec::new(),
                corpus: Some(CorpusTierStatus {
                    rows: 1_000_000,
                    clusters: 245,
                    nprobe: 8,
                    resident: 12,
                    resident_bytes: 48 << 20,
                    budget_bytes: 64 << 20,
                    stats: RuntimeStats {
                        corpus_cache_hits: 900,
                        corpus_cache_misses: 45,
                        corpus_cache_evictions: 33,
                        corpus_compile_micros: 120_000,
                        ..Default::default()
                    },
                }),
            })),
            Reply::Info(InfoReply {
                stages: 16,
                levels: 4,
                rows: 96,
                shards: 4,
            }),
        ];
        for reply in replies {
            let decoded = Reply::decode(&reply.encode()).unwrap();
            assert_eq!(decoded, reply);
        }
    }

    #[test]
    fn malformed_frames_are_protocol_errors() {
        assert!(matches!(
            Request::decode(&[9]),
            Err(ServeError::Protocol(_))
        ));
        assert!(matches!(Request::decode(&[]), Err(ServeError::Protocol(_))));
        assert!(matches!(Reply::decode(&[99]), Err(ServeError::Protocol(_))));
        // Truncated query payload.
        let mut bytes = Request::Query {
            query: vec![1, 2, 3],
            k: 1,
            deadline_us: 0,
        }
        .encode();
        bytes.pop();
        assert!(matches!(
            Request::decode(&bytes),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn job_queue_sheds_when_full_and_drains_in_order() {
        let queue = JobQueue::new(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let writer = Arc::new(Mutex::new(stream));
        let job = |k: usize| Job {
            query: vec![0],
            k,
            deadline: Duration::from_millis(1),
            arrived: Clock::wall().now(),
            writer: Arc::clone(&writer),
        };
        assert!(queue.try_push(job(1)).is_ok());
        // Capacity 1: the second push is an explicit shed, not a block.
        assert!(queue.try_push(job(2)).is_err());
        assert_eq!(queue.pop().map(|j| j.k), Some(1));
        queue.close();
        assert!(queue.pop().is_none());
        assert!(queue.try_push(job(3)).is_err());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let mut empty: Vec<u64> = vec![];
        assert_eq!(percentile(&mut empty, 99.0), 0);
        let mut one = vec![42];
        assert_eq!(percentile(&mut one, 50.0), 42);
        assert_eq!(percentile(&mut one, 99.0), 42);
        let mut many: Vec<u64> = (1..=100).rev().collect();
        assert_eq!(percentile(&mut many, 50.0), 50);
        assert_eq!(percentile(&mut many, 99.0), 99);
        assert_eq!(percentile(&mut many, 100.0), 100);
    }

    #[test]
    fn serve_error_classes_match_retryability() {
        assert_eq!(
            ServeError::Overloaded(ShedReason::QueueFull).class(),
            ErrorClass::Transient
        );
        assert_eq!(ServeError::Unavailable.class(), ErrorClass::Transient);
        assert_eq!(
            ServeError::Protocol("bad".into()).class(),
            ErrorClass::Permanent
        );
        assert_eq!(
            ServeError::Sim(TdamError::LengthMismatch {
                got: 1,
                expected: 2
            })
            .class(),
            ErrorClass::Permanent
        );
    }

    #[test]
    fn seeded_corpus_is_deterministic_and_in_range() {
        let a = seeded_corpus(10, 8, 4, 99);
        let b = seeded_corpus(10, 8, 4, 99);
        assert_eq!(a, b);
        assert!(a.iter().all(|row| row.iter().all(|&x| x < 4)));
        let c = seeded_corpus(10, 8, 4, 100);
        assert_ne!(a, c);
    }
}
