//! Multi-point circuit-extracted calibration with interpolation.
//!
//! [`StageTiming::from_circuit`](crate::timing::StageTiming::from_circuit)
//! runs two transient simulations per operating point — fine once,
//! wasteful inside sweeps. A [`CalibrationTable`] extracts the timing at
//! a grid of `(V_DD, C_load)` points up front and answers any operating
//! point inside the grid by bilinear interpolation, so voltage-scaling
//! and capacitor sweeps get circuit-grade numbers at lookup cost.

use crate::config::TechParams;
use crate::timing::StageTiming;
use crate::TdamError;
use serde::{Deserialize, Serialize};
use tdam_num::interp::Interp2;

/// A grid of circuit-extracted stage timings with bilinear lookup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationTable {
    vdd_grid: Vec<f64>,
    c_grid: Vec<f64>,
    d_inv: Interp2,
    d_c: Interp2,
    tech: TechParams,
}

impl CalibrationTable {
    /// Extracts the timing at every `(vdd, c_load)` grid point by circuit
    /// simulation and builds the interpolants. Both grids must be strictly
    /// increasing with at least two points.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::InvalidConfig`] for bad grids and propagates
    /// circuit failures.
    pub fn extract(
        tech: &TechParams,
        vdd_grid: Vec<f64>,
        c_grid: Vec<f64>,
    ) -> Result<Self, TdamError> {
        if vdd_grid.len() < 2 || c_grid.len() < 2 {
            return Err(TdamError::InvalidConfig {
                what: "calibration grids need at least two points each",
            });
        }
        let mut d_inv_vals = Vec::with_capacity(vdd_grid.len() * c_grid.len());
        let mut d_c_vals = Vec::with_capacity(vdd_grid.len() * c_grid.len());
        for &vdd in &vdd_grid {
            for &c in &c_grid {
                let t = StageTiming::from_circuit(&tech.with_vdd(vdd), c)?;
                d_inv_vals.push(t.d_inv);
                d_c_vals.push(t.d_c);
            }
        }
        let mk = |vals: Vec<f64>| {
            Interp2::new(vdd_grid.clone(), c_grid.clone(), vals).map_err(|_| {
                TdamError::InvalidConfig {
                    what: "calibration grids must be strictly increasing",
                }
            })
        };
        Ok(Self {
            d_inv: mk(d_inv_vals)?,
            d_c: mk(d_c_vals)?,
            vdd_grid,
            c_grid,
            tech: *tech,
        })
    }

    /// The timing at an operating point (clamped to the grid), with the
    /// energy terms from the analytic switched-capacitance expressions at
    /// that point.
    ///
    /// # Errors
    ///
    /// Propagates analytic-model validation errors.
    pub fn timing_at(&self, vdd: f64, c_load: f64) -> Result<StageTiming, TdamError> {
        let analytic = StageTiming::analytic(&self.tech.with_vdd(vdd), c_load)?;
        Ok(StageTiming {
            d_inv: self.d_inv.eval_clamped(vdd, c_load),
            d_c: self.d_c.eval_clamped(vdd, c_load),
            ..analytic
        })
    }

    /// The calibrated supply-voltage range.
    pub fn vdd_range(&self) -> (f64, f64) {
        (self.vdd_grid[0], *self.vdd_grid.last().expect("grid"))
    }

    /// The calibrated load-capacitance range.
    pub fn c_load_range(&self) -> (f64, f64) {
        (self.c_grid[0], *self.c_grid.last().expect("grid"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CalibrationTable {
        CalibrationTable::extract(
            &TechParams::nominal_40nm(),
            vec![0.8, 1.1],
            vec![6e-15, 24e-15],
        )
        .expect("extraction")
    }

    #[test]
    fn grid_points_match_direct_extraction() {
        let t = table();
        let direct = StageTiming::from_circuit(&TechParams::nominal_40nm(), 6e-15).unwrap();
        let looked_up = t.timing_at(1.1, 6e-15).unwrap();
        assert!((looked_up.d_inv - direct.d_inv).abs() < 1e-15);
        assert!((looked_up.d_c - direct.d_c).abs() < 1e-15);
    }

    #[test]
    fn interpolated_point_is_between_corners() {
        let t = table();
        let lo = t.timing_at(0.8, 6e-15).unwrap().d_c;
        let hi = t.timing_at(1.1, 6e-15).unwrap().d_c;
        let mid = t.timing_at(0.95, 6e-15).unwrap().d_c;
        let (lo, hi) = if lo < hi { (lo, hi) } else { (hi, lo) };
        assert!(
            (lo..=hi).contains(&mid),
            "interpolation must stay within the corners: {lo:e} {mid:e} {hi:e}"
        );
    }

    #[test]
    fn out_of_range_clamps() {
        let t = table();
        let at_edge = t.timing_at(1.1, 24e-15).unwrap();
        let beyond = t.timing_at(2.0, 100e-15).unwrap();
        assert!((at_edge.d_c - beyond.d_c).abs() < 1e-15);
        assert_eq!(t.vdd_range(), (0.8, 1.1));
        assert_eq!(t.c_load_range(), (6e-15, 24e-15));
    }

    #[test]
    fn interpolation_tracks_direct_extraction_between_points() {
        // The real test of the table: a point the grid never simulated
        // should still be close to a fresh extraction.
        let t = table();
        let direct =
            StageTiming::from_circuit(&TechParams::nominal_40nm().with_vdd(0.95), 12e-15).unwrap();
        let interp = t.timing_at(0.95, 12e-15).unwrap();
        let err = (interp.d_c - direct.d_c).abs() / direct.d_c;
        assert!(
            err < 0.25,
            "bilinear d_C {:.3e} vs direct {:.3e} ({:.0}% off)",
            interp.d_c,
            direct.d_c,
            err * 100.0
        );
    }

    #[test]
    fn bad_grids_rejected() {
        let tech = TechParams::nominal_40nm();
        assert!(CalibrationTable::extract(&tech, vec![1.1], vec![6e-15, 12e-15]).is_err());
        assert!(
            CalibrationTable::extract(&tech, vec![1.1, 0.8], vec![6e-15, 12e-15]).is_err(),
            "non-increasing grid must be rejected"
        );
    }
}
