//! Delay chains and the 2-step operation scheme (paper Fig. 3, Sec. III-B).
//!
//! A chain cascades `N` delay stages. Because a plain inverter chain would
//! suffer PMOS/NMOS speed mismatch between alternating edges and degraded
//! pulse edges across consecutive mismatch stages, the paper processes the
//! search in two steps:
//!
//! - **step I** — the *rising* edge propagates; all odd stages are
//!   deactivated (both search lines at `V_SL0`, so their FeFETs stay off
//!   and the match node holds `V_DD` — equivalent to a match), and the
//!   sharpening inverters between even stages restore the edge;
//! - **step II** — the *falling* edge propagates with even stages
//!   deactivated.
//!
//! Summing both edge delays yields `d_tot = 2·N·d_INV + N_mis·d_C`.
//!
//! # Variation model
//!
//! [`DelayChain::evaluate`] goes beyond the nominal formula: for each
//! active cell it computes the match-node discharge current from the
//! (possibly perturbed) FeFET thresholds via the device model, converts it
//! into a *cap-attachment factor* `α ∈ [0, 1]` (has MN discharged below the
//! switch threshold by the time the edge arrives?) and a drive-strength
//! correction on `d_C`. With nominal thresholds this reduces exactly to the
//! paper's linear formula; with Monte Carlo thresholds it reproduces the
//! delay spread and the rare sensing-margin violations of Fig. 6.

use crate::cell::Cell;
use crate::config::ArrayConfig;
use crate::encoding::Encoding;
use crate::energy::EnergyBreakdown;
use crate::timing::StageTiming;
use crate::TdamError;
use serde::{Deserialize, Serialize};

/// Result of searching one query against one delay chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChainResult {
    /// Step-I (rising-edge, even stages) delay, seconds.
    pub rising_delay: f64,
    /// Step-II (falling-edge, odd stages) delay, seconds.
    pub falling_delay: f64,
    /// Total delay `rising + falling`, seconds.
    pub total_delay: f64,
    /// True element mismatch count (ground truth from the stored data).
    pub mismatches: usize,
    /// Mismatches on even stages (contributing in step I).
    pub even_mismatches: usize,
    /// Mismatches on odd stages (contributing in step II).
    pub odd_mismatches: usize,
    /// Energy consumed by this chain for the search.
    pub energy: EnergyBreakdown,
}

/// One row of the TD-AM: `N` cells forming a variable-capacitance delay
/// chain.
///
/// # Examples
///
/// ```
/// use tdam::chain::DelayChain;
/// use tdam::config::ArrayConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = ArrayConfig::paper_default().with_stages(4);
/// let chain = DelayChain::new(&[0, 1, 2, 3], &cfg)?;
/// let full_match = chain.evaluate(&[0, 1, 2, 3])?;
/// let one_off = chain.evaluate(&[0, 1, 2, 2])?;
/// assert_eq!(full_match.mismatches, 0);
/// assert_eq!(one_off.mismatches, 1);
/// assert!(one_off.total_delay > full_match.total_delay);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayChain {
    cells: Vec<Cell>,
    encoding: Encoding,
    config: ArrayConfig,
    timing: StageTiming,
}

impl DelayChain {
    /// Builds a chain storing `values` with nominal (variation-free)
    /// cells and an analytically calibrated timing model.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::LengthMismatch`] if `values.len()` differs from
    /// `config.stages`, [`TdamError::ValueOutOfRange`] for elements that
    /// do not fit the encoding, or [`TdamError::InvalidConfig`] for a bad
    /// configuration.
    pub fn new(values: &[u8], config: &ArrayConfig) -> Result<Self, TdamError> {
        let timing = StageTiming::analytic(&config.tech, config.c_load)?;
        Self::with_timing(values, config, timing)
    }

    /// Builds a chain with an explicit timing calibration (e.g. one
    /// extracted from circuit simulation).
    ///
    /// # Errors
    ///
    /// As [`DelayChain::new`].
    pub fn with_timing(
        values: &[u8],
        config: &ArrayConfig,
        timing: StageTiming,
    ) -> Result<Self, TdamError> {
        config.validate()?;
        if values.len() != config.stages {
            return Err(TdamError::LengthMismatch {
                got: values.len(),
                expected: config.stages,
            });
        }
        let cells = values
            .iter()
            .map(|&v| Cell::new(v, config.encoding))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            cells,
            encoding: config.encoding,
            config: *config,
            timing,
        })
    }

    /// Builds a chain from pre-constructed cells (Monte Carlo injects
    /// perturbed thresholds this way).
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::LengthMismatch`] if the cell count differs
    /// from `config.stages`.
    pub fn from_cells(
        cells: Vec<Cell>,
        config: &ArrayConfig,
        timing: StageTiming,
    ) -> Result<Self, TdamError> {
        config.validate()?;
        if cells.len() != config.stages {
            return Err(TdamError::LengthMismatch {
                got: cells.len(),
                expected: config.stages,
            });
        }
        Ok(Self {
            cells,
            encoding: config.encoding,
            config: *config,
            timing,
        })
    }

    /// The stored vector.
    pub fn stored(&self) -> Vec<u8> {
        self.cells.iter().map(Cell::stored).collect()
    }

    /// The cells, in stage order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the chain has no stages (never true for a validated config).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The timing calibration in use.
    pub fn timing(&self) -> &StageTiming {
        &self.timing
    }

    /// The nominal total delay the paper's formula predicts for a given
    /// mismatch count.
    pub fn nominal_delay(&self, mismatches: usize) -> f64 {
        self.timing.chain_delay(self.len(), mismatches)
    }

    /// Searches `query` against the chain using the 2-step scheme.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::LengthMismatch`] or
    /// [`TdamError::ValueOutOfRange`] for malformed queries.
    pub fn evaluate(&self, query: &[u8]) -> Result<ChainResult, TdamError> {
        if query.len() != self.cells.len() {
            return Err(TdamError::LengthMismatch {
                got: query.len(),
                expected: self.cells.len(),
            });
        }
        self.encoding.validate(query)?;

        let tech = &self.config.tech;
        let vdd = tech.vdd;
        let t = &self.timing;

        let mut result = ChainResult {
            rising_delay: 0.0,
            falling_delay: 0.0,
            total_delay: 0.0,
            mismatches: 0,
            even_mismatches: 0,
            odd_mismatches: 0,
            energy: EnergyBreakdown::default(),
        };

        // Ground-truth mismatch counts.
        for (j, cell) in self.cells.iter().enumerate() {
            if cell.stored() != query[j] {
                result.mismatches += 1;
                if j % 2 == 0 {
                    result.even_mismatches += 1;
                } else {
                    result.odd_mismatches += 1;
                }
            }
        }

        // Step I: even stages active; step II: odd stages active.
        for step in 0..2usize {
            let mut edge_time = tech.t_launch;
            let mut step_delay = 0.0;
            for (j, cell) in self.cells.iter().enumerate() {
                let active = j % 2 == step;
                let stage_delay = if active && cell.is_nominal() {
                    // Fast path: nominal thresholds reduce exactly to the
                    // paper's linear formula.
                    if cell.stored() != query[j] {
                        result.energy.load_caps += t.e_c;
                        result.energy.match_nodes += t.e_mn;
                        t.d_inv + t.d_c
                    } else {
                        t.d_inv
                    }
                } else if active {
                    let q = query[j];
                    // Discharge current of the (possibly perturbed) cell at
                    // mid-swing MN voltage.
                    let i_act = cell.discharge_current(q, vdd / 2.0, &tech.nmos)?;
                    // Attachment factor: has MN crossed the switch-PMOS
                    // threshold by the time the edge arrives?
                    let alpha = attachment_factor(i_act, edge_time, tech.c_mn, vdd, tech.pmos.vth);
                    if alpha > 0.0 {
                        // Drive-strength correction relative to the nominal
                        // cell (identical thresholds → correction 1.0).
                        let nominal = Cell::new(cell.stored(), self.encoding)?;
                        let i_nom = nominal.discharge_current(q, vdd / 2.0, &tech.nmos)?;
                        let correction = if cell.stored() != q && i_act > 1e-12 {
                            1.0 + tech.dc_sensitivity * (i_nom / i_act - 1.0)
                        } else {
                            1.0
                        };
                        let e_c = alpha * t.e_c;
                        result.energy.load_caps += e_c;
                        result.energy.match_nodes += t.e_mn;
                        t.d_inv + alpha * t.d_c * correction.max(0.25)
                    } else {
                        t.d_inv
                    }
                } else {
                    // Deactivated stage: both SLs at V_SL0, FeFETs off,
                    // MN holds VDD — pure inverter delay.
                    t.d_inv
                };
                step_delay += stage_delay;
                edge_time += stage_delay;
            }
            if step == 0 {
                result.rising_delay = step_delay;
            } else {
                result.falling_delay = step_delay;
            }
        }

        result.total_delay = result.rising_delay + result.falling_delay;
        // Per-search fixed energies.
        result.energy.inverters = self.cells.len() as f64 * t.e_inv;
        result.energy.search_lines = self.cells.len() as f64 * t.e_sl;
        Ok(result)
    }

    /// Estimates the mismatch count a sensing circuit would decode from a
    /// measured total delay (inverse of the nominal linear formula,
    /// rounded to the nearest count and clamped to `0..=N`).
    pub fn decode_mismatches(&self, total_delay: f64) -> usize {
        let base = 2.0 * self.len() as f64 * self.timing.d_inv;
        let est = ((total_delay - base) / self.timing.d_c).round();
        est.clamp(0.0, self.len() as f64) as usize
    }

    /// Compiles the chain into a flat per-cell delay lookup table for the
    /// batched query path, or `None` if any cell carries non-nominal
    /// thresholds.
    ///
    /// Variation-perturbed cells cannot be tabulated: their cap-attachment
    /// factor depends on the edge arrival time, which depends on every
    /// earlier stage of the *query* — exactly the coupling the
    /// variation-aware model exists to capture. Such chains keep the full
    /// [`DelayChain::evaluate`] path; nominal chains (the common serving
    /// case, where rows were stored through [`DelayChain::new`] /
    /// `SimilarityEngine::store`) collapse to a table lookup per stage.
    pub fn compile(&self) -> Option<CompiledChain> {
        if self.cells.iter().any(|c| !c.is_nominal()) {
            return None;
        }
        let t = &self.timing;
        // The hot loop recovers the mismatch bit from the tabulated delay
        // (`d_inv + d_c` vs `d_inv`), which requires the two to be
        // distinguishable as f64 values. `d_c` is orders of magnitude
        // above one ulp of `d_inv` for any physical calibration; refuse to
        // compile a degenerate one rather than miscount.
        if t.d_inv + t.d_c == t.d_inv {
            return None;
        }
        let stages = self.cells.len();
        let levels = self.encoding.levels() as usize;
        let mut lut = Vec::with_capacity(stages * levels);
        for cell in &self.cells {
            for q in 0..levels {
                let mis = cell.stored() != q as u8;
                lut.push(if mis { t.d_inv + t.d_c } else { t.d_inv });
            }
        }
        // Energy accumulates by repeated addition in `evaluate`; repeated
        // f64 addition and `n × e` differ in the last ulp, so the tables
        // are built the same way the reference path sums them.
        let mut cum_cap = Vec::with_capacity(stages + 1);
        let mut cum_mn = Vec::with_capacity(stages + 1);
        let (mut cap, mut mn) = (0.0f64, 0.0f64);
        cum_cap.push(cap);
        cum_mn.push(mn);
        for _ in 0..stages {
            cap += t.e_c;
            mn += t.e_mn;
            cum_cap.push(cap);
            cum_mn.push(mn);
        }
        Some(CompiledChain {
            encoding: self.encoding,
            stages,
            levels,
            d_inv: t.d_inv,
            lut,
            cum_cap_energy: cum_cap,
            cum_mn_energy: cum_mn,
            inverter_energy: stages as f64 * t.e_inv,
            search_line_energy: stages as f64 * t.e_sl,
        })
    }
}

/// A [`DelayChain`] compiled down to flat per-cell delay tables for the
/// batched query path.
///
/// `lut[j · levels + q]` is the delay of stage `j` when it is *active*
/// (its step's edge passes through it) and queried with level `q`; an
/// inactive stage always contributes `d_INV`. Evaluation walks the stages
/// once, accumulating both steps' delays in the same order as
/// [`DelayChain::evaluate`], so results are bit-identical to the
/// reference path — a property the batch engine's determinism tests pin
/// down.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledChain {
    encoding: Encoding,
    stages: usize,
    levels: usize,
    d_inv: f64,
    lut: Vec<f64>,
    cum_cap_energy: Vec<f64>,
    cum_mn_energy: Vec<f64>,
    inverter_energy: f64,
    search_line_energy: f64,
}

impl CompiledChain {
    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages
    }

    /// Whether the compiled chain has no stages (never true for a
    /// validated config).
    pub fn is_empty(&self) -> bool {
        self.stages == 0
    }

    /// Searches `query` using the precompiled tables.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::LengthMismatch`] or
    /// [`TdamError::ValueOutOfRange`] for malformed queries, exactly like
    /// [`DelayChain::evaluate`].
    pub fn evaluate(&self, query: &[u8]) -> Result<ChainResult, TdamError> {
        if query.len() != self.stages {
            return Err(TdamError::LengthMismatch {
                got: query.len(),
                expected: self.stages,
            });
        }
        self.encoding.validate(query)?;
        Ok(self.evaluate_prevalidated(query))
    }

    /// The table-walk core of [`evaluate`](Self::evaluate), assuming the
    /// query already passed length and range validation. The batched array
    /// path validates each query once and then calls this for every row.
    pub(crate) fn evaluate_prevalidated(&self, query: &[u8]) -> ChainResult {
        let d_inv = self.d_inv;
        let mut rising = 0.0f64;
        let mut falling = 0.0f64;
        let mut even_mismatches = 0usize;
        let mut odd_mismatches = 0usize;
        let mut even = true;
        for (stage_delays, &q) in self.lut.chunks_exact(self.levels).zip(query) {
            let active_delay = stage_delays[q as usize];
            // A mismatching stage was tabulated as `d_inv + d_c`, a
            // matching one as exactly `d_inv`; `compile` guarantees the
            // two are distinct f64 values.
            let mis = (active_delay != d_inv) as usize;
            // Each stage is active in exactly one step and contributes
            // `d_INV` to the other; both accumulators see their addends
            // in stage order, matching the reference two-pass loop.
            if even {
                rising += active_delay;
                falling += d_inv;
                even_mismatches += mis;
            } else {
                rising += d_inv;
                falling += active_delay;
                odd_mismatches += mis;
            }
            even = !even;
        }
        let mismatches = even_mismatches + odd_mismatches;
        let energy = EnergyBreakdown {
            inverters: self.inverter_energy,
            load_caps: self.cum_cap_energy[mismatches],
            match_nodes: self.cum_mn_energy[mismatches],
            search_lines: self.search_line_energy,
            ..EnergyBreakdown::default()
        };
        ChainResult {
            rising_delay: rising,
            falling_delay: falling,
            total_delay: rising + falling,
            mismatches,
            even_mismatches,
            odd_mismatches,
            energy,
        }
    }
}

/// Fraction of the load capacitor effectively attached when the edge
/// arrives `t_arrival` after search-line assertion, given the cell's
/// discharge current: MN ramps down at `I/C_mn`; the switch PMOS conducts
/// once MN falls below `V_DD − |V_TH,P|`, reaching full strength at
/// MN = 0.
fn attachment_factor(i_discharge: f64, t_arrival: f64, c_mn: f64, vdd: f64, vth_p: f64) -> f64 {
    if i_discharge <= 0.0 {
        return 0.0;
    }
    let delta_v = (i_discharge * t_arrival / c_mn).min(vdd);
    let v_mn = vdd - delta_v;
    let turn_on = vdd - vth_p;
    if v_mn >= turn_on {
        0.0
    } else {
        ((turn_on - v_mn) / turn_on).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tdam_num::LinearFit;

    fn cfg(stages: usize) -> ArrayConfig {
        ArrayConfig::paper_default().with_stages(stages)
    }

    fn chain_of(values: &[u8]) -> DelayChain {
        DelayChain::new(values, &cfg(values.len())).unwrap()
    }

    #[test]
    fn full_match_is_fastest() {
        let chain = chain_of(&[0, 1, 2, 3, 3, 2, 1, 0]);
        let m = chain.evaluate(&[0, 1, 2, 3, 3, 2, 1, 0]).unwrap();
        assert_eq!(m.mismatches, 0);
        assert!((m.total_delay - chain.nominal_delay(0)).abs() < 1e-15);
        let x = chain.evaluate(&[3, 1, 2, 3, 3, 2, 1, 0]).unwrap();
        assert!(x.total_delay > m.total_delay);
    }

    #[test]
    fn delay_matches_paper_formula_nominal() {
        // With nominal thresholds the detailed model must reduce exactly
        // (within fp noise) to 2·N·d_INV + N_mis·d_C.
        let chain = chain_of(&[1; 16]);
        for n_mis in 0..=16usize {
            let mut q = vec![1u8; 16];
            for item in q.iter_mut().take(n_mis) {
                *item = 2;
            }
            let r = chain.evaluate(&q).unwrap();
            assert_eq!(r.mismatches, n_mis);
            let expect = chain.nominal_delay(n_mis);
            assert!(
                (r.total_delay - expect).abs() < 0.02 * expect,
                "n_mis={n_mis}: {:.4e} vs formula {:.4e}",
                r.total_delay,
                expect
            );
        }
    }

    #[test]
    fn linearity_r_squared() {
        // Fig. 4(c): delay is linear in mismatch count.
        let stages = 32;
        let chain = chain_of(&vec![1u8; stages]);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for n_mis in 0..=stages {
            let mut q = vec![1u8; stages];
            for item in q.iter_mut().take(n_mis) {
                *item = 3;
            }
            let r = chain.evaluate(&q).unwrap();
            xs.push(n_mis as f64);
            ys.push(r.total_delay);
        }
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!(fit.r_squared > 0.999, "R² = {}", fit.r_squared);
        assert!((fit.slope - chain.timing().d_c).abs() < 0.05 * chain.timing().d_c);
    }

    #[test]
    fn even_odd_split() {
        let chain = chain_of(&[0; 8]);
        // Mismatches at positions 0 (even) and 1, 3 (odd).
        let r = chain.evaluate(&[1, 1, 0, 1, 0, 0, 0, 0]).unwrap();
        assert_eq!(r.even_mismatches, 1);
        assert_eq!(r.odd_mismatches, 2);
        assert_eq!(r.mismatches, 3);
        // Step delays reflect the split.
        assert!(r.falling_delay > r.rising_delay);
    }

    #[test]
    fn decode_roundtrip() {
        let chain = chain_of(&[2; 24]);
        for n_mis in [0usize, 1, 7, 24] {
            let mut q = vec![2u8; 24];
            for item in q.iter_mut().take(n_mis) {
                *item = 0;
            }
            let r = chain.evaluate(&q).unwrap();
            assert_eq!(chain.decode_mismatches(r.total_delay), n_mis);
        }
    }

    #[test]
    fn wrong_query_shapes_rejected() {
        let chain = chain_of(&[0; 4]);
        assert!(matches!(
            chain.evaluate(&[0; 3]),
            Err(TdamError::LengthMismatch { .. })
        ));
        assert!(matches!(
            chain.evaluate(&[0, 0, 0, 9]),
            Err(TdamError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn wrong_store_shapes_rejected() {
        assert!(DelayChain::new(&[0; 3], &cfg(4)).is_err());
        assert!(DelayChain::new(&[9; 4], &cfg(4)).is_err());
    }

    #[test]
    fn mismatch_distance_does_not_change_nominal_delay_much() {
        // Adjacent-level and far-level mismatches both attach the full cap;
        // the drive-strength correction only matters under variation.
        let chain = chain_of(&[0; 8]);
        let near = chain.evaluate(&[1; 8]).unwrap();
        let far = chain.evaluate(&[3; 8]).unwrap();
        assert!(
            (near.total_delay - far.total_delay).abs() < 0.05 * near.total_delay,
            "near {:.3e} far {:.3e}",
            near.total_delay,
            far.total_delay
        );
    }

    #[test]
    fn energy_grows_with_mismatches() {
        let chain = chain_of(&[1; 16]);
        let e0 = chain.evaluate(&[1; 16]).unwrap().energy.total();
        let e8 = {
            let mut q = vec![1u8; 16];
            for item in q.iter_mut().take(8) {
                *item = 0;
            }
            chain.evaluate(&q).unwrap().energy.total()
        };
        let e16 = chain.evaluate(&[0; 16]).unwrap().energy.total();
        assert!(e0 < e8 && e8 < e16);
        // The load-cap component accounts for the difference.
        let expected_delta = 16.0 * (chain.timing().e_c + chain.timing().e_mn);
        assert!(((e16 - e0) - expected_delta).abs() < 0.05 * expected_delta);
    }

    #[test]
    fn perturbed_cells_shift_delay() {
        // A chain whose conducting FeFETs are weakened (vth raised) shows a
        // longer mismatch delay than nominal.
        let config = cfg(8);
        let timing = StageTiming::analytic(&config.tech, config.c_load).unwrap();
        let enc = config.encoding;
        let cells: Vec<Cell> = (0..8)
            .map(|_| Cell::with_vth(1, enc, 0.6 + 0.05, 1.0 + 0.05).unwrap())
            .collect();
        let weak = DelayChain::from_cells(cells, &config, timing).unwrap();
        let nominal = chain_of(&[1; 8]);
        let q = vec![2u8; 8];
        let d_weak = weak.evaluate(&q).unwrap().total_delay;
        let d_nom = nominal.evaluate(&q).unwrap().total_delay;
        assert!(
            d_weak > d_nom,
            "weakened cells must slow the chain: {d_weak:.3e} vs {d_nom:.3e}"
        );
    }

    #[test]
    fn false_conduction_adds_delay() {
        // A matched cell whose F_A vth dropped below the SL level behaves
        // like a mismatch.
        let config = cfg(4);
        let timing = StageTiming::analytic(&config.tech, config.c_load).unwrap();
        let enc = config.encoding;
        let mut cells: Vec<Cell> = (0..4).map(|_| Cell::new(1, enc).unwrap()).collect();
        cells[0] = Cell::with_vth(1, enc, 0.30, 1.0).unwrap(); // vsl(1)=0.4 > 0.30
        let bad = DelayChain::from_cells(cells, &config, timing).unwrap();
        let good = chain_of(&[1; 4]);
        let q = vec![1u8; 4];
        let d_bad = bad.evaluate(&q).unwrap().total_delay;
        let d_good = good.evaluate(&q).unwrap().total_delay;
        assert!(
            d_bad > d_good + 0.5 * good.timing().d_c,
            "false conduction should cost ~d_C: {d_bad:.3e} vs {d_good:.3e}"
        );
    }

    #[test]
    fn compiled_chain_bit_identical_to_evaluate() {
        let stored: Vec<u8> = (0..32).map(|i| (i * 7 % 4) as u8).collect();
        let chain = chain_of(&stored);
        let compiled = chain.compile().expect("nominal chain must compile");
        assert_eq!(compiled.len(), 32);
        assert!(!compiled.is_empty());
        let queries: Vec<Vec<u8>> = vec![
            stored.clone(),
            vec![0; 32],
            vec![3; 32],
            (0..32).map(|i| (i % 4) as u8).collect(),
            (0..32).map(|i| (3 - i % 4) as u8).collect(),
        ];
        for q in &queries {
            let reference = chain.evaluate(q).unwrap();
            let fast = compiled.evaluate(q).unwrap();
            // Exact equality, not tolerance: the batch path must be
            // indistinguishable from the reference path.
            assert_eq!(fast, reference);
        }
    }

    #[test]
    fn compiled_chain_rejects_malformed_queries() {
        let compiled = chain_of(&[0; 4]).compile().unwrap();
        assert!(matches!(
            compiled.evaluate(&[0; 3]),
            Err(TdamError::LengthMismatch { .. })
        ));
        assert!(matches!(
            compiled.evaluate(&[0, 0, 0, 9]),
            Err(TdamError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn non_nominal_chain_refuses_to_compile() {
        let config = cfg(4);
        let timing = StageTiming::analytic(&config.tech, config.c_load).unwrap();
        let mut cells: Vec<Cell> = (0..4)
            .map(|_| Cell::new(1, config.encoding).unwrap())
            .collect();
        cells[2] = Cell::with_vth(1, config.encoding, 0.65, 1.05).unwrap();
        let perturbed = DelayChain::from_cells(cells, &config, timing).unwrap();
        assert!(perturbed.compile().is_none());
    }

    #[test]
    fn attachment_factor_behaviour() {
        // No current → never attaches.
        assert_eq!(attachment_factor(0.0, 1e-9, 1e-15, 1.1, 0.45), 0.0);
        // Strong current, generous time → fully attaches.
        let full = attachment_factor(10e-6, 1e-9, 1e-15, 1.1, 0.45);
        assert!((full - 1.0).abs() < 1e-12);
        // Weak current, short time → partial.
        let partial = attachment_factor(0.7e-6, 1e-9, 1e-15, 1.1, 0.45);
        assert!(partial > 0.0 && partial < 1.0, "got {partial}");
    }

    proptest! {
        #[test]
        fn delay_monotone_in_mismatches(stored in prop::collection::vec(0u8..4, 8..24),
                                        flips in 1usize..8) {
            let chain = chain_of(&stored);
            let q0 = stored.clone();
            let mut q1 = stored.clone();
            let n = stored.len();
            for i in 0..flips.min(n) {
                q1[i] = (stored[i] + 1) % 4;
            }
            let d0 = chain.evaluate(&q0).unwrap().total_delay;
            let d1 = chain.evaluate(&q1).unwrap().total_delay;
            prop_assert!(d1 > d0);
        }

        #[test]
        fn decode_is_exact_for_nominal(stored in prop::collection::vec(0u8..4, 4..32),
                                       query in prop::collection::vec(0u8..4, 4..32)) {
            let n = stored.len().min(query.len());
            let (stored, query) = (&stored[..n], &query[..n]);
            let chain = chain_of(stored);
            let r = chain.evaluate(query).unwrap();
            prop_assert_eq!(chain.decode_mismatches(r.total_delay), r.mismatches);
        }
    }
}
