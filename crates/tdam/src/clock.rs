//! The virtual-time seam: every real-time call site in the serving
//! stack (`runtime`, `serve`, `store`) reads time and sleeps through a
//! [`Clock`] handle instead of touching `std::time::Instant` or
//! `std::thread::sleep` directly.
//!
//! Two implementations share one API:
//!
//! - [`Clock::Wall`] — production. Timestamps come from a process-wide
//!   monotonic epoch, sleeps really sleep. This is the default
//!   everywhere, so existing callers see identical behaviour.
//! - [`Clock::Sim`] — deterministic simulation. Time is a plain `u64`
//!   nanosecond counter owned by a [`SimClock`]; *sleeping advances the
//!   counter instead of blocking*, so a simulated deployment running
//!   retries, backoff waits, group-commit flush deadlines, and
//!   health-probe schedules executes in microseconds of real time and
//!   — crucially — replays **bit-identically** for a fixed seed, because
//!   virtual time is part of the simulation state rather than an
//!   ambient racy input.
//!
//! [`SimClock`] also carries the simulation's *event queue*: a
//! monotonic heap of `(due, token)` entries that
//! `SimWorld` ([`crate::sim`]) uses to schedule future work
//! (client arrivals, aging ticks, scrub ticks, crash points). Popping
//! the next event advances virtual time to its due instant — the
//! discrete-event-simulation loop in five lines.
//!
//! The grep-style lint in `tests/sim_lint.rs` enforces the seam: the
//! *only* real-clock calls on simulated paths live in this module's
//! wall arms, each marked `[real-time ok]`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotonic timestamp: nanoseconds since the owning clock's epoch.
///
/// Wall and sim timestamps share this representation so the code that
/// computes deadlines (`runtime::serve`, `serve::search_topk`,
/// `store::DurableEngine`) is byte-for-byte the same on both clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The timestamp `n` nanoseconds after the epoch.
    pub fn from_nanos(n: u64) -> Self {
        Self(n)
    }

    /// Nanoseconds since the owning clock's epoch.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: Timestamp) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// This timestamp pushed `d` into the future (saturating).
    pub fn after(self, d: Duration) -> Self {
        Self(self.0.saturating_add(clamp_nanos(d)))
    }
}

/// `Duration` → nanos, saturating at `u64::MAX` (584 years — any
/// deadline beyond that is "never").
fn clamp_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A cloneable handle to a time source: the wall clock, or a shared
/// virtual [`SimClock`].
#[derive(Debug, Clone, Default)]
pub enum Clock {
    /// Real monotonic time; sleeps block the thread.
    #[default]
    Wall,
    /// Virtual time owned by a [`SimClock`]; sleeps advance it.
    Sim(Arc<SimClock>),
}

/// The process-wide epoch wall timestamps are measured from.
fn wall_epoch() -> std::time::Instant {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    *EPOCH.get_or_init(std::time::Instant::now) // [real-time ok] wall arm
}

impl Clock {
    /// The production wall clock.
    pub fn wall() -> Self {
        Self::Wall
    }

    /// A handle onto a shared virtual clock.
    pub fn sim(clock: &Arc<SimClock>) -> Self {
        Self::Sim(Arc::clone(clock))
    }

    /// Whether this handle reads virtual time.
    pub fn is_sim(&self) -> bool {
        matches!(self, Self::Sim(_))
    }

    /// The current time on this clock.
    pub fn now(&self) -> Timestamp {
        match self {
            Self::Wall => Timestamp(clamp_nanos(wall_epoch().elapsed())), // [real-time ok] wall arm
            Self::Sim(c) => Timestamp(c.now_nanos()),
        }
    }

    /// Time elapsed since `since` on this clock.
    pub fn elapsed(&self, since: Timestamp) -> Duration {
        self.now().saturating_duration_since(since)
    }

    /// Sleeps for `d`: blocks on the wall clock, advances virtual time
    /// on a sim clock (so simulated backoff is free *and* observable —
    /// a deadline elsewhere in the simulated world sees the wait).
    pub fn sleep(&self, d: Duration) {
        match self {
            Self::Wall => std::thread::sleep(d), // [real-time ok] wall arm
            Self::Sim(c) => c.advance(d),
        }
    }
}

/// A shared virtual clock: a nanosecond counter plus the simulation's
/// event queue.
///
/// The counter only moves forward — via [`SimClock::advance`] (a
/// virtual sleep), [`SimClock::advance_to`], or by popping a scheduled
/// event — so timestamps drawn from it are monotonic exactly like wall
/// timestamps.
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
    queue: Mutex<EventQueue>,
}

#[derive(Debug, Default)]
struct EventQueue {
    /// Min-heap of `(due_nanos, seq, token)`; `seq` makes same-instant
    /// events pop in schedule order, keeping the simulation
    /// deterministic without relying on heap tie-breaking.
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    seq: u64,
}

impl SimClock {
    /// A fresh virtual clock at t = 0 with an empty event queue.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Current virtual time in nanoseconds.
    pub fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Acquire)
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.now_nanos())
    }

    /// Advances virtual time by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(clamp_nanos(d), Ordering::AcqRel);
    }

    /// Advances virtual time to `t` if it is in the future (monotonic:
    /// never moves backwards).
    pub fn advance_to(&self, t: Timestamp) {
        self.nanos.fetch_max(t.0, Ordering::AcqRel);
    }

    /// Schedules `token` to fire `after` from now. Tokens are opaque to
    /// the clock; the simulation maps them back to events.
    pub fn schedule(&self, after: Duration, token: u64) {
        let due = self.now_nanos().saturating_add(clamp_nanos(after));
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let seq = q.seq;
        q.seq += 1;
        q.heap.push(Reverse((due, seq, token)));
    }

    /// Pops the next scheduled event, advancing virtual time to its due
    /// instant, and returns `(fire_time, token)`. Same-instant events
    /// fire in the order they were scheduled.
    pub fn next_event(&self) -> Option<(Timestamp, u64)> {
        let Reverse((due, _, token)) = {
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.heap.pop()?
        };
        self.advance_to(Timestamp(due));
        Some((self.now(), token))
    }

    /// Scheduled events not yet fired.
    pub fn pending_events(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .heap
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_sleep_advances_virtual_time_without_blocking() {
        let sim = SimClock::new();
        let clock = Clock::sim(&sim);
        let t0 = clock.now();
        clock.sleep(Duration::from_secs(3600));
        assert_eq!(clock.elapsed(t0), Duration::from_secs(3600));
        assert!(clock.is_sim());
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = Clock::wall();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        assert!(!clock.is_sim());
    }

    #[test]
    fn timestamps_do_deadline_arithmetic() {
        let t = Timestamp::from_nanos(1_000);
        let d = t.after(Duration::from_nanos(500));
        assert_eq!(d.nanos(), 1_500);
        assert_eq!(d.saturating_duration_since(t), Duration::from_nanos(500));
        assert_eq!(t.saturating_duration_since(d), Duration::ZERO);
    }

    #[test]
    fn event_queue_fires_in_due_then_fifo_order_and_drives_time() {
        let sim = SimClock::new();
        sim.schedule(Duration::from_nanos(200), 1);
        sim.schedule(Duration::from_nanos(100), 2);
        sim.schedule(Duration::from_nanos(100), 3);
        assert_eq!(sim.pending_events(), 3);
        let (t, tok) = sim.next_event().unwrap();
        assert_eq!((t.nanos(), tok), (100, 2));
        let (t, tok) = sim.next_event().unwrap();
        assert_eq!((t.nanos(), tok), (100, 3), "same-instant: FIFO");
        let (t, tok) = sim.next_event().unwrap();
        assert_eq!((t.nanos(), tok), (200, 1));
        assert_eq!(sim.now().nanos(), 200, "popping advanced virtual time");
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn scheduling_is_relative_to_current_virtual_time() {
        let sim = SimClock::new();
        sim.advance(Duration::from_nanos(50));
        sim.schedule(Duration::from_nanos(10), 7);
        let (t, tok) = sim.next_event().unwrap();
        assert_eq!((t.nanos(), tok), (60, 7));
    }
}
