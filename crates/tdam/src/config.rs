//! Technology and array configuration.

use crate::encoding::Encoding;
use crate::TdamError;
use serde::{Deserialize, Serialize};
use tdam_fefet::mosfet::MosParams;

/// Process/technology parameters for the TD-AM circuits (generic
/// 40 nm-class values standing in for the paper's UMC 40 nm PDK).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechParams {
    /// Supply voltage, volts (nominal 1.1 V for 40 nm; the paper scales
    /// down to 0.6 V).
    pub vdd: f64,
    /// Inverter NMOS parameters.
    pub nmos: MosParams,
    /// Inverter PMOS parameters.
    pub pmos: MosParams,
    /// Match-node capacitance (2 FeFET drains + precharge PMOS drain +
    /// switch PMOS gate), farads.
    pub c_mn: f64,
    /// Inverter output self-capacitance (junction + local wiring), farads.
    pub c_self: f64,
    /// Inverter input gate capacitance (loads the previous stage), farads.
    pub c_gate: f64,
    /// FeFET gate capacitance seen by a search line per cell, farads.
    pub c_sl_per_cell: f64,
    /// Width multiple of the load-capacitor PMOS switch relative to the
    /// inverter PMOS. The switch must be strong so the load capacitor
    /// tracks the stage output tightly (otherwise the cap lags the edge and
    /// contributes less delay than `C·V/I`).
    pub switch_width_mult: f64,
    /// Match-node precharge phase duration, seconds.
    pub t_precharge: f64,
    /// Delay between search-line assertion and pulse launch, seconds (the
    /// compute-phase settling window for match-node discharge).
    pub t_launch: f64,
    /// Sensitivity of the mismatch penalty `d_C` to the conducting FeFET's
    /// drive strength (dimensionless, fit against single-stage circuit
    /// Monte Carlo): `d_C,eff = d_C·(1 + κ·(I_nom/I_act − 1))`.
    pub dc_sensitivity: f64,
}

impl TechParams {
    /// Generic 40 nm-class parameters at the nominal 1.1 V supply.
    pub fn nominal_40nm() -> Self {
        Self {
            vdd: 1.1,
            nmos: MosParams::nmos_40nm(),
            pmos: MosParams::pmos_40nm(),
            c_mn: 1.0e-15,
            c_self: 0.25e-15,
            c_gate: 0.35e-15,
            c_sl_per_cell: 0.12e-15,
            switch_width_mult: 6.0,
            t_precharge: 1.0e-9,
            t_launch: 1.0e-9,
            dc_sensitivity: 0.01,
        }
    }

    /// Returns a copy at a different supply voltage.
    pub fn with_vdd(mut self, vdd: f64) -> Self {
        self.vdd = vdd;
        self
    }

    /// Returns a copy with both transistor models retargeted to `kelvin`
    /// (see [`tdam_fefet::mosfet::MosParams::at_temperature`]).
    ///
    /// # Panics
    ///
    /// Panics for non-positive temperatures.
    pub fn at_temperature(mut self, kelvin: f64) -> Self {
        self.nmos = self.nmos.at_temperature(kelvin);
        self.pmos = self.pmos.at_temperature(kelvin);
        self
    }

    /// Effective on-resistance of the load-capacitor switch, ohms
    /// (first-order triode estimate `1/(β_sw·(V_DD − |V_TH,P|))`).
    pub fn r_switch(&self) -> f64 {
        let ov = (self.vdd - self.pmos.vth).max(0.05);
        1.0 / (self.pmos.beta * self.switch_width_mult * ov)
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self::nominal_40nm()
    }
}

/// Full configuration of a TD-AM array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Elements per stored vector = delay stages per chain.
    pub stages: usize,
    /// Number of stored vectors (rows / delay chains).
    pub rows: usize,
    /// Element encoding.
    pub encoding: Encoding,
    /// Load capacitor attached on a mismatch, farads (paper default 6 fF,
    /// swept up to 1280 fF in Fig. 5).
    pub c_load: f64,
    /// Technology parameters.
    pub tech: TechParams,
}

impl ArrayConfig {
    /// The paper's default configuration: 32 stages, 2-bit elements,
    /// 6 fF load capacitors, nominal 40 nm supply; a single row.
    pub fn paper_default() -> Self {
        Self {
            stages: 32,
            rows: 1,
            encoding: Encoding::paper_default(),
            c_load: 6e-15,
            tech: TechParams::nominal_40nm(),
        }
    }

    /// Returns a copy with a different chain length.
    pub fn with_stages(mut self, stages: usize) -> Self {
        self.stages = stages;
        self
    }

    /// Returns a copy with a different row count.
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Returns a copy with a different load capacitance.
    pub fn with_c_load(mut self, c_load: f64) -> Self {
        self.c_load = c_load;
        self
    }

    /// Returns a copy at a different supply voltage.
    pub fn with_vdd(mut self, vdd: f64) -> Self {
        self.tech.vdd = vdd;
        self
    }

    /// Returns a copy with a different element encoding.
    pub fn with_encoding(mut self, encoding: Encoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::InvalidConfig`] for zero sizes, non-positive
    /// capacitance, or a supply voltage outside the model's (0.3 V, 2 V)
    /// validity window.
    pub fn validate(&self) -> Result<(), TdamError> {
        if self.stages == 0 {
            return Err(TdamError::InvalidConfig {
                what: "stages must be at least 1",
            });
        }
        if self.rows == 0 {
            return Err(TdamError::InvalidConfig {
                what: "rows must be at least 1",
            });
        }
        if !self.c_load.is_finite() || self.c_load <= 0.0 {
            return Err(TdamError::InvalidConfig {
                what: "load capacitance must be positive and finite",
            });
        }
        if !(0.3..2.0).contains(&self.tech.vdd) {
            return Err(TdamError::InvalidConfig {
                what: "supply voltage outside model validity (0.3..2.0 V)",
            });
        }
        Ok(())
    }

    /// Total bits stored per row.
    pub fn bits_per_row(&self) -> usize {
        self.stages * self.encoding.bits() as usize
    }
}

impl Default for ArrayConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let cfg = ArrayConfig::paper_default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.stages, 32);
        assert_eq!(cfg.c_load, 6e-15);
        assert_eq!(cfg.encoding.bits(), 2);
        assert_eq!(cfg.bits_per_row(), 64);
    }

    #[test]
    fn builders_compose() {
        let cfg = ArrayConfig::paper_default()
            .with_stages(128)
            .with_rows(16)
            .with_c_load(12e-15)
            .with_vdd(0.6);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.stages, 128);
        assert_eq!(cfg.rows, 16);
        assert_eq!(cfg.c_load, 12e-15);
        assert_eq!(cfg.tech.vdd, 0.6);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ArrayConfig::paper_default()
            .with_stages(0)
            .validate()
            .is_err());
        assert!(ArrayConfig::paper_default()
            .with_rows(0)
            .validate()
            .is_err());
        assert!(ArrayConfig::paper_default()
            .with_c_load(0.0)
            .validate()
            .is_err());
        assert!(ArrayConfig::paper_default()
            .with_c_load(f64::NAN)
            .validate()
            .is_err());
        assert!(ArrayConfig::paper_default()
            .with_vdd(0.1)
            .validate()
            .is_err());
        assert!(ArrayConfig::paper_default()
            .with_vdd(2.5)
            .validate()
            .is_err());
    }

    #[test]
    fn temperature_retargets_both_devices() {
        let hot = TechParams::nominal_40nm().at_temperature(398.0);
        let nom = TechParams::nominal_40nm();
        assert!(hot.nmos.vth < nom.nmos.vth);
        assert!(hot.pmos.beta < nom.pmos.beta);
        assert_eq!(hot.c_mn, nom.c_mn, "capacitances are temperature-flat");
    }

    #[test]
    fn vdd_scaling_keeps_other_tech() {
        let t = TechParams::nominal_40nm().with_vdd(0.6);
        assert_eq!(t.vdd, 0.6);
        assert_eq!(t.c_mn, TechParams::nominal_40nm().c_mn);
    }
}
