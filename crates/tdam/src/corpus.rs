//! Two-tier million-row search: a seeded coarse centroid pre-filter in
//! front of the exact packed TD-AM re-rank tier, with a bounded LRU
//! cache of per-shard packed snapshots.
//!
//! The paper's TD-AM arrays are physically hundreds of rows, but the
//! serving north star is corpora of millions. Brute force is linear in
//! rows, so a 1M-row corpus costs ~8000× the 128-row figure per query.
//! This module applies the standard vector-store shape to the
//! time-domain fabric (the same decomposition FeFET search-engine work
//! such as COSIME uses — the array is a building block, not the whole
//! index):
//!
//! 1. **Cluster** — [`CorpusBuilder::build`] groups rows into
//!    shard-sized posting lists with a k-means-style quantizer in the
//!    element-Hamming space of the multi-bit codes. Centroids are
//!    *modes* (per-position majority vote, ties to the lowest level):
//!    the mode is the 1-center of a cluster under element Hamming
//!    distance, and unlike a mean it is itself a valid multi-bit code,
//!    so centroids can be stored in a TD-AM row verbatim. Seeding and
//!    sampling follow the repo's SplitMix64 discipline — the whole
//!    index is a pure function of (corpus, [`CorpusConfig::seed`]).
//! 2. **Probe** — a query first scans the *centroid array* (one
//!    [`PackedArray`] of `k ≈ rows / shard_rows` rows) with the
//!    existing XOR→popcount kernel and keeps the
//!    [`CorpusConfig::nprobe`] nearest shards. For 1M rows in
//!    4096-row shards this is a 245-row scan — noise next to brute
//!    force's 1M.
//! 3. **Re-rank** — surviving shards are scanned *exactly* on per-shard
//!    packed snapshots built by [`PackedArray::from_codes`]; decoded
//!    distances and `(distance, id)` tie-breaking are bit-identical to
//!    [`crate::serve::brute_force_topk`] restricted to the probed
//!    shards (pinned by `tests/corpus.rs` across every kernel rung).
//!
//! Only hot shards stay resident: snapshots live in an LRU cache with a
//! resident-byte budget ([`CorpusConfig::cache_budget_bytes`]); hits,
//! misses, evictions, and cumulative compile time surface through the
//! corpus counters of [`RuntimeStats`]. Because a snapshot is a pure
//! function of its shard's codes (capacity quantization included), an
//! evicted shard recompiles **bit-identically** on its next probe.
//!
//! Streaming ingest ([`CorpusBuilder::append_rows`] before build,
//! [`CorpusEngine::append_row`] after) programs rows shard-by-shard:
//! post-build appends route to the nearest centroid and patch any
//! resident snapshot surgically via [`PackedArray::repack_row_codes`] —
//! the corpus-tier form of PR 8's `refresh_rows` repack — without
//! recompiling the world.
//!
//! # Recall
//!
//! The pre-filter is lossy by design: a true top-`k` neighbour living
//! in an unprobed shard is missed. On *clusterable* data (the regime
//! the quantizer exists for) recall@10 ≥ 0.95 at small `nprobe`; on
//! structureless uniform data every shard looks alike and recall
//! degrades toward `nprobe / k`. See ARCHITECTURE.md ("two-tier corpus
//! search") for the cost model and the measured nprobe/recall
//! trade-off.
//!
//! # Examples
//!
//! ```
//! use tdam::corpus::{CorpusBuilder, CorpusConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cfg = CorpusConfig::paper_default();
//! cfg.array = cfg.array.with_stages(8);
//! cfg.shard_rows = 4;
//! cfg.nprobe = 2;
//! let mut builder = CorpusBuilder::new(cfg)?;
//! let rows: Vec<Vec<u8>> = (0..16)
//!     .map(|i| (0..8).map(|j| ((i / 8 + j) % 4) as u8).collect())
//!     .collect();
//! builder.append_rows(&rows)?;
//! let mut corpus = builder.build()?;
//! let top = corpus.search_topk(&rows[3], 2)?;
//! // The query equals rows 0..8; an exact match survives the
//! // pre-filter, and the distance-0 tie breaks to the lowest id.
//! assert_eq!(top[0], (0, 0));
//! # Ok(())
//! # }
//! ```

use crate::clock::Clock;
use crate::config::ArrayConfig;
use crate::encoding::Encoding;
use crate::engine::{SearchMetrics, SimilarityEngine};
use crate::packed::{PackedArray, PackedKernel, PackedScratch};
use crate::parallel::run_chunked_scratch;
use crate::runtime::RuntimeStats;
use crate::tdc::CounterTdc;
use crate::timing::StageTiming;
use crate::TdamError;
use std::collections::HashMap;

/// Preference-list length of the capacity-balanced placement: each row
/// ranks its nearest `min(k, PREFERRED)` centroids and takes the first
/// with spare capacity (overflow falls back to a linear scan).
const PREFERRED: usize = 16;

/// SplitMix64 — the repo-wide seeding primitive (identical constants to
/// [`crate::sim`] and the packed tests).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Snapshot capacity for a shard of `len` rows: the next multiple of 64
/// (at least one). Quantizing keeps append headroom — a shard can grow
/// to its capacity through surgical repacks before a recompile is
/// needed — and makes the snapshot a pure function of `len`, which is
/// what guarantees bit-identical recompiles after eviction.
fn capacity_for(len: usize) -> usize {
    len.div_ceil(64).max(1) * 64
}

/// Answers of a probed search: exact `(distance, id)` pairs sorted
/// ascending (ties toward the lower id) plus the probed shard indices
/// in centroid rank order.
pub type ProbedTopK = (Vec<(usize, usize)>, Vec<usize>);

/// Configuration of the two-tier corpus engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Per-shard array template: stages (vector width), encoding, and
    /// the technology/timing parameters every tier's packed snapshots
    /// are calibrated with. The template's `rows` field is ignored —
    /// shard sizes come from `shard_rows`.
    pub array: ArrayConfig,
    /// Target rows per shard (posting-list capacity of the balanced
    /// placement). The paper-default 4096 keeps one shard's snapshot
    /// ~L2-sized at 128 stages / 2 bits.
    pub shard_rows: usize,
    /// Candidate shards scanned exactly per query. Recall rises and
    /// speedup falls monotonically in `nprobe`; see ARCHITECTURE.md for
    /// the measured trade-off.
    pub nprobe: usize,
    /// Refinement iterations of the k-modes quantizer (0 = keep the
    /// seeded initial centroids).
    pub train_iters: usize,
    /// Rows sampled (deterministic stride) per training iteration; the
    /// final placement always considers every row.
    pub train_sample: usize,
    /// Resident-byte budget of the shard-snapshot LRU cache. The
    /// hottest shard always stays resident even when it alone exceeds
    /// the budget — an unservable cache is worse than an over-budget
    /// one.
    pub cache_budget_bytes: usize,
    /// Seed of the quantizer's initial centroids (SplitMix64 stream).
    pub seed: u64,
    /// Worker threads for clustering scans (`None` = all cores), as
    /// [`crate::parallel::resolve_threads`].
    pub threads: Option<usize>,
}

impl CorpusConfig {
    /// Defaults matched to the paper's array template: 32-stage 2-bit
    /// rows, 4096-row shards, 8 probes, 4 training iterations over a
    /// 64k sample, and a 64 MiB snapshot cache.
    pub fn paper_default() -> Self {
        Self {
            array: ArrayConfig::paper_default(),
            shard_rows: 4096,
            nprobe: 8,
            train_iters: 4,
            train_sample: 1 << 16,
            cache_budget_bytes: 64 << 20,
            seed: 0x7DA1_C0DE,
            threads: None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::InvalidConfig`] for a zero `shard_rows`,
    /// `nprobe`, or `train_sample`, or an invalid array template
    /// (ignoring its `rows` field).
    pub fn validate(&self) -> Result<(), TdamError> {
        self.array.with_rows(1).validate()?;
        if self.shard_rows == 0 {
            return Err(TdamError::InvalidConfig {
                what: "shard_rows must be at least 1",
            });
        }
        if self.nprobe == 0 {
            return Err(TdamError::InvalidConfig {
                what: "nprobe must be at least 1",
            });
        }
        if self.train_sample == 0 {
            return Err(TdamError::InvalidConfig {
                what: "train_sample must be at least 1",
            });
        }
        Ok(())
    }
}

/// Streaming bulk-ingestion front of the corpus engine: rows accumulate
/// (validated) in arrival order, then [`CorpusBuilder::build`] clusters
/// them and constructs the [`CorpusEngine`]. Row ids are assignment
/// order (the first appended row is id 0), so results compare directly
/// against brute force over the ingested sequence.
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    cfg: CorpusConfig,
    codes: Vec<u8>,
    rows: usize,
}

impl CorpusBuilder {
    /// An empty builder for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::InvalidConfig`] for an invalid `cfg`.
    pub fn new(cfg: CorpusConfig) -> Result<Self, TdamError> {
        cfg.validate()?;
        Ok(Self {
            cfg,
            codes: Vec::new(),
            rows: 0,
        })
    }

    /// Appends a batch of rows, returning the total ingested so far.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::LengthMismatch`] for a row whose length is
    /// not the template's stage count and [`TdamError::ValueOutOfRange`]
    /// for codes outside the encoding; rows before the offending one
    /// remain ingested.
    pub fn append_rows(&mut self, rows: &[Vec<u8>]) -> Result<usize, TdamError> {
        for row in rows {
            if row.len() != self.cfg.array.stages {
                return Err(TdamError::LengthMismatch {
                    got: row.len(),
                    expected: self.cfg.array.stages,
                });
            }
            self.cfg.array.encoding.validate(row)?;
            self.codes.extend_from_slice(row);
            self.rows += 1;
        }
        Ok(self.rows)
    }

    /// Appends rows from a flat row-major slab (`rows · stages` codes) —
    /// the allocation-free path million-row ingest benchmarks drive.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::LengthMismatch`] when `codes` is not a whole
    /// number of rows and [`TdamError::ValueOutOfRange`] for invalid
    /// codes (nothing is ingested on error).
    pub fn append_flat(&mut self, codes: &[u8]) -> Result<usize, TdamError> {
        let stages = self.cfg.array.stages;
        if !codes.len().is_multiple_of(stages) {
            return Err(TdamError::LengthMismatch {
                got: codes.len(),
                expected: stages,
            });
        }
        self.cfg.array.encoding.validate(codes)?;
        self.codes.extend_from_slice(codes);
        self.rows += codes.len() / stages;
        Ok(self.rows)
    }

    /// Rows ingested so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether nothing has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Clusters the ingested rows and builds the engine (wall clock).
    ///
    /// # Errors
    ///
    /// As [`CorpusBuilder::build_with_clock`].
    pub fn build(self) -> Result<CorpusEngine, TdamError> {
        self.build_with_clock(Clock::wall())
    }

    /// Clusters the ingested rows and builds the engine on an explicit
    /// clock (the deterministic simulation passes its virtual clock so
    /// compile-time accounting stays replayable).
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::InvalidConfig`] for an empty corpus and
    /// propagates timing-calibration errors from the array template.
    pub fn build_with_clock(self, clock: Clock) -> Result<CorpusEngine, TdamError> {
        let Self { cfg, codes, rows } = self;
        if rows == 0 {
            return Err(TdamError::InvalidConfig {
                what: "corpus must hold at least one row before build",
            });
        }
        let stages = cfg.array.stages;
        let encoding = cfg.array.encoding;
        let timing = StageTiming::analytic(&cfg.array.tech, cfg.array.c_load)?;
        let tdc = CounterTdc::matched(&timing)?;
        let k = rows.div_ceil(cfg.shard_rows);

        // Seeded initial centroids: k SplitMix64-picked rows.
        let mut centroids = Vec::with_capacity(k * stages);
        for c in 0..k {
            let r = (splitmix(cfg.seed ^ 0xCE27_701D ^ c as u64) % rows as u64) as usize;
            centroids.extend_from_slice(&codes[r * stages..(r + 1) * stages]);
        }

        // k-modes refinement on a deterministic stride sample: assign
        // sample rows to their nearest centroid with the packed kernel,
        // then recenter each cluster on its per-position mode (ties to
        // the lowest level; an empty cluster keeps its centroid).
        let sample_n = cfg.train_sample.min(rows);
        let stride = rows / sample_n;
        let sample_idx = |i: usize| i * stride;
        let levels = encoding.levels() as usize;
        for _ in 0..cfg.train_iters {
            let cp = PackedArray::from_codes(encoding, stages, &timing, &tdc, &centroids);
            let assign: Vec<usize> = run_chunked_scratch(
                sample_n,
                cfg.threads,
                || cp.scratch(),
                |scratch, i| {
                    let r = sample_idx(i);
                    Ok::<usize, TdamError>(nearest_row(
                        &cp,
                        &codes[r * stages..(r + 1) * stages],
                        scratch,
                    ))
                },
            )?;
            let mut counts = vec![0u32; k * stages * levels];
            let mut members = vec![0u32; k];
            for (i, &c) in assign.iter().enumerate() {
                members[c] += 1;
                let r = sample_idx(i);
                for (j, &v) in codes[r * stages..(r + 1) * stages].iter().enumerate() {
                    counts[(c * stages + j) * levels + v as usize] += 1;
                }
            }
            for c in 0..k {
                if members[c] == 0 {
                    continue;
                }
                for j in 0..stages {
                    let base = (c * stages + j) * levels;
                    let mut best = 0usize;
                    for v in 1..levels {
                        if counts[base + v] > counts[base + best] {
                            best = v;
                        }
                    }
                    centroids[c * stages + j] = best as u8;
                }
            }
        }

        // Capacity-balanced placement over the final centroids: every
        // row ranks its nearest PREFERRED centroids in parallel, then a
        // sequential greedy pass places each row in its best cluster
        // with spare capacity. Total capacity k·shard_rows ≥ rows, so
        // placement always succeeds.
        let centroid_packed = PackedArray::from_codes(encoding, stages, &timing, &tdc, &centroids);
        let t = k.min(PREFERRED);
        let prefs: Vec<Vec<u32>> = run_chunked_scratch(
            rows,
            cfg.threads,
            || centroid_packed.scratch(),
            |scratch, r| {
                Ok::<Vec<u32>, TdamError>(nearest_rows(
                    &centroid_packed,
                    &codes[r * stages..(r + 1) * stages],
                    scratch,
                    t,
                ))
            },
        )?;
        let mut clusters: Vec<ClusterData> = (0..k)
            .map(|_| ClusterData {
                codes: Vec::new(),
                ids: Vec::new(),
            })
            .collect();
        let mut locate = Vec::with_capacity(rows);
        for r in 0..rows {
            let preferred = prefs[r]
                .iter()
                .map(|&c| c as usize)
                .find(|&c| clusters[c].ids.len() < cfg.shard_rows);
            let c = preferred.unwrap_or_else(|| {
                (0..k)
                    .find(|&c| clusters[c].ids.len() < cfg.shard_rows)
                    .expect("total shard capacity covers every row")
            });
            locate.push((c as u32, clusters[c].ids.len() as u32));
            clusters[c].ids.push(r as u32);
            clusters[c]
                .codes
                .extend_from_slice(&codes[r * stages..(r + 1) * stages]);
        }

        let centroid_scratch = centroid_packed.scratch();
        Ok(CorpusEngine {
            cfg,
            encoding,
            stages,
            timing,
            tdc,
            centroids,
            centroid_packed,
            centroid_scratch,
            clusters,
            locate,
            resident: HashMap::new(),
            lru: Vec::new(),
            resident_bytes: 0,
            kernel_pin: None,
            stats: RuntimeStats::default(),
            clock,
        })
    }
}

/// Nearest centroid of `query` in `(distance, index)` order — the same
/// tie-breaking as every top-k path in the repo.
fn nearest_row(cp: &PackedArray, query: &[u8], scratch: &mut PackedScratch) -> usize {
    cp.expand_query(query, scratch);
    cp.mismatch_counts(scratch);
    let mut best = (usize::MAX, 0usize);
    for c in 0..cp.rows() {
        let (e, o) = cp.counts(scratch, 0, c);
        if e + o < best.0 {
            best = (e + o, c);
        }
    }
    best.1
}

/// The `t` nearest centroids of `query`, ranked by `(distance, index)`.
fn nearest_rows(cp: &PackedArray, query: &[u8], scratch: &mut PackedScratch, t: usize) -> Vec<u32> {
    cp.expand_query(query, scratch);
    cp.mismatch_counts(scratch);
    let mut ranked: Vec<(usize, u32)> = (0..cp.rows())
        .map(|c| {
            let (e, o) = cp.counts(scratch, 0, c);
            (e + o, c as u32)
        })
        .collect();
    ranked.sort_unstable();
    ranked.truncate(t);
    ranked.into_iter().map(|(_, c)| c).collect()
}

/// One shard's posting list: row codes (flat, slot-major) and the
/// engine-global id stored at each slot.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ClusterData {
    pub(crate) codes: Vec<u8>,
    pub(crate) ids: Vec<u32>,
}

impl ClusterData {
    fn len(&self) -> usize {
        self.ids.len()
    }
}

/// One resident shard snapshot: the packed view (padded to
/// [`capacity_for`] the shard's length with all-zero rows whose slots
/// are never consumed) plus its per-query scratch.
#[derive(Debug)]
struct Resident {
    packed: PackedArray,
    scratch: PackedScratch,
    capacity: usize,
}

/// Cache/placement counters and geometry of a [`CorpusEngine`], the
/// view surfaced through the serve stats endpoint and the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusTierStatus {
    /// Total rows indexed.
    pub rows: usize,
    /// Number of shards (clusters).
    pub clusters: usize,
    /// Candidate shards scanned exactly per query.
    pub nprobe: usize,
    /// Shard snapshots currently resident.
    pub resident: usize,
    /// Bytes the resident snapshots hold.
    pub resident_bytes: usize,
    /// Configured resident-byte budget.
    pub budget_bytes: usize,
    /// Cumulative counters (cache hits/misses/evictions, compile time,
    /// queries, writes, surgical repacks).
    pub stats: RuntimeStats,
}

/// The two-tier corpus search engine. See the [module docs](self).
#[derive(Debug)]
pub struct CorpusEngine {
    cfg: CorpusConfig,
    encoding: Encoding,
    stages: usize,
    timing: StageTiming,
    tdc: CounterTdc,
    /// Flat `clusters · stages` centroid codes (the checkpointable
    /// centroid table).
    centroids: Vec<u8>,
    /// The coarse tier: one packed array holding every centroid.
    centroid_packed: PackedArray,
    centroid_scratch: PackedScratch,
    clusters: Vec<ClusterData>,
    /// id → (cluster, slot).
    locate: Vec<(u32, u32)>,
    resident: HashMap<usize, Resident>,
    /// Recency order of resident shards, front = hottest.
    lru: Vec<usize>,
    resident_bytes: usize,
    /// Forced dispatch-ladder rung for every packed view (`None` =
    /// auto-detect; see [`CorpusEngine::set_kernel`]).
    kernel_pin: Option<PackedKernel>,
    stats: RuntimeStats,
    clock: Clock,
}

impl CorpusEngine {
    /// The configuration the engine was built with.
    pub fn config(&self) -> &CorpusConfig {
        &self.cfg
    }

    /// Total rows indexed.
    pub fn total_rows(&self) -> usize {
        self.locate.len()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.clusters.len()
    }

    /// Rows currently held by shard `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c` is not a shard index.
    pub fn shard_len(&self, c: usize) -> usize {
        self.clusters[c].len()
    }

    /// Engine-global ids stored in shard `c`, in slot order.
    ///
    /// # Panics
    ///
    /// Panics when `c` is not a shard index.
    pub fn shard_ids(&self, c: usize) -> &[u32] {
        &self.clusters[c].ids
    }

    /// The flat `shards · stages` centroid code table.
    pub fn centroids(&self) -> &[u8] {
        &self.centroids
    }

    /// The stored codes of row `id`, or `None` for an unknown id.
    pub fn row_codes(&self, id: usize) -> Option<&[u8]> {
        let &(c, slot) = self.locate.get(id)?;
        let (c, slot) = (c as usize, slot as usize);
        Some(&self.clusters[c].codes[slot * self.stages..(slot + 1) * self.stages])
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Pins the packed dispatch-ladder rung used by the centroid tier,
    /// every resident shard snapshot, and every snapshot compiled from
    /// here on (tests and operational pinning). Returns `false` —
    /// leaving the current rung in place — when the requested rung is
    /// not available in this build/CPU; the re-rank distances are
    /// bit-identical across rungs either way.
    pub fn set_kernel(&mut self, kernel: PackedKernel) -> bool {
        if !kernel.is_available() {
            return false;
        }
        self.kernel_pin = Some(kernel);
        self.centroid_packed.set_kernel(kernel);
        for ent in self.resident.values_mut() {
            ent.packed.set_kernel(kernel);
        }
        true
    }

    /// Cache and geometry snapshot for stats endpoints.
    pub fn status(&self) -> CorpusTierStatus {
        CorpusTierStatus {
            rows: self.total_rows(),
            clusters: self.clusters.len(),
            nprobe: self.cfg.nprobe,
            resident: self.resident.len(),
            resident_bytes: self.resident_bytes,
            budget_bytes: self.cfg.cache_budget_bytes,
            stats: self.stats,
        }
    }

    /// Scans the centroid tier and returns the `nprobe` candidate
    /// shards in `(distance, shard)` rank order.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::LengthMismatch`] /
    /// [`TdamError::ValueOutOfRange`] for malformed queries.
    pub fn probe(&mut self, query: &[u8]) -> Result<Vec<usize>, TdamError> {
        if query.len() != self.stages {
            return Err(TdamError::LengthMismatch {
                got: query.len(),
                expected: self.stages,
            });
        }
        self.encoding.validate(query)?;
        Ok(nearest_rows(
            &self.centroid_packed,
            query,
            &mut self.centroid_scratch,
            self.cfg.nprobe.min(self.clusters.len()),
        )
        .into_iter()
        .map(|c| c as usize)
        .collect())
    }

    /// Two-tier top-`k`: probe, then re-rank the probed shards exactly.
    /// Returns `(distance, id)` pairs sorted ascending with ties broken
    /// toward the lower id — bit-identical to
    /// [`crate::serve::brute_force_topk`] restricted to the probed
    /// shards' rows.
    ///
    /// # Errors
    ///
    /// As [`CorpusEngine::probe`].
    pub fn search_topk(
        &mut self,
        query: &[u8],
        k: usize,
    ) -> Result<Vec<(usize, usize)>, TdamError> {
        Ok(self.search_topk_probed(query, k)?.0)
    }

    /// As [`CorpusEngine::search_topk`], additionally returning the
    /// probed shard indices (rank order) — the handle the deterministic
    /// simulation's restricted judge and the serve tier's scatter path
    /// use.
    ///
    /// # Errors
    ///
    /// As [`CorpusEngine::probe`].
    pub fn search_topk_probed(&mut self, query: &[u8], k: usize) -> Result<ProbedTopK, TdamError> {
        let probed = self.probe(query)?;
        let mut candidates = Vec::new();
        for &c in &probed {
            self.scan_shard(c, query, &mut candidates);
        }
        candidates.sort_unstable();
        candidates.truncate(k);
        self.stats.queries += 1;
        self.stats.answered += 1;
        Ok((candidates, probed))
    }

    /// Exact decoded distances of one shard against `query`, appended
    /// to `out` as `(distance, id)` pairs. The shard is made resident
    /// first (cache hit or bit-identical recompile).
    pub(crate) fn scan_shard(&mut self, c: usize, query: &[u8], out: &mut Vec<(usize, usize)>) {
        self.ensure_resident(c);
        let len = self.clusters[c].len();
        let ent = self.resident.get_mut(&c).expect("shard just made resident");
        ent.packed.expand_query(query, &mut ent.scratch);
        ent.packed.mismatch_counts(&mut ent.scratch);
        for slot in 0..len {
            let (e, o) = ent.packed.counts(&ent.scratch, 0, slot);
            let d = ent.packed.decoded(e, o);
            out.push((d, self.clusters[c].ids[slot] as usize));
        }
    }

    /// Makes shard `c`'s snapshot resident: an LRU hit refreshes
    /// recency; a miss compiles the snapshot from the shard's codes
    /// (counted in `corpus_compile_micros`) and evicts cold shards
    /// until the cache is back under budget. The just-compiled snapshot
    /// is never evicted, so a single over-budget shard still serves.
    fn ensure_resident(&mut self, c: usize) {
        if self.resident.contains_key(&c) {
            self.stats.corpus_cache_hits += 1;
            if self.lru.first() != Some(&c) {
                self.lru.retain(|&x| x != c);
                self.lru.insert(0, c);
            }
            return;
        }
        self.stats.corpus_cache_misses += 1;
        let t0 = self.clock.now();
        let len = self.clusters[c].len();
        let capacity = capacity_for(len);
        let mut slab = vec![0u8; capacity * self.stages];
        slab[..len * self.stages].copy_from_slice(&self.clusters[c].codes);
        let mut packed =
            PackedArray::from_codes(self.encoding, self.stages, &self.timing, &self.tdc, &slab);
        if let Some(kernel) = self.kernel_pin {
            packed.set_kernel(kernel);
        }
        self.stats.corpus_compile_micros += self.clock.elapsed(t0).as_micros() as usize;
        let scratch = packed.scratch();
        self.resident_bytes += packed.resident_bytes();
        self.resident.insert(
            c,
            Resident {
                packed,
                scratch,
                capacity,
            },
        );
        self.lru.insert(0, c);
        while self.resident_bytes > self.cfg.cache_budget_bytes && self.lru.len() > 1 {
            let victim = self.lru.pop().expect("lru non-empty");
            let gone = self.resident.remove(&victim).expect("lru tracks residents");
            self.resident_bytes -= gone.packed.resident_bytes();
            self.stats.corpus_cache_evictions += 1;
        }
    }

    /// Drops shard `c`'s resident snapshot (if any) without counting an
    /// eviction — used when the snapshot is invalidated by growth.
    fn drop_resident(&mut self, c: usize) {
        if let Some(gone) = self.resident.remove(&c) {
            self.resident_bytes -= gone.packed.resident_bytes();
            self.lru.retain(|&x| x != c);
        }
    }

    /// Appends one row post-build: it joins the shard of its nearest
    /// centroid (centroids stay fixed — the coarse structure does not
    /// chase stragglers) and any resident snapshot is patched
    /// surgically; a shard outgrowing its snapshot capacity drops the
    /// snapshot for a bit-identical recompile at the next probe.
    /// Returns the new row's id.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::LengthMismatch`] /
    /// [`TdamError::ValueOutOfRange`] for malformed rows.
    pub fn append_row(&mut self, values: &[u8]) -> Result<usize, TdamError> {
        if values.len() != self.stages {
            return Err(TdamError::LengthMismatch {
                got: values.len(),
                expected: self.stages,
            });
        }
        self.encoding.validate(values)?;
        let c = nearest_row(&self.centroid_packed, values, &mut self.centroid_scratch);
        let id = self.locate.len();
        let slot = self.clusters[c].len();
        self.clusters[c].ids.push(id as u32);
        self.clusters[c].codes.extend_from_slice(values);
        self.locate.push((c as u32, slot as u32));
        self.stats.user_writes += 1;
        self.patch_resident(c, slot, values);
        Ok(id)
    }

    /// Appends a batch of rows ([`CorpusEngine::append_row`] each),
    /// returning the first new id.
    ///
    /// # Errors
    ///
    /// As [`CorpusEngine::append_row`]; rows before the offending one
    /// remain appended.
    pub fn append_rows(&mut self, rows: &[Vec<u8>]) -> Result<usize, TdamError> {
        let first = self.locate.len();
        for row in rows {
            self.append_row(row)?;
        }
        Ok(first)
    }

    /// Overwrites row `id` in place. The row keeps its shard — cluster
    /// membership is an index structure, not a promise, and a mutated
    /// row drifting away from its shard's centroid degrades its own
    /// recall only (the trade every IVF index makes for O(1) updates).
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::RowOutOfBounds`] for an unknown id and the
    /// usual shape errors for malformed values.
    pub fn update_row(&mut self, id: usize, values: &[u8]) -> Result<(), TdamError> {
        if values.len() != self.stages {
            return Err(TdamError::LengthMismatch {
                got: values.len(),
                expected: self.stages,
            });
        }
        self.encoding.validate(values)?;
        let &(c, slot) = self.locate.get(id).ok_or(TdamError::RowOutOfBounds {
            row: id,
            rows: self.locate.len(),
        })?;
        let (c, slot) = (c as usize, slot as usize);
        self.clusters[c].codes[slot * self.stages..(slot + 1) * self.stages]
            .copy_from_slice(values);
        self.stats.user_writes += 1;
        self.patch_resident(c, slot, values);
        Ok(())
    }

    /// Keeps a resident snapshot coherent with a single-slot write:
    /// surgical repack while the slot fits the snapshot's capacity,
    /// else invalidate (recompiled bit-identically on next probe).
    fn patch_resident(&mut self, c: usize, slot: usize, values: &[u8]) {
        let Some(ent) = self.resident.get_mut(&c) else {
            return;
        };
        if slot < ent.capacity {
            ent.packed.repack_row_codes(slot, values);
            self.stats.incremental_repacks += 1;
            self.stats.rows_repacked += 1;
        } else {
            self.drop_resident(c);
        }
    }

    /// Destructures into the pieces the persistence layer serializes;
    /// see [`crate::store::save_corpus`].
    #[allow(clippy::type_complexity)]
    pub(crate) fn persistent_parts(
        &self,
    ) -> (
        &CorpusConfig,
        &StageTiming,
        &[u8],
        &[ClusterData],
        &RuntimeStats,
    ) {
        (
            &self.cfg,
            &self.timing,
            &self.centroids,
            &self.clusters,
            &self.stats,
        )
    }

    /// Rebuilds an engine from checkpointed parts (an empty cache; the
    /// centroid tier is recompiled from the centroid table, which is
    /// bit-identical by the [`PackedArray::from_codes`] contract).
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::InvalidConfig`] for inconsistent parts.
    pub(crate) fn from_persistent_parts(
        cfg: CorpusConfig,
        timing: StageTiming,
        centroids: Vec<u8>,
        clusters: Vec<ClusterData>,
        stats: RuntimeStats,
        clock: Clock,
    ) -> Result<Self, TdamError> {
        cfg.validate()?;
        let stages = cfg.array.stages;
        let encoding = cfg.array.encoding;
        if centroids.len() != clusters.len() * stages || clusters.is_empty() {
            return Err(TdamError::InvalidConfig {
                what: "corpus checkpoint centroid table disagrees with its shard manifest",
            });
        }
        let mut locate_pairs = Vec::new();
        for (c, cluster) in clusters.iter().enumerate() {
            if cluster.codes.len() != cluster.ids.len() * stages {
                return Err(TdamError::InvalidConfig {
                    what: "corpus checkpoint shard codes disagree with its id list",
                });
            }
            encoding.validate(&cluster.codes)?;
            for (slot, &id) in cluster.ids.iter().enumerate() {
                locate_pairs.push((id, (c as u32, slot as u32)));
            }
        }
        locate_pairs.sort_unstable_by_key(|&(id, _)| id);
        let contiguous = locate_pairs
            .iter()
            .enumerate()
            .all(|(i, &(id, _))| id as usize == i);
        if !contiguous {
            return Err(TdamError::InvalidConfig {
                what: "corpus checkpoint ids are not a contiguous 0..n range",
            });
        }
        let locate: Vec<(u32, u32)> = locate_pairs.into_iter().map(|(_, at)| at).collect();
        encoding.validate(&centroids)?;
        let tdc = CounterTdc::matched(&timing)?;
        let centroid_packed = PackedArray::from_codes(encoding, stages, &timing, &tdc, &centroids);
        let centroid_scratch = centroid_packed.scratch();
        Ok(Self {
            cfg,
            encoding,
            stages,
            timing,
            tdc,
            centroids,
            centroid_packed,
            centroid_scratch,
            clusters,
            locate,
            resident: HashMap::new(),
            lru: Vec::new(),
            resident_bytes: 0,
            kernel_pin: None,
            stats,
            clock,
        })
    }
}

impl SimilarityEngine for CorpusEngine {
    fn name(&self) -> &str {
        "TD-AM two-tier corpus"
    }

    fn is_quantitative(&self) -> bool {
        true
    }

    fn rows(&self) -> usize {
        self.total_rows()
    }

    fn width(&self) -> usize {
        self.stages
    }

    fn bits_per_element(&self) -> u8 {
        self.encoding.bits()
    }

    /// `row < rows()` overwrites in place ([`CorpusEngine::update_row`]);
    /// `row == rows()` appends ([`CorpusEngine::append_row`]) — the
    /// streaming-ingest contract expressed through the shared trait.
    fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError> {
        if row < self.total_rows() {
            self.update_row(row, values)
        } else if row == self.total_rows() {
            self.append_row(values).map(|_| ())
        } else {
            Err(TdamError::RowOutOfBounds {
                row,
                rows: self.total_rows(),
            })
        }
    }

    /// Two-tier search through the trait: distances are exact for rows
    /// in probed shards and `None` for pruned rows (the honest answer —
    /// the pre-filter never looked at them). Energy and latency model
    /// the two sequential tiers: every scanned row's chain energy plus
    /// TDC conversions, and the worst chain delay of each tier added.
    fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        let probed = self.probe(query)?;
        let mut energy = 0.0f64;
        let mut tier_delay = 0.0f64;
        for c in 0..self.centroid_packed.rows() {
            let (e, o) = self.centroid_packed.counts(&self.centroid_scratch, 0, c);
            let (row, tdc_energy) = self.centroid_packed.digitize(e, o);
            energy += row.chain.energy.total() + tdc_energy;
            tier_delay = tier_delay.max(row.chain.total_delay);
        }
        let mut latency = tier_delay;
        let mut distances = vec![None; self.total_rows()];
        let mut best: Option<(usize, usize)> = None;
        let mut shard_delay = 0.0f64;
        for &c in &probed {
            self.ensure_resident(c);
            let len = self.clusters[c].len();
            let ent = self.resident.get_mut(&c).expect("shard just made resident");
            ent.packed.expand_query(query, &mut ent.scratch);
            ent.packed.mismatch_counts(&mut ent.scratch);
            for slot in 0..len {
                let (e, o) = ent.packed.counts(&ent.scratch, 0, slot);
                let (row, tdc_energy) = ent.packed.digitize(e, o);
                energy += row.chain.energy.total() + tdc_energy;
                shard_delay = shard_delay.max(row.chain.total_delay);
                let id = self.clusters[c].ids[slot] as usize;
                distances[id] = Some(row.decoded_mismatches);
                let cand = (row.decoded_mismatches, id);
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
        }
        latency += shard_delay;
        self.stats.queries += 1;
        self.stats.answered += 1;
        Ok(SearchMetrics {
            best_row: best.map(|(_, id)| id),
            distances,
            energy,
            latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clusterable corpus: `protos` prototype rows, each corpus row a
    /// prototype with per-element noise at `noise_pct` percent.
    fn clustered_corpus(
        cfg: &CorpusConfig,
        rows: usize,
        protos: usize,
        noise_pct: u64,
        seed: u64,
    ) -> Vec<Vec<u8>> {
        let stages = cfg.array.stages;
        let levels = cfg.array.encoding.levels() as u64;
        let prototypes: Vec<Vec<u8>> = (0..protos)
            .map(|p| {
                (0..stages)
                    .map(|j| {
                        (splitmix(seed ^ 0xB10C ^ ((p as u64) << 20 | j as u64)) % levels) as u8
                    })
                    .collect()
            })
            .collect();
        (0..rows)
            .map(|r| {
                let p = (splitmix(seed ^ 0x9A55 ^ r as u64) % protos as u64) as usize;
                prototypes[p]
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| {
                        let h = splitmix(seed ^ 0x0D15E ^ ((r as u64) << 12 | j as u64));
                        if h % 100 < noise_pct {
                            (h >> 8) as u8 % levels as u8
                        } else {
                            v
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn small_cfg() -> CorpusConfig {
        let mut cfg = CorpusConfig::paper_default();
        cfg.array = cfg.array.with_stages(16);
        cfg.shard_rows = 32;
        cfg.nprobe = 3;
        cfg.train_iters = 2;
        cfg.train_sample = 256;
        cfg.threads = Some(2);
        cfg
    }

    fn brute_topk(rows: &[Vec<u8>], enc: Encoding, q: &[u8], k: usize) -> Vec<(usize, usize)> {
        let mut all: Vec<(usize, usize)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (enc.hamming(q, r).unwrap(), i))
            .collect();
        all.sort_unstable();
        all.truncate(k);
        all
    }

    #[test]
    fn build_is_deterministic_and_balanced() {
        let cfg = small_cfg();
        let rows = clustered_corpus(&cfg, 300, 8, 10, 0xA);
        let build = |threads| {
            let mut c = cfg;
            c.threads = threads;
            let mut b = CorpusBuilder::new(c).unwrap();
            b.append_rows(&rows).unwrap();
            b.build().unwrap()
        };
        let a = build(Some(1));
        let b = build(Some(4));
        assert_eq!(a.centroids, b.centroids, "seeded build is thread-invariant");
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.shards(), 300usize.div_ceil(cfg.shard_rows));
        for c in 0..a.shards() {
            assert!(a.shard_len(c) <= cfg.shard_rows, "capacity respected");
        }
        let total: usize = (0..a.shards()).map(|c| a.shard_len(c)).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn self_queries_hit_exactly() {
        let mut cfg = small_cfg();
        // Probing every shard makes the two-tier search exhaustive, so a
        // stored row must come back at distance 0 regardless of where the
        // capacity-balanced placement spilled it.
        cfg.nprobe = 64;
        let rows = clustered_corpus(&cfg, 200, 6, 8, 0xB);
        let mut b = CorpusBuilder::new(cfg).unwrap();
        b.append_rows(&rows).unwrap();
        let mut eng = b.build().unwrap();
        for id in (0..200).step_by(17) {
            let top = eng.search_topk(&rows[id], 1).unwrap();
            // Distance 0, and the winner holds the query's exact codes
            // (a duplicate row at a lower id legitimately outranks `id`).
            assert_eq!(top[0].0, 0, "stored row found at distance 0");
            assert_eq!(eng.row_codes(top[0].1).unwrap(), &rows[id][..]);
        }
    }

    #[test]
    fn rerank_matches_brute_force_restricted_to_probed_shards() {
        let cfg = small_cfg();
        let rows = clustered_corpus(&cfg, 257, 5, 12, 0xC);
        let mut b = CorpusBuilder::new(cfg).unwrap();
        b.append_rows(&rows).unwrap();
        let mut eng = b.build().unwrap();
        let enc = cfg.array.encoding;
        for qi in 0..24usize {
            let q: Vec<u8> = (0..cfg.array.stages)
                .map(|j| (splitmix(0xD ^ ((qi as u64) << 8 | j as u64)) % 4) as u8)
                .collect();
            let (got, probed) = eng.search_topk_probed(&q, 10).unwrap();
            let mut restricted: Vec<usize> = probed
                .iter()
                .flat_map(|&c| eng.shard_ids(c).iter().map(|&id| id as usize))
                .collect();
            restricted.sort_unstable();
            let mut expect: Vec<(usize, usize)> = restricted
                .iter()
                .map(|&id| (enc.hamming(&q, &rows[id]).unwrap(), id))
                .collect();
            expect.sort_unstable();
            expect.truncate(10);
            assert_eq!(got, expect, "exact tie-broken equality on probed rows");
        }
    }

    #[test]
    fn append_and_update_stay_searchable() {
        let cfg = small_cfg();
        let rows = clustered_corpus(&cfg, 120, 4, 10, 0xE);
        let mut b = CorpusBuilder::new(cfg).unwrap();
        b.append_rows(&rows).unwrap();
        let mut eng = b.build().unwrap();
        // Warm every shard so appends exercise the surgical-repack path.
        for row in &rows {
            let _ = eng.search_topk(row, 1).unwrap();
        }
        let fresh: Vec<u8> = (0..16).map(|j| (j % 4) as u8).collect();
        let id = eng.append_row(&fresh).unwrap();
        assert_eq!(id, 120);
        assert_eq!(eng.search_topk(&fresh, 1).unwrap()[0], (0, 120));
        assert!(eng.stats().incremental_repacks > 0 || eng.stats().corpus_cache_misses > 0);
        // In-place update: the row answers at its new contents.
        let moved: Vec<u8> = (0..16).map(|j| (3 - j % 4) as u8).collect();
        eng.update_row(7, &moved).unwrap();
        assert_eq!(eng.row_codes(7).unwrap(), &moved[..]);
        let all_rows: usize = (0..eng.shards()).map(|c| eng.shard_len(c)).sum();
        assert_eq!(all_rows, 121);
    }

    #[test]
    fn lru_eviction_recompiles_bit_identically() {
        let mut cfg = small_cfg();
        // A budget fitting roughly one shard forces eviction churn.
        cfg.cache_budget_bytes = 1;
        let rows = clustered_corpus(&cfg, 160, 4, 10, 0xF);
        let mut b = CorpusBuilder::new(cfg).unwrap();
        b.append_rows(&rows).unwrap();
        let mut eng = b.build().unwrap();
        let q: Vec<u8> = (0..16).map(|j| ((j * 3) % 4) as u8).collect();
        let first = eng.search_topk(&q, 10).unwrap();
        let hits0 = eng.stats().corpus_cache_hits;
        // Re-ask after churning other shards through the cache.
        for id in (0..160).step_by(7) {
            let _ = eng.search_topk(&rows[id], 1).unwrap();
        }
        let again = eng.search_topk(&q, 10).unwrap();
        assert_eq!(first, again, "evicted shards recompile bit-identically");
        assert!(
            eng.stats().corpus_cache_evictions > 0,
            "budget forced evictions"
        );
        assert!(eng.resident_bytes > 0);
        assert!(
            eng.resident.len() <= 2,
            "tiny budget keeps at most the hot shard"
        );
        let _ = hits0;
    }

    #[test]
    fn recall_on_clustered_data() {
        let cfg = small_cfg();
        let rows = clustered_corpus(&cfg, 512, 8, 8, 0x1234);
        let mut b = CorpusBuilder::new(cfg).unwrap();
        b.append_rows(&rows).unwrap();
        let mut eng = b.build().unwrap();
        let enc = cfg.array.encoding;
        let (mut hit, mut want) = (0usize, 0usize);
        for qi in 0..32usize {
            // Queries are perturbed stored rows — the ANN workload shape.
            let base = &rows[(splitmix(0x77 ^ qi as u64) % 512) as usize];
            let q: Vec<u8> = base
                .iter()
                .enumerate()
                .map(|(j, &v)| {
                    let h = splitmix(0x88 ^ ((qi as u64) << 10 | j as u64));
                    if h % 100 < 6 {
                        (h >> 8) as u8 % 4
                    } else {
                        v
                    }
                })
                .collect();
            let got = eng.search_topk(&q, 10).unwrap();
            let truth = brute_topk(&rows, enc, &q, 10);
            let got_ids: std::collections::BTreeSet<usize> =
                got.iter().map(|&(_, id)| id).collect();
            for &(_, id) in &truth {
                want += 1;
                if got_ids.contains(&id) {
                    hit += 1;
                }
            }
        }
        let recall = hit as f64 / want as f64;
        assert!(recall >= 0.9, "CI-small recall {recall} too low");
    }

    #[test]
    fn similarity_engine_contract() {
        let cfg = small_cfg();
        let rows = clustered_corpus(&cfg, 96, 4, 10, 0x31);
        let mut b = CorpusBuilder::new(cfg).unwrap();
        b.append_rows(&rows).unwrap();
        let mut eng = b.build().unwrap();
        assert!(eng.is_quantitative());
        assert_eq!(eng.rows(), 96);
        assert_eq!(SimilarityEngine::width(&eng), 16);
        assert_eq!(eng.bits_per_element(), 2);
        let m = eng.search(&rows[5]).unwrap();
        assert_eq!(m.best_row, Some(5));
        assert_eq!(m.distances[5], Some(0));
        assert!(m.energy > 0.0 && m.latency > 0.0);
        // Trait store: in-place overwrite and tail append.
        let v: Vec<u8> = (0..16).map(|_| 1u8).collect();
        eng.store(5, &v).unwrap();
        eng.store(96, &v).unwrap();
        assert_eq!(eng.rows(), 97);
        assert!(eng.store(200, &v).is_err());
    }

    #[test]
    fn builder_and_config_validation() {
        let mut cfg = small_cfg();
        cfg.nprobe = 0;
        assert!(CorpusBuilder::new(cfg).is_err());
        let cfg = small_cfg();
        let mut b = CorpusBuilder::new(cfg).unwrap();
        assert!(b.is_empty());
        assert!(b.append_rows(&[vec![0u8; 3]]).is_err(), "wrong width");
        assert!(b.append_rows(&[vec![9u8; 16]]).is_err(), "bad code");
        assert!(b.append_flat(&[0u8; 17]).is_err(), "ragged slab");
        b.append_flat(&[0u8; 32]).unwrap();
        assert_eq!(b.rows(), 2);
        assert!(
            CorpusBuilder::new(small_cfg()).unwrap().build().is_err(),
            "empty corpus"
        );
    }

    #[test]
    fn checkpoint_parts_round_trip() {
        let cfg = small_cfg();
        let rows = clustered_corpus(&cfg, 130, 4, 10, 0x99);
        let mut b = CorpusBuilder::new(cfg).unwrap();
        b.append_rows(&rows).unwrap();
        let mut eng = b.build().unwrap();
        for id in (0..130).step_by(11) {
            let _ = eng.search_topk(&rows[id], 3).unwrap();
        }
        let (pcfg, timing, centroids, clusters, stats) = eng.persistent_parts();
        let mut restored = CorpusEngine::from_persistent_parts(
            *pcfg,
            *timing,
            centroids.to_vec(),
            clusters.to_vec(),
            *stats,
            Clock::wall(),
        )
        .unwrap();
        assert_eq!(restored.total_rows(), 130);
        assert_eq!(restored.stats().queries, eng.stats().queries);
        for qi in 0..8usize {
            let q: Vec<u8> = (0..16)
                .map(|j| (splitmix(0xAB ^ ((qi as u64) << 8 | j as u64)) % 4) as u8)
                .collect();
            assert_eq!(
                restored.search_topk(&q, 5).unwrap(),
                eng.search_topk(&q, 5).unwrap(),
                "restored engine answers bit-identically"
            );
        }
    }
}
