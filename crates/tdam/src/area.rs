//! Area model: cell, stage and array footprint estimates.
//!
//! Table I compares cell compositions (16T vs 4T-2FeFET, …); this module
//! turns those transistor counts into area figures using the standard
//! feature-size-squared (`F²`) methodology plus an explicit
//! metal-oxide-metal (MOM) capacitor term — in a variable-capacitance
//! design the load capacitors are a first-order area consumer that
//! transistor counts alone would hide.

use serde::{Deserialize, Serialize};

/// Area model constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Technology feature size, nanometres.
    pub feature_nm: f64,
    /// Area per logic transistor, in F² (layout including contacts).
    pub f2_per_transistor: f64,
    /// Area per FeFET, in F² (same footprint class as a logic device at
    /// these nodes).
    pub f2_per_fefet: f64,
    /// MOM capacitor density, farads per square micrometre.
    pub cap_density: f64,
    /// Wiring/pitch overhead multiplier on active area.
    pub wiring_overhead: f64,
}

impl AreaModel {
    /// A generic model at the given node (40 nm for the TD-AM).
    pub fn at_node(feature_nm: f64) -> Self {
        Self {
            feature_nm,
            f2_per_transistor: 150.0,
            f2_per_fefet: 160.0,
            cap_density: 2e-15 * 1e12, // 2 fF/µm² in F/m²
            wiring_overhead: 1.3,
        }
    }

    /// Square micrometres of one F².
    fn um2_per_f2(&self) -> f64 {
        let f_um = self.feature_nm * 1e-3;
        f_um * f_um
    }

    /// Area of `n` logic transistors, µm².
    pub fn transistors(&self, n: usize) -> f64 {
        n as f64 * self.f2_per_transistor * self.um2_per_f2() * self.wiring_overhead
    }

    /// Area of `n` FeFETs, µm².
    pub fn fefets(&self, n: usize) -> f64 {
        n as f64 * self.f2_per_fefet * self.um2_per_f2() * self.wiring_overhead
    }

    /// Area of a MOM capacitor of `farads`, µm².
    pub fn capacitor(&self, farads: f64) -> f64 {
        farads / (self.cap_density / 1e12)
    }
}

/// Per-stage area breakdown of the TD-AM, µm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageArea {
    /// The 2-FeFET IMC cell plus precharge PMOS.
    pub cell: f64,
    /// The inverter and the load-capacitor switch.
    pub logic: f64,
    /// The load capacitor itself.
    pub load_cap: f64,
}

impl StageArea {
    /// Computes the TD-AM stage footprint: 2 FeFETs + precharge PMOS +
    /// inverter (2T) + switch PMOS + `c_load`.
    pub fn tdam(model: &AreaModel, c_load: f64) -> Self {
        Self {
            cell: model.fefets(2) + model.transistors(1),
            logic: model.transistors(3),
            load_cap: model.capacitor(c_load),
        }
    }

    /// Total stage area, µm².
    pub fn total(&self) -> f64 {
        self.cell + self.logic + self.load_cap
    }

    /// Area per stored bit, µm²/bit.
    pub fn per_bit(&self, bits_per_cell: u8) -> f64 {
        self.total() / bits_per_cell as f64
    }
}

/// Array-level area, µm²: stages plus per-row TDC counters.
pub fn array_area(
    model: &AreaModel,
    rows: usize,
    stages: usize,
    c_load: f64,
    bits_per_cell: u8,
) -> f64 {
    let stage = StageArea::tdam(model, c_load);
    // An ~8-bit ripple counter per row: 8 flops ≈ 8 × 20 transistors.
    let tdc = model.transistors(160);
    let _ = bits_per_cell;
    rows as f64 * (stages as f64 * stage.total() + tdc)
}

/// Area-per-bit comparison against the Table I cell styles, µm²/bit, in
/// the order: 16T TCAM (45 nm), 2FeFET CAM (45 nm), 20T+4MUX TD stage
/// (28 nm), 3T-2FeFET binary TD (40 nm), this work (40 nm, 2-bit).
pub fn table1_area_per_bit(c_load: f64) -> Vec<(String, f64)> {
    let at45 = AreaModel::at_node(45.0);
    let at28 = AreaModel::at_node(28.0);
    let at40 = AreaModel::at_node(40.0);
    vec![
        ("16T TCAM".to_owned(), at45.transistors(16)),
        ("2FeFET TCAM".to_owned(), at45.fefets(2)),
        ("20T+4MUX TD stage".to_owned(), at28.transistors(20 + 4 * 4)),
        (
            "3T-2FeFET TD (binary)".to_owned(),
            at40.fefets(2) + at40.transistors(3) + at40.capacitor(c_load),
        ),
        (
            "This work (2-bit)".to_owned(),
            StageArea::tdam(&at40, c_load).per_bit(2),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_area_orders_of_magnitude() {
        let model = AreaModel::at_node(40.0);
        let stage = StageArea::tdam(&model, 6e-15);
        // 6 devices at ~0.3 µm² each plus a 3 µm² cap.
        assert!(stage.cell > 0.3 && stage.cell < 2.0, "cell {}", stage.cell);
        assert!(
            stage.load_cap > 2.0 && stage.load_cap < 4.0,
            "6 fF MOM cap ≈ 3 µm², got {}",
            stage.load_cap
        );
        assert!(stage.total() < 8.0);
    }

    #[test]
    fn load_cap_dominates_at_large_c() {
        let model = AreaModel::at_node(40.0);
        let big = StageArea::tdam(&model, 1280e-15);
        assert!(
            big.load_cap > 10.0 * (big.cell + big.logic),
            "1.28 pF cap must dominate the stage"
        );
    }

    #[test]
    fn multi_bit_halves_area_per_bit() {
        let model = AreaModel::at_node(40.0);
        let stage = StageArea::tdam(&model, 6e-15);
        assert!((stage.per_bit(2) - stage.total() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn array_area_scales_linearly() {
        let model = AreaModel::at_node(40.0);
        let a1 = array_area(&model, 16, 64, 6e-15, 2);
        let a2 = array_area(&model, 32, 64, 6e-15, 2);
        assert!((a2 / a1 - 2.0).abs() < 0.01);
    }

    #[test]
    fn table1_cells_ordered_sensibly() {
        let rows = table1_area_per_bit(6e-15);
        let get = |needle: &str| {
            rows.iter()
                .find(|(n, _)| n.contains(needle))
                .map(|(_, a)| *a)
                .unwrap_or_else(|| panic!("{needle} missing"))
        };
        // The 2FeFET CAM cell is the densest; the SRAM TD stage beats the
        // 16T TCAM only thanks to its smaller node; this work's per-bit
        // area beats the binary TD fabric (2 bits amortize the stage).
        assert!(get("2FeFET TCAM") < get("16T"));
        assert!(get("This work") < get("3T-2FeFET"));
    }
}
