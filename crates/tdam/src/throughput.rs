//! Search throughput: pipelined operation and queries-per-second.
//!
//! A single search cycles through precharge → search-line settle →
//! step I → step II → TDC latch. The phases use disjoint hardware
//! (precharge drivers vs. delay chain vs. counters), so consecutive
//! searches pipeline: while query *k*'s pulses are in flight, query
//! *k+1*'s match nodes can precharge. Throughput is then set by the
//! longest single phase rather than the cycle sum.

use crate::config::ArrayConfig;
use crate::timing::StageTiming;
use crate::TdamError;
use serde::{Deserialize, Serialize};

/// Cycle-time breakdown of one search, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Match-node precharge phase.
    pub precharge: f64,
    /// Search-line assertion and settle (pulse launch window).
    pub settle: f64,
    /// Worst-case step-I propagation.
    pub step_one: f64,
    /// Worst-case step-II propagation.
    pub step_two: f64,
    /// TDC latch (one reference period).
    pub tdc: f64,
}

impl CycleBreakdown {
    /// Unpipelined cycle time (sum of all phases), seconds.
    pub fn sequential(&self) -> f64 {
        self.precharge + self.settle + self.step_one + self.step_two + self.tdc
    }

    /// Pipelined initiation interval: the longest phase pair that shares
    /// hardware. The two propagation steps share the chain, so they stay
    /// serialized; precharge+settle of the next search overlaps them.
    pub fn pipelined(&self) -> f64 {
        (self.precharge + self.settle).max(self.step_one + self.step_two + self.tdc)
    }

    /// Searches per second, unpipelined.
    pub fn sequential_qps(&self) -> f64 {
        1.0 / self.sequential()
    }

    /// Searches per second with pipelining.
    pub fn pipelined_qps(&self) -> f64 {
        1.0 / self.pipelined()
    }

    /// Wall-clock time to drain a batch of `batch` queries through the
    /// pipelined array: the first query pays the full cycle, every
    /// subsequent query issues one initiation interval later. Zero for an
    /// empty batch.
    pub fn batch_latency(&self, batch: usize) -> f64 {
        if batch == 0 {
            0.0
        } else {
            self.sequential() + (batch - 1) as f64 * self.pipelined()
        }
    }

    /// Effective queries per second when serving batches of `batch`:
    /// approaches [`CycleBreakdown::pipelined_qps`] as the batch grows and
    /// degenerates to [`CycleBreakdown::sequential_qps`] at `batch = 1`.
    pub fn batch_qps(&self, batch: usize) -> f64 {
        if batch == 0 {
            0.0
        } else {
            batch as f64 / self.batch_latency(batch)
        }
    }
}

/// Computes the worst-case (all stages mismatched) cycle breakdown for an
/// array configuration.
///
/// # Errors
///
/// Returns [`TdamError::InvalidConfig`] for invalid configurations.
pub fn worst_case_cycle(config: &ArrayConfig) -> Result<CycleBreakdown, TdamError> {
    config.validate()?;
    let timing = StageTiming::analytic(&config.tech, config.c_load)?;
    let n = config.stages as f64;
    // Worst case: every active stage mismatches in its step.
    let even = (config.stages.div_ceil(2)) as f64;
    let odd = (config.stages / 2) as f64;
    Ok(CycleBreakdown {
        precharge: config.tech.t_precharge,
        settle: config.tech.t_launch,
        step_one: n * timing.d_inv + even * timing.d_c,
        step_two: n * timing.d_inv + odd * timing.d_c,
        tdc: timing.d_c,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(stages: usize) -> ArrayConfig {
        ArrayConfig::paper_default().with_stages(stages)
    }

    #[test]
    fn pipelining_never_slower() {
        for stages in [8usize, 32, 128] {
            let c = worst_case_cycle(&cfg(stages)).expect("cycle");
            assert!(c.pipelined() <= c.sequential());
            assert!(c.pipelined_qps() >= c.sequential_qps());
        }
    }

    #[test]
    fn short_chains_are_precharge_bound() {
        // An 4-stage chain propagates in ~100 ps; the 2 ns front end
        // dominates, so pipelining hides almost all of it.
        let c = worst_case_cycle(&cfg(4)).expect("cycle");
        assert!(
            (c.pipelined() - (c.precharge + c.settle)).abs() < 1e-15,
            "front-end bound: {:?}",
            c
        );
        // Speedup equals sequential/front-end; modest here because the
        // back end is tiny, but strictly positive.
        assert!(c.pipelined_qps() > c.sequential_qps());
    }

    #[test]
    fn long_chains_are_propagation_bound() {
        let c = worst_case_cycle(&cfg(128)).expect("cycle");
        assert!(
            c.pipelined() > c.precharge + c.settle,
            "128 stages of worst-case mismatch outlast the front end"
        );
    }

    #[test]
    fn steps_split_even_odd() {
        let c = worst_case_cycle(&cfg(9)).expect("cycle");
        // 9 stages: 5 even, 4 odd.
        assert!(c.step_one > c.step_two);
        let c = worst_case_cycle(&cfg(8)).expect("cycle");
        assert!((c.step_one - c.step_two).abs() < 1e-18);
    }

    #[test]
    fn qps_orders_of_magnitude() {
        // 32 stages at nominal supply: cycle ≈ 3-4 ns → ~300 MQPS
        // sequential; pipelined a bit better.
        let c = worst_case_cycle(&cfg(32)).expect("cycle");
        let qps = c.sequential_qps();
        assert!(
            (1e7..1e9).contains(&qps),
            "sequential QPS {qps:e} out of expected range"
        );
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(worst_case_cycle(&cfg(0)).is_err());
    }

    #[test]
    fn batch_amortizes_toward_pipelined_qps() {
        let c = worst_case_cycle(&cfg(32)).expect("cycle");
        assert_eq!(c.batch_latency(0), 0.0);
        assert_eq!(c.batch_qps(0), 0.0);
        assert!((c.batch_latency(1) - c.sequential()).abs() < 1e-18);
        assert!((c.batch_qps(1) - c.sequential_qps()).abs() < 1e-9 * c.sequential_qps());
        // Monotone in batch size, bounded by the pipelined rate.
        let mut prev = c.batch_qps(1);
        for b in [2usize, 8, 64, 4096] {
            let qps = c.batch_qps(b);
            assert!(qps > prev, "batching must not hurt: {b}");
            assert!(qps < c.pipelined_qps());
            prev = qps;
        }
        // Large batches come within 1% of the pipelined bound.
        assert!(c.batch_qps(10_000) > 0.99 * c.pipelined_qps());
    }
}
