//! Fault-tolerant serving runtime: deadlines, panic isolation, health
//! probes, and backend fallback chains.
//!
//! The batched serving surface of [`crate::engine`] is all-or-nothing: a
//! single poisoned query, a transient circuit-convergence failure, or a
//! compiled-LUT view gone stale after an in-place reprogram fails the
//! whole batch. This module keeps the array *answering*:
//!
//! 1. **Partial results** — [`ResilientEngine::serve`] returns a
//!    [`BatchOutcome`] with one [`QueryOutcome`] per slot (`Ok` /
//!    `TimedOut` / `Failed`), never failing sibling queries for one
//!    slot's problem. Per-batch deadlines ([`DeadlinePolicy`]) bound the
//!    work; expired slots come back `TimedOut` at their correct indices.
//! 2. **Panic isolation** — slots are fanned out through
//!    [`crate::parallel::run_chunked_partial`], which catches a panicking
//!    query in its own slot while siblings complete.
//! 3. **Health probes + circuit breaker** — between batches the engine
//!    replays the known-answer reference rows of
//!    [`crate::resilience::ResilientArray`]; consecutive misses trip a
//!    [`CircuitBreaker`] that demotes serving along the fallback chain
//!    compiled LUT → behavioral model → fault-masked degraded mode
//!    ([`BackendKind`]), runs detection + repair, and promotes back once
//!    the references answer again. Reprogramming bumps the array
//!    [generation](crate::array::TdamArray::generation), so stale
//!    compiled tables are invalidated and recompiled automatically
//!    instead of serving wrong bits.
//! 4. **Retry with backoff** — failed slots whose error classifies as
//!    [`ErrorClass::Transient`] (lost workers, stale compiles, circuit
//!    non-convergence) are retried a bounded number of times with
//!    exponential backoff; `Permanent` errors fail fast.
//!
//! [`Guarded`] provides the same slot-isolation contract for any
//! [`SimilarityEngine`] (including the Table I baselines), and
//! [`run_chaos`] drives a seeded chaos campaign — injected cell faults
//! plus injected worker panics — measuring availability. Campaigns are
//! bit-identical under a fixed seed when the deadline policy is
//! deterministic (anything but [`DeadlinePolicy::WallClock`]).
//!
//! # Examples
//!
//! ```
//! use tdam::config::ArrayConfig;
//! use tdam::resilience::ResilienceConfig;
//! use tdam::runtime::{ResilientEngine, RuntimeConfig};
//! use tdam::BatchQuery;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ArrayConfig::paper_default().with_stages(8).with_rows(2);
//! let mut engine =
//!     ResilientEngine::new(cfg, ResilienceConfig::default(), RuntimeConfig::default())?;
//! engine.store(0, &[0, 1, 2, 3, 3, 2, 1, 0])?;
//! engine.store(1, &[3, 3, 3, 3, 0, 0, 0, 0])?;
//! let mut batch = BatchQuery::new(8);
//! batch.push(&[0, 1, 2, 3, 3, 2, 1, 1])?;
//! let outcome = engine.serve(&batch)?;
//! assert_eq!(outcome.best_rows(), vec![Some(0)]);
//! assert!((outcome.availability() - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use crate::array::CompiledSnapshot;
use crate::clock::Clock;
use crate::config::ArrayConfig;
use crate::engine::{BatchQuery, SearchMetrics, SimilarityEngine};
use crate::parallel::{mix_seed, run_chunked_partial};
use crate::resilience::{
    DegradationLevel, ResilienceConfig, ResilientArray, ResilientOutcome, RowHealth, WearPolicy,
    WriteReport,
};
use crate::{ErrorClass, TdamError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How much work a batch may spend before remaining slots expire.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DeadlinePolicy {
    /// No deadline: every slot is served (the default).
    #[default]
    None,
    /// Wall-clock budget for the whole batch. Slots that have not
    /// *started* when the budget expires return [`QueryOutcome::TimedOut`].
    /// Inherently nondeterministic — use [`DeadlinePolicy::QueryBudget`]
    /// for reproducible campaigns.
    WallClock(Duration),
    /// Serve at most this many slots (in slot order), expiring the rest.
    /// A deterministic stand-in for a wall-clock budget: the expired set
    /// is a pure function of the batch, so tests can assert exact slot
    /// indices.
    QueryBudget(usize),
}

/// Bounded retry with exponential backoff for [`ErrorClass::Transient`]
/// failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Additional attempts after the first (0 disables retry).
    pub max_retries: usize,
    /// Backoff before the first retry; doubles per retry round.
    /// `Duration::ZERO` retries immediately (use in deterministic tests).
    pub backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(10),
        }
    }
}

impl RetryConfig {
    /// The backoff before retry round `round` (0-based), doubling each
    /// round and clamped to the cap.
    fn backoff_for(&self, round: usize) -> Duration {
        let factor = 1u32 << round.min(16) as u32;
        (self.backoff * factor).min(self.backoff_cap)
    }
}

/// Configuration of the serving runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Per-batch deadline budget.
    pub deadline: DeadlinePolicy,
    /// Transient-failure retry policy.
    pub retry: RetryConfig,
    /// Replay the known-answer reference probes every this many batches
    /// (1 = before every batch; 0 disables health monitoring).
    pub health_interval: usize,
    /// Consecutive health-probe misses before the breaker trips and a
    /// full detection + repair cycle runs (minimum 1).
    pub breaker_threshold: usize,
    /// Worker threads for the batch fan-out (`None` = all cores).
    pub threads: Option<usize>,
    /// Background retention scrub period on the engine's clock (`None`
    /// disables scrubbing). When due, a serve first runs
    /// [`crate::resilience::ResilientArray::scrub_margins`], healing
    /// margin-drifted rows before a decode flips. Clock-driven, so a
    /// simulated deployment scrubs on virtual time.
    pub scrub_interval: Option<Duration>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            deadline: DeadlinePolicy::None,
            retry: RetryConfig::default(),
            health_interval: 1,
            breaker_threshold: 1,
            threads: None,
            scrub_interval: None,
        }
    }
}

/// Which backend along the fallback chain answered a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// The compiled fast path ([`crate::array::CompiledSnapshot`]),
    /// served through the bit-sliced packed kernel ([`crate::packed`]):
    /// decisions (winners, decoded distances) exactly match the
    /// behavioral model; reconstructed delays carry the documented ulp
    /// bound.
    CompiledLut,
    /// The full behavioral model — serving while the breaker is open on
    /// the compiled path (health miss pending repair).
    Behavioral,
    /// Fault-masked degraded mode: repair left residual damage (masked
    /// columns, under-counting or dead rows), results are still ranked
    /// but flagged [`DegradationLevel::Degraded`].
    DegradedMasked,
}

/// The outcome of one query slot.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// The slot was answered.
    Ok(SearchMetrics),
    /// The slot expired under the batch's [`DeadlinePolicy`].
    TimedOut,
    /// The slot failed after exhausting its retries.
    Failed {
        /// The final error.
        error: TdamError,
        /// Its taxonomy class.
        class: ErrorClass,
    },
}

impl QueryOutcome {
    /// The answered metrics, if any.
    pub fn ok(&self) -> Option<&SearchMetrics> {
        match self {
            Self::Ok(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the slot was answered.
    pub fn is_ok(&self) -> bool {
        matches!(self, Self::Ok(_))
    }
}

/// Per-slot results of one served batch: the partial-result replacement
/// for the all-or-nothing `Result<BatchResult>` of
/// [`SimilarityEngine::search_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One outcome per query, in batch order.
    pub slots: Vec<QueryOutcome>,
    /// The backend that answered this batch.
    pub backend: BackendKind,
    /// The array's degradation level at serve time.
    pub degradation: DegradationLevel,
    /// Retry attempts spent on this batch (across all slots).
    pub retries: usize,
}

impl BatchOutcome {
    /// Fraction of slots answered (`Ok`); 1.0 for an empty batch.
    pub fn availability(&self) -> f64 {
        if self.slots.is_empty() {
            return 1.0;
        }
        self.answered() as f64 / self.slots.len() as f64
    }

    /// Number of answered slots.
    pub fn answered(&self) -> usize {
        self.slots.iter().filter(|s| s.is_ok()).count()
    }

    /// Number of expired slots.
    pub fn timed_out(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, QueryOutcome::TimedOut))
            .count()
    }

    /// Number of failed slots.
    pub fn failed(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, QueryOutcome::Failed { .. }))
            .count()
    }

    /// Per-slot best rows (`None` for unanswered slots or slots whose
    /// answer ranked no row).
    pub fn best_rows(&self) -> Vec<Option<usize>> {
        self.slots
            .iter()
            .map(|s| s.ok().and_then(|m| m.best_row))
            .collect()
    }
}

/// Counts consecutive health-probe misses; trips at the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitBreaker {
    pub(crate) misses: usize,
    pub(crate) threshold: usize,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive misses.
    pub fn new(threshold: usize) -> Self {
        Self {
            misses: 0,
            threshold: threshold.max(1),
        }
    }

    /// Records a passed probe, closing the breaker.
    pub fn record_success(&mut self) {
        self.misses = 0;
    }

    /// Records a missed probe; returns whether the breaker is now open.
    pub fn record_failure(&mut self) -> bool {
        self.misses += 1;
        self.is_open()
    }

    /// Whether the breaker has tripped.
    pub fn is_open(&self) -> bool {
        self.misses >= self.threshold
    }
}

/// Serving statistics accumulated across batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Batches served.
    pub batches: usize,
    /// Query slots seen.
    pub queries: usize,
    /// Slots answered.
    pub answered: usize,
    /// Slots expired by a deadline.
    pub timed_out: usize,
    /// Slots failed after retries.
    pub failed: usize,
    /// Retry attempts spent.
    pub retries: usize,
    /// Backoff sleeps actually taken between retry rounds (zero-backoff
    /// deterministic configs retry without sleeping and don't count).
    pub backoff_waits: usize,
    /// Circuit-breaker trips: health-miss streaks that reached the
    /// breaker threshold and forced a detection + repair cycle.
    pub breaker_trips: usize,
    /// Compiled snapshots rebuilt after invalidation.
    pub recompiles: usize,
    /// Health probes run.
    pub health_checks: usize,
    /// Health probes missed.
    pub health_misses: usize,
    /// Full detection + repair cycles run.
    pub repairs: usize,
    /// Backend demotions along the fallback chain.
    pub demotions: usize,
    /// Backend promotions back toward the compiled path.
    pub promotions: usize,
    /// Logical row writes accepted through the tracked write path
    /// ([`ResilientEngine::store`]).
    pub user_writes: usize,
    /// Physical row programs those writes cost: the target row plus any
    /// wear-triggered refresh-rewrites. `physical_writes / user_writes`
    /// is the write amplification.
    pub physical_writes: usize,
    /// Hot logical rows rotated onto a fresh physical row by the wear
    /// leveler before their program-cycle budget was exhausted.
    pub wear_rotations: usize,
    /// Sibling rows refresh-rewritten after their accumulated program
    /// disturb crossed the policy budget.
    pub refresh_rewrites: usize,
    /// Stale snapshots refreshed surgically (per-row repack of only the
    /// dirty rows) instead of recompiled from scratch.
    pub incremental_repacks: usize,
    /// Rows repacked across all incremental refreshes.
    pub rows_repacked: usize,
    /// Snapshot publications through the epoch holder — full compiles,
    /// incremental refreshes, and standby adoptions alike.
    pub epoch_swaps: usize,
    /// Background retention-scrub passes run (clock-driven ticks).
    pub scrub_ticks: usize,
    /// Live rows margin-probed across all scrub passes.
    pub scrub_probes: usize,
    /// Margin-drifted rows healed by a scrub's refresh rewrite before
    /// their decode flipped.
    pub scrub_heals: usize,
    /// Corpus-tier shard-snapshot cache hits (probe found the shard
    /// already resident).
    pub corpus_cache_hits: usize,
    /// Corpus-tier shard-snapshot cache misses (probe had to compile
    /// the shard's packed snapshot).
    pub corpus_cache_misses: usize,
    /// Corpus-tier shard snapshots evicted to stay under the
    /// resident-byte budget.
    pub corpus_cache_evictions: usize,
    /// Cumulative microseconds spent compiling corpus-tier shard
    /// snapshots on cache misses.
    pub corpus_compile_micros: usize,
}

/// Deterministic fault/panic injection for chaos testing: whether a slot
/// panics is a pure function of `(seed, batch, slot, attempt)`, so a
/// campaign replays bit-identically and a retried slot can succeed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosInjection {
    /// Injection stream seed.
    pub seed: u64,
    /// Per-(slot, attempt) panic probability in `[0, 1]`.
    pub panic_rate: f64,
}

impl ChaosInjection {
    /// Whether the given slot's attempt should panic.
    pub fn should_panic(&self, batch: u64, slot: u64, attempt: u64) -> bool {
        if self.panic_rate <= 0.0 {
            return false;
        }
        let h = mix_seed(mix_seed(self.seed, batch), mix_seed(slot, attempt));
        (h as f64 / u64::MAX as f64) < self.panic_rate
    }
}

/// Epoch-swapped snapshot holder: an atomically swappable
/// [`CompiledSnapshot`] with per-epoch refcounting through [`Arc`].
///
/// A batch *pins* the current epoch by cloning the `Arc` out of the
/// holder ([`EpochSnapshots::acquire`]) and serves every slot — retries
/// included — against that frozen snapshot via
/// [`CompiledSnapshot::search_packed_unchecked`]. Publishing a successor
/// ([`EpochSnapshots::publish`]) swaps the holder's pointer and bumps
/// the epoch counter; in-flight batches keep the previous epoch alive
/// through their own handles and drain it when the last handle drops.
/// A reprogram landing mid-batch can therefore neither tear a read nor
/// fail slots with [`TdamError::StaleCompile`] — the batch answers on
/// the epoch it started on, and the *next* batch sees the new one.
#[derive(Debug, Default)]
pub struct EpochSnapshots {
    current: RwLock<Option<Arc<CompiledSnapshot>>>,
    epoch: AtomicU64,
}

impl EpochSnapshots {
    /// An empty holder: epoch 0, nothing published.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current epoch number — how many snapshots have been
    /// published through this holder.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Pins the current epoch: clones the published snapshot handle
    /// (`None` when nothing has been published yet). The snapshot stays
    /// alive — its epoch undrained — until the handle drops.
    pub fn acquire(&self) -> Option<Arc<CompiledSnapshot>> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Publishes `snap` as the new current epoch and returns the new
    /// epoch number. Handles pinning the previous epoch are unaffected;
    /// they drain as they drop.
    pub fn publish(&self, snap: Arc<CompiledSnapshot>) -> u64 {
        let mut cur = self.current.write().unwrap_or_else(|e| e.into_inner());
        *cur = Some(snap);
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Unpublishes and returns the current snapshot for surgical reuse:
    /// the caller refreshes only the dirty rows (cloning first when
    /// in-flight readers still pin it) and republishes.
    pub(crate) fn take(&self) -> Option<Arc<CompiledSnapshot>> {
        self.current
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    /// How many in-flight handles pin the *current* epoch beyond the
    /// holder's own. Drained previous epochs are invisible here — their
    /// memory was reclaimed when their last handle dropped.
    pub fn in_flight(&self) -> usize {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map_or(0, |a| Arc::strong_count(a) - 1)
    }
}

/// The fault-tolerant serving engine: a [`ResilientArray`] wrapped with
/// compiled-LUT serving, health monitoring, a circuit breaker over the
/// backend fallback chain, per-batch deadlines, slot-isolated panics,
/// and bounded transient retry.
///
/// On a healthy backend, served results are **bit-identical** to
/// [`ResilientArray::search`] on the bare array (see `tests/chaos.rs`).
#[derive(Debug)]
pub struct ResilientEngine {
    pub(crate) array: ResilientArray,
    pub(crate) cfg: RuntimeConfig,
    pub(crate) epochs: Arc<EpochSnapshots>,
    /// Physical rows whose contents changed since the published
    /// snapshot was last synced. `Some(set)` means every content change
    /// went through the tracked write path and the next refresh can be
    /// surgical; `None` means untracked mutations may have happened
    /// (direct array access, repair) and the next refresh must be a
    /// full recompile.
    pub(crate) dirty: Option<BTreeSet<usize>>,
    pub(crate) backend: BackendKind,
    pub(crate) breaker: CircuitBreaker,
    pub(crate) batches_since_check: usize,
    pub(crate) chaos: Option<ChaosInjection>,
    pub(crate) stats: RuntimeStats,
    /// Time source for deadlines, backoff waits, and scrub scheduling:
    /// the wall clock in production, a [`crate::clock::SimClock`] under
    /// deterministic simulation.
    pub(crate) clock: Clock,
    /// Virtual/wall instant of the last retention scrub (`None` until
    /// the first serve on a scrub-enabled config).
    pub(crate) last_scrub: Option<crate::clock::Timestamp>,
}

impl ResilientEngine {
    /// Builds the runtime over a fresh resilient array.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from [`ResilientArray::new`].
    pub fn new(
        data: ArrayConfig,
        resilience: ResilienceConfig,
        cfg: RuntimeConfig,
    ) -> Result<Self, TdamError> {
        Ok(Self::wrap(ResilientArray::new(data, resilience)?, cfg))
    }

    /// Wraps an existing (possibly already-populated) resilient array.
    pub fn wrap(array: ResilientArray, cfg: RuntimeConfig) -> Self {
        let breaker = CircuitBreaker::new(cfg.breaker_threshold);
        Self {
            array,
            cfg,
            epochs: Arc::new(EpochSnapshots::new()),
            dirty: None,
            backend: BackendKind::CompiledLut,
            breaker,
            batches_since_check: 0,
            chaos: None,
            stats: RuntimeStats::default(),
            clock: Clock::default(),
            last_scrub: None,
        }
    }

    /// Enables deterministic panic injection (chaos testing).
    pub fn with_chaos(mut self, chaos: ChaosInjection) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Replaces the time source (a [`crate::clock::SimClock`] handle
    /// puts every deadline, backoff wait, and scrub tick on virtual
    /// time).
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// The engine's time source.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The wrapped array.
    pub fn array(&self) -> &ResilientArray {
        &self.array
    }

    /// Mutable access to the wrapped array, e.g. for fault injection.
    /// Content mutations bump the array generation, so any held compiled
    /// snapshot is invalidated and rebuilt on the next serve. Because
    /// the engine cannot see *which* rows the caller touches, this also
    /// voids the surgical-refresh bookkeeping: the next refresh is a
    /// full recompile, never a partial patch over unknown changes.
    pub fn array_mut(&mut self) -> &mut ResilientArray {
        self.dirty = None;
        &mut self.array
    }

    /// The backend currently serving.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The epoch-swapped snapshot holder this engine publishes through.
    pub fn epochs(&self) -> &EpochSnapshots {
        &self.epochs
    }

    /// A shared handle to the epoch holder. Standby promotion publishes
    /// the successor's snapshot through the *predecessor's* holder so
    /// traffic swaps over exactly like any other epoch swap: in-flight
    /// batches drain on the predecessor's snapshot.
    pub fn epoch_handle(&self) -> Arc<EpochSnapshots> {
        Arc::clone(&self.epochs)
    }

    /// The currently published compiled snapshot, if any.
    pub fn snapshot(&self) -> Option<Arc<CompiledSnapshot>> {
        self.epochs.acquire()
    }

    /// Serving statistics so far.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// The runtime configuration this engine serves under.
    pub fn runtime_config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Stores a vector at a logical row through the tracked,
    /// wear-leveled write path.
    ///
    /// The write is leveled by [`ResilientArray::store`] — hot rows
    /// rotate onto spares, disturb-exhausted siblings are
    /// refresh-rewritten — and every physical row it touched lands in
    /// the dirty set, so the next [`ResilientEngine::serve`] refreshes
    /// the compiled snapshot surgically (O(rows touched), not O(array))
    /// and publishes it as a new epoch.
    ///
    /// # Errors
    ///
    /// As [`ResilientArray::store`].
    pub fn store(&mut self, row: usize, values: &[u8]) -> Result<WriteReport, TdamError> {
        let report = self.array.store(row, values)?;
        self.stats.user_writes += 1;
        self.stats.physical_writes += report.physical_writes();
        if report.rotated {
            self.stats.wear_rotations += 1;
        }
        self.stats.refresh_rewrites += report.refreshed.len();
        if let Some(dirty) = self.dirty.as_mut() {
            dirty.insert(report.physical);
            dirty.extend(report.refreshed.iter().copied());
        }
        Ok(report)
    }

    /// Adopts a predecessor's epoch holder (standby promotion): this
    /// engine's current snapshot, if any, is published through the
    /// adopted holder, so traffic swaps from the predecessor to this
    /// engine exactly like any other epoch swap — in-flight batches
    /// drain on the predecessor's pinned snapshot.
    pub(crate) fn adopt_epochs(&mut self, epochs: Arc<EpochSnapshots>) {
        if let Some(snap) = self.epochs.take() {
            epochs.publish(snap);
            self.stats.epoch_swaps += 1;
        }
        self.epochs = epochs;
    }

    /// Ensures the published snapshot matches the array's current
    /// generation. A stale snapshot whose staleness is fully accounted
    /// for by tracked row writes is refreshed surgically: the published
    /// `Arc` is taken back (clone-on-write when in-flight batches still
    /// pin it) and only the dirty rows are repacked. Anything else —
    /// no snapshot yet, or untracked mutations — recompiles from
    /// scratch. Either way the result is published as a new epoch;
    /// in-flight batches drain on the old one.
    fn ensure_snapshot(&mut self) {
        if self
            .epochs
            .acquire()
            .is_some_and(|s| s.is_fresh(self.array.array()))
        {
            return;
        }
        let previous = self.epochs.take();
        let had_snapshot = previous.is_some();
        let next = match (previous, self.dirty.take()) {
            (Some(arc), Some(rows)) if !rows.is_empty() => {
                let mut snap = Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone());
                let repacked = snap.refresh_rows(self.array.array(), rows.iter().copied());
                self.stats.incremental_repacks += 1;
                self.stats.rows_repacked += repacked;
                snap
            }
            _ => self.array.array().compile_snapshot(),
        };
        if had_snapshot {
            self.stats.recompiles += 1;
        }
        self.epochs.publish(Arc::new(next));
        self.stats.epoch_swaps += 1;
        self.dirty = Some(BTreeSet::new());
    }

    /// Whether a detection report carries anything *new*: suspects that
    /// are not already tolerated as [`RowHealth::Degraded`] /
    /// [`RowHealth::Dead`] (those are permanently flagged in every served
    /// outcome's degradation summary — re-repairing them every probe
    /// would burn write endurance for nothing).
    fn has_new_damage(&self, report: &crate::resilience::DetectionReport) -> bool {
        if !report.reference_ok || !report.suspect_stages.is_empty() {
            return true;
        }
        report.suspect_rows.iter().any(|&r| {
            !matches!(
                self.array.health()[r],
                RowHealth::Degraded | RowHealth::Dead
            )
        })
    }

    /// Runs the periodic health probe and drives the breaker / fallback
    /// chain: the known-answer probes (reference rows first, then every
    /// data row) are replayed; new damage demotes to the behavioral
    /// backend, and an open breaker runs full detection + repair and
    /// promotes back — to the compiled path, or to fault-masked degraded
    /// mode when damage remains.
    fn health_check(&mut self) -> Result<(), TdamError> {
        self.stats.health_checks += 1;
        let report = self.array.check()?;
        if !self.has_new_damage(&report) {
            self.breaker.record_success();
            self.promote();
            return Ok(());
        }
        self.stats.health_misses += 1;
        if self.backend == BackendKind::CompiledLut {
            // Never keep serving the fast path past a probe miss: the
            // same physics backs the LUTs.
            self.backend = BackendKind::Behavioral;
            self.stats.demotions += 1;
        }
        if self.breaker.record_failure() {
            self.stats.breaker_trips += 1;
            self.array.repair(&report)?;
            // Repair rewrites rows outside the tracked write path —
            // the next snapshot refresh must be a full recompile.
            self.dirty = None;
            self.stats.repairs += 1;
            let after = self.array.check()?;
            if !self.has_new_damage(&after) {
                self.breaker.record_success();
                self.promote();
            } else {
                // Repair could not restore the probes; serve whatever
                // still answers, flagged as degraded.
                if self.backend != BackendKind::DegradedMasked {
                    self.backend = BackendKind::DegradedMasked;
                    self.stats.demotions += 1;
                }
            }
        }
        Ok(())
    }

    /// Runs the clock-driven background retention scrub when due: a
    /// margin probe-and-refresh pass that heals drifted rows before
    /// they flip a decode. The first serve arms the timer; each
    /// subsequent serve compares the clock against the configured
    /// period, so on a [`crate::clock::SimClock`] the scrub cadence is
    /// part of the deterministic simulation state.
    fn maybe_scrub(&mut self) -> Result<(), TdamError> {
        let Some(interval) = self.cfg.scrub_interval else {
            return Ok(());
        };
        let now = self.clock.now();
        match self.last_scrub {
            None => {
                self.last_scrub = Some(now);
                Ok(())
            }
            Some(last) if now.saturating_duration_since(last) >= interval => {
                self.last_scrub = Some(now);
                self.scrub_now()
            }
            Some(_) => Ok(()),
        }
    }

    /// Runs one retention-scrub pass immediately (the periodic tick
    /// calls this when due; tests and the simulator may force it).
    ///
    /// # Errors
    ///
    /// Propagates probe/search failures from the scrub pass.
    pub fn scrub_now(&mut self) -> Result<(), TdamError> {
        let report = self.array.scrub_margins()?;
        self.stats.scrub_ticks += 1;
        self.stats.scrub_probes += report.probed;
        self.stats.scrub_heals += report.healed.len();
        self.stats.physical_writes += report.healed.len();
        if !report.healed.is_empty() {
            // The scrub rewrote exactly these physical rows: keep the
            // snapshot refresh surgical instead of voiding tracking.
            if let Some(dirty) = self.dirty.as_mut() {
                dirty.extend(report.healed.iter().copied());
            }
        }
        Ok(())
    }

    /// Moves the backend back up the chain after a passed health probe.
    fn promote(&mut self) {
        let target = if self.array.degradation().level == DegradationLevel::Degraded {
            BackendKind::DegradedMasked
        } else {
            BackendKind::CompiledLut
        };
        if self.backend != target {
            // Any move that reaches the compiled path is a promotion;
            // CompiledLut → DegradedMasked (references pass but damage
            // remains, e.g. masked columns) is a demotion.
            if target == BackendKind::CompiledLut {
                self.stats.promotions += 1;
            } else {
                self.stats.demotions += 1;
            }
            self.backend = target;
        }
    }

    /// Serves one slot once (no retry): the chaos hook may panic here —
    /// isolated by the caller's `run_chunked_partial` — then the query
    /// runs through the current backend.
    fn serve_slot(
        &self,
        snapshot: Option<&CompiledSnapshot>,
        batch: &BatchQuery,
        slot: usize,
        attempt: usize,
    ) -> Result<ResilientOutcome, TdamError> {
        if let Some(chaos) = &self.chaos {
            if chaos.should_panic(self.stats.batches as u64, slot as u64, attempt as u64) {
                panic!("chaos: injected worker panic");
            }
        }
        let query = batch.get(slot);
        match (self.backend, snapshot) {
            (BackendKind::CompiledLut, Some(snap)) => {
                // Packed bit-sliced kernel on the epoch-pinned snapshot:
                // winners and decoded distances are exactly those of the
                // behavioral model (the health probes and the chaos
                // judge compare decisions), delays carry the packed
                // reconstruction contract. Serving is *unchecked*
                // against the live generation: the batch answers on the
                // epoch it pinned at entry, so a reprogram landing
                // mid-batch cannot fail slots with a StaleCompile.
                let out = snap.search_packed_unchecked(query)?;
                Ok(self.array.resolve_outcome(&out))
            }
            _ => self.array.search(query),
        }
    }

    /// Answers a batch with per-slot outcomes: runs the health probe if
    /// due, revalidates/rebuilds the compiled snapshot, fans the slots
    /// out with panic isolation, applies the deadline policy, and retries
    /// transient per-slot failures with bounded backoff.
    ///
    /// # Errors
    ///
    /// Only batch-level problems fail the call: a batch whose width does
    /// not match the array ([`TdamError::LengthMismatch`]), or an error
    /// inside the health/repair machinery itself. Per-query problems
    /// always come back as slots.
    pub fn serve(&mut self, batch: &BatchQuery) -> Result<BatchOutcome, TdamError> {
        if batch.width() != self.array.width() {
            return Err(TdamError::LengthMismatch {
                got: batch.width(),
                expected: self.array.width(),
            });
        }
        self.maybe_scrub()?;
        if self.cfg.health_interval > 0 {
            self.batches_since_check += 1;
            if self.batches_since_check >= self.cfg.health_interval {
                self.batches_since_check = 0;
                self.health_check()?;
            }
        }
        if self.backend == BackendKind::CompiledLut {
            self.ensure_snapshot();
        }
        // Pin the current epoch for the whole batch (retries included):
        // slots never observe a snapshot swap mid-flight.
        let mut pinned = match self.backend {
            BackendKind::CompiledLut => self.epochs.acquire(),
            _ => None,
        };

        let n = batch.len();
        let started = self.clock.now();
        let mut slots: Vec<Option<QueryOutcome>> = vec![None; n];
        let mut retries = 0usize;

        // Deadline: decide which slots run at all (QueryBudget), or set
        // the wall-clock horizon checked before each slot starts.
        let budget = match self.cfg.deadline {
            DeadlinePolicy::QueryBudget(q) => q.min(n),
            _ => n,
        };
        for slot in slots.iter_mut().skip(budget) {
            *slot = Some(QueryOutcome::TimedOut);
        }
        let horizon = match self.cfg.deadline {
            DeadlinePolicy::WallClock(d) => Some(d),
            _ => None,
        };

        let mut pending: Vec<usize> = (0..budget).collect();
        let mut attempt = 0usize;
        while !pending.is_empty() {
            let this = &*self;
            let snap = pinned.as_deref();
            let outcomes =
                run_chunked_partial::<_, TdamError, _>(pending.len(), self.cfg.threads, |k| {
                    if let Some(d) = horizon {
                        if this.clock.elapsed(started) >= d {
                            return Ok(None);
                        }
                    }
                    this.serve_slot(snap, batch, pending[k], attempt).map(Some)
                });
            let mut next = Vec::new();
            let mut saw_stale = false;
            for (k, outcome) in outcomes.into_iter().enumerate() {
                let slot = pending[k];
                slots[slot] = Some(match outcome {
                    Ok(Some(out)) => QueryOutcome::Ok(out.metrics()),
                    Ok(None) => QueryOutcome::TimedOut,
                    Err(e) if e.is_transient() && attempt < self.cfg.retry.max_retries => {
                        saw_stale |= matches!(e, TdamError::StaleCompile { .. });
                        next.push(slot);
                        retries += 1;
                        continue;
                    }
                    Err(e) => QueryOutcome::Failed {
                        class: e.class(),
                        error: e,
                    },
                });
            }
            if next.is_empty() {
                break;
            }
            // A StaleCompile is transient *and actionable*: re-sync the
            // snapshot and re-pin before retrying, otherwise every
            // retry round would replay the same stale epoch and exhaust
            // its budget for nothing.
            if saw_stale {
                self.ensure_snapshot();
                pinned = match self.backend {
                    BackendKind::CompiledLut => self.epochs.acquire(),
                    _ => None,
                };
            }
            let backoff = self.cfg.retry.backoff_for(attempt);
            if !backoff.is_zero() {
                self.stats.backoff_waits += 1;
                self.clock.sleep(backoff);
            }
            pending = next;
            attempt += 1;
        }

        let slots: Vec<QueryOutcome> = slots
            .into_iter()
            .map(|s| {
                s.unwrap_or(QueryOutcome::Failed {
                    error: TdamError::Worker,
                    class: ErrorClass::Transient,
                })
            })
            .collect();
        let outcome = BatchOutcome {
            degradation: self.array.degradation().level,
            backend: self.backend,
            retries,
            slots,
        };
        self.stats.batches += 1;
        self.stats.queries += n;
        self.stats.answered += outcome.answered();
        self.stats.timed_out += outcome.timed_out();
        self.stats.failed += outcome.failed();
        self.stats.retries += retries;
        Ok(outcome)
    }
}

impl SimilarityEngine for ResilientEngine {
    fn name(&self) -> &str {
        "Resilient TD-AM serving runtime"
    }

    fn is_quantitative(&self) -> bool {
        true
    }

    fn rows(&self) -> usize {
        self.array.data_rows()
    }

    fn width(&self) -> usize {
        SimilarityEngine::width(&self.array)
    }

    fn bits_per_element(&self) -> u8 {
        self.array.bits_per_element()
    }

    fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError> {
        ResilientEngine::store(self, row, values).map(|_| ())
    }

    fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        // Singles route through the same epoch holder as batches (so a
        // [`Guarded`]-wrapped engine also serves epoch-pinned off the
        // compiled path), with the behavioral model as the fallback
        // whenever the backend is demoted.
        if self.backend == BackendKind::CompiledLut {
            self.ensure_snapshot();
            if let Some(snap) = self.epochs.acquire() {
                let out = snap.search_packed_unchecked(query)?;
                return Ok(self.array.resolve_outcome(&out).metrics());
            }
        }
        Ok(ResilientArray::search(&self.array, query)?.metrics())
    }
}

/// Slot isolation, deadlines, and transient retry for **any**
/// [`SimilarityEngine`] — the trait-level counterpart of
/// [`ResilientEngine`] used for the Table I baselines, which have no
/// compiled path or reference rows to monitor.
///
/// Queries run sequentially (the trait's `search` takes `&mut self`),
/// each wrapped in `catch_unwind` so a panicking query yields a
/// [`QueryOutcome::Failed`] slot instead of unwinding out of the batch.
/// A panicked engine is assumed to remain structurally usable (its state
/// is plain data, not lock-guarded); the panic is still surfaced in the
/// slot.
#[derive(Debug)]
pub struct Guarded<E> {
    engine: E,
    cfg: RuntimeConfig,
    clock: Clock,
}

impl<E: SimilarityEngine> Guarded<E> {
    /// Wraps an engine.
    pub fn new(engine: E, cfg: RuntimeConfig) -> Self {
        Self {
            engine,
            cfg,
            clock: Clock::default(),
        }
    }

    /// Replaces the time source for deadlines and backoff waits.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the wrapped engine.
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Unwraps the engine.
    pub fn into_inner(self) -> E {
        self.engine
    }

    /// Answers a batch with per-slot outcomes under the deadline and
    /// retry policy. Never fails the batch: malformed queries surface as
    /// [`QueryOutcome::Failed`] slots with [`ErrorClass::Permanent`].
    pub fn serve(&mut self, batch: &BatchQuery) -> BatchOutcome {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let n = batch.len();
        let started = self.clock.now();
        let budget = match self.cfg.deadline {
            DeadlinePolicy::QueryBudget(q) => q.min(n),
            _ => n,
        };
        let mut retries = 0usize;
        let mut slots = Vec::with_capacity(n);
        for slot in 0..n {
            if slot >= budget {
                slots.push(QueryOutcome::TimedOut);
                continue;
            }
            if let DeadlinePolicy::WallClock(d) = self.cfg.deadline {
                if self.clock.elapsed(started) >= d {
                    slots.push(QueryOutcome::TimedOut);
                    continue;
                }
            }
            let mut attempt = 0usize;
            let outcome = loop {
                let engine = &mut self.engine;
                let query = batch.get(slot);
                let result = catch_unwind(AssertUnwindSafe(|| engine.search(query)))
                    .unwrap_or(Err(TdamError::Worker));
                match result {
                    Ok(m) => break QueryOutcome::Ok(m),
                    Err(e) if e.is_transient() && attempt < self.cfg.retry.max_retries => {
                        retries += 1;
                        let backoff = self.cfg.retry.backoff_for(attempt);
                        if !backoff.is_zero() {
                            self.clock.sleep(backoff);
                        }
                        attempt += 1;
                    }
                    Err(e) => {
                        break QueryOutcome::Failed {
                            class: e.class(),
                            error: e,
                        }
                    }
                }
            };
            slots.push(outcome);
        }
        BatchOutcome {
            slots,
            backend: BackendKind::Behavioral,
            degradation: DegradationLevel::Nominal,
            retries,
        }
    }
}

/// Configuration of a seeded chaos campaign ([`run_chaos`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Geometry of the *data* array (rows = logical data rows).
    pub array: ArrayConfig,
    /// Resilience machinery wrapped around it.
    pub resilience: ResilienceConfig,
    /// Serving runtime configuration. For bit-identical replay the
    /// deadline must not be [`DeadlinePolicy::WallClock`] and the retry
    /// backoff should be zero.
    pub runtime: RuntimeConfig,
    /// Batches to serve.
    pub batches: usize,
    /// Queries per batch.
    pub batch_size: usize,
    /// Target cumulative fraction of cells hit by a persistent fault over
    /// the whole campaign (spread uniformly across batches).
    pub fault_rate: f64,
    /// Per-(slot, attempt) injected worker-panic probability.
    pub panic_rate: f64,
    /// Campaign seed.
    pub seed: u64,
}

impl ChaosConfig {
    /// The chaos campaign of the acceptance criteria: 1% cell faults plus
    /// injected worker panics over a 16-row, 32-stage array.
    pub fn paper_default() -> Self {
        Self {
            array: ArrayConfig::paper_default().with_stages(32).with_rows(16),
            resilience: ResilienceConfig {
                spare_rows: 8,
                ..ResilienceConfig::default()
            },
            runtime: RuntimeConfig {
                retry: RetryConfig {
                    max_retries: 3,
                    backoff: Duration::ZERO,
                    backoff_cap: Duration::ZERO,
                },
                ..RuntimeConfig::default()
            },
            batches: 24,
            batch_size: 32,
            fault_rate: 0.01,
            panic_rate: 0.02,
            seed: 0xC4A0_2024,
        }
    }
}

/// Results of a chaos campaign. Integer-only accounting, so equality is
/// exact: two runs with the same seed must compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Query slots served across the campaign.
    pub total_queries: usize,
    /// Slots answered (possibly degraded).
    pub answered: usize,
    /// Slots expired by deadlines.
    pub timed_out: usize,
    /// Slots failed after retries.
    pub failed: usize,
    /// Answered slots whose best row was not a true nearest row.
    pub wrong: usize,
    /// Wrong answers delivered while the outcome claimed
    /// [`DegradationLevel::Nominal`] — the forbidden case.
    pub silent_wrong: usize,
    /// Answered slots flagged with any non-nominal degradation.
    pub degraded_answers: usize,
    /// Persistent cell faults injected.
    pub faults_injected: usize,
    /// Backend of the final batch.
    pub final_backend: BackendKind,
    /// Degradation level after the final batch.
    pub final_degradation: DegradationLevel,
    /// Runtime statistics.
    pub stats: RuntimeStats,
}

impl ChaosReport {
    /// Fraction of slots answered.
    pub fn availability(&self) -> f64 {
        if self.total_queries == 0 {
            return 1.0;
        }
        self.answered as f64 / self.total_queries as f64
    }
}

/// Runs a seeded chaos campaign: random data rows, exact-match queries,
/// persistent cell faults drip-fed across batches at `fault_rate`
/// cumulative coverage, and injected worker panics at `panic_rate` —
/// measuring how much of the traffic the runtime keeps answering and
/// whether any wrong answer escaped unflagged.
///
/// Bit-identical for a fixed seed (given a deterministic deadline policy
/// and zero backoff): faults, queries, and panics all derive from the
/// seed, and serving results are thread-count-invariant.
///
/// # Errors
///
/// Propagates configuration errors and health/repair machinery failures.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, TdamError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let array = ResilientArray::new(cfg.array, cfg.resilience)?;
    let mut engine = ResilientEngine::wrap(array, cfg.runtime).with_chaos(ChaosInjection {
        seed: mix_seed(cfg.seed, 0x51A5),
        panic_rate: cfg.panic_rate,
    });

    let data_rows = cfg.array.rows;
    let stages = cfg.array.stages;
    let levels = cfg.array.encoding.levels();
    let mut data = Vec::with_capacity(data_rows);
    for row in 0..data_rows {
        let values: Vec<u8> = (0..stages).map(|_| rng.gen_range(0..levels)).collect();
        engine.store(row, &values)?;
        data.push(values);
    }

    let physical_rows = data_rows + cfg.resilience.spare_rows + cfg.resilience.reference_rows;
    let per_batch_rate = if cfg.batches > 0 {
        (cfg.fault_rate / cfg.batches as f64).clamp(0.0, 1.0)
    } else {
        0.0
    };

    let mut report = ChaosReport {
        total_queries: 0,
        answered: 0,
        timed_out: 0,
        failed: 0,
        wrong: 0,
        silent_wrong: 0,
        degraded_answers: 0,
        faults_injected: 0,
        final_backend: engine.backend(),
        final_degradation: DegradationLevel::Nominal,
        stats: RuntimeStats::default(),
    };

    for _ in 0..cfg.batches {
        // Drip-feed persistent faults so the health probes have something
        // to catch mid-campaign, not just at t=0.
        if per_batch_rate > 0.0 {
            for row in 0..physical_rows {
                for stage in 0..stages {
                    if rng.gen_bool(per_batch_rate) {
                        let kind = if rng.gen_bool(0.5) {
                            crate::faults::FaultKind::StuckMismatch
                        } else {
                            crate::faults::FaultKind::StuckMatch
                        };
                        engine.array_mut().inject(row, stage, kind)?;
                        report.faults_injected += 1;
                    }
                }
            }
        }

        let mut batch = BatchQuery::new(stages);
        let mut targets = Vec::with_capacity(cfg.batch_size);
        for _ in 0..cfg.batch_size {
            let target = rng.gen_range(0..data_rows);
            batch.push(&data[target])?;
            targets.push(target);
        }

        let outcome = engine.serve(&batch)?;
        report.total_queries += outcome.slots.len();
        report.answered += outcome.answered();
        report.timed_out += outcome.timed_out();
        report.failed += outcome.failed();
        // An answer is *flagged* when its outcome admits reduced fidelity
        // in any way the caller can see — the degradation summary or the
        // fault-masked backend. Wrong-but-flagged is graceful
        // degradation; wrong-and-unflagged is the forbidden case.
        let flagged = outcome.degradation != DegradationLevel::Nominal
            || outcome.backend == BackendKind::DegradedMasked;
        for (slot, q) in outcome.slots.iter().enumerate() {
            let QueryOutcome::Ok(metrics) = q else {
                continue;
            };
            if flagged {
                report.degraded_answers += 1;
            }
            // Ground truth over the *stored* data: the query is an exact
            // copy of its target row, so any true nearest row is correct.
            let query = &data[targets[slot]];
            let truth: Vec<usize> = data
                .iter()
                .map(|row| row.iter().zip(query).filter(|(a, b)| a != b).count())
                .collect();
            let min_truth = *truth.iter().min().unwrap_or(&0);
            let correct = metrics.best_row.is_some_and(|r| truth[r] == min_truth);
            if !correct {
                report.wrong += 1;
                if !flagged {
                    report.silent_wrong += 1;
                }
            }
        }
        report.final_backend = outcome.backend;
        report.final_degradation = outcome.degradation;
    }
    report.stats = *engine.stats();
    Ok(report)
}

/// Configuration of a sustained read/write chaos campaign
/// ([`run_mutation_chaos`]): continuous row rewrites through the
/// tracked, wear-leveled write path under live query traffic, with
/// optional persistent cell faults and injected worker panics on top.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationChaosConfig {
    /// Geometry of the *data* array (rows = logical data rows).
    pub array: ArrayConfig,
    /// Resilience machinery, including the [`WearPolicy`] the write mix
    /// exercises.
    pub resilience: ResilienceConfig,
    /// Serving runtime configuration. For bit-identical replay the
    /// deadline must not be [`DeadlinePolicy::WallClock`] and the retry
    /// backoff should be zero.
    pub runtime: RuntimeConfig,
    /// Batches to serve.
    pub batches: usize,
    /// Queries per batch.
    pub batch_size: usize,
    /// Random row rewrites applied before each served batch.
    pub writes_per_batch: usize,
    /// Target cumulative fraction of cells hit by a persistent fault
    /// over the whole campaign. 0 makes this a *pure-mutation*
    /// campaign, and the judge then requires zero wrong answers
    /// outright — not merely zero unflagged ones.
    pub fault_rate: f64,
    /// Per-(slot, attempt) injected worker-panic probability.
    pub panic_rate: f64,
    /// Campaign seed.
    pub seed: u64,
}

impl MutationChaosConfig {
    /// The acceptance-criteria campaign: 1280 query slots (≥ 1000
    /// seeded scenarios) served while 160 row rewrites churn a 16-row,
    /// 32-stage array under the aggressive wear policy — rotations and
    /// refresh-rewrites both fire. No cell faults: every answer must be
    /// *correct*, not merely flagged.
    pub fn paper_default() -> Self {
        Self {
            array: ArrayConfig::paper_default().with_stages(32).with_rows(16),
            resilience: ResilienceConfig {
                spare_rows: 8,
                wear: WearPolicy::aggressive(),
                ..ResilienceConfig::default()
            },
            runtime: RuntimeConfig {
                retry: RetryConfig {
                    max_retries: 3,
                    backoff: Duration::ZERO,
                    backoff_cap: Duration::ZERO,
                },
                ..RuntimeConfig::default()
            },
            batches: 40,
            batch_size: 32,
            writes_per_batch: 4,
            fault_rate: 0.0,
            panic_rate: 0.01,
            seed: 0x4D55_5441,
        }
    }

    /// Layers persistent cell faults on top of the write mix.
    /// Wrong-but-flagged answers become tolerable (graceful
    /// degradation); silent corruption never is.
    pub fn with_faults(mut self, fault_rate: f64) -> Self {
        self.fault_rate = fault_rate;
        self
    }
}

/// Results of a mutation-chaos campaign. Integer-only accounting:
/// two runs with the same seed must compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutationChaosReport {
    /// Query slots served across the campaign.
    pub total_queries: usize,
    /// Slots answered (possibly degraded).
    pub answered: usize,
    /// Slots expired by deadlines.
    pub timed_out: usize,
    /// Slots failed after retries.
    pub failed: usize,
    /// Answered slots whose best row was not a true nearest row of the
    /// independently replayed reference.
    pub wrong: usize,
    /// Wrong answers delivered while the outcome claimed
    /// [`DegradationLevel::Nominal`] — the forbidden case.
    pub silent_wrong: usize,
    /// Answered slots flagged with any non-nominal degradation.
    pub degraded_answers: usize,
    /// Logical row rewrites accepted (initial population included).
    pub user_writes: usize,
    /// Physical row programs those writes cost.
    pub physical_writes: usize,
    /// Wear-leveling rotations onto spare rows.
    pub wear_rotations: usize,
    /// Disturb-budget refresh-rewrites.
    pub refresh_rewrites: usize,
    /// Persistent cell faults injected.
    pub faults_injected: usize,
    /// Backend of the final batch.
    pub final_backend: BackendKind,
    /// Degradation level after the final batch.
    pub final_degradation: DegradationLevel,
    /// Runtime statistics.
    pub stats: RuntimeStats,
}

impl MutationChaosReport {
    /// Fraction of slots answered.
    pub fn availability(&self) -> f64 {
        if self.total_queries == 0 {
            return 1.0;
        }
        self.answered as f64 / self.total_queries as f64
    }

    /// Physical programs per accepted logical write (1.0 = the wear
    /// leveler added no overhead).
    pub fn write_amplification(&self) -> f64 {
        if self.user_writes == 0 {
            return 1.0;
        }
        self.physical_writes as f64 / self.user_writes as f64
    }
}

/// Runs a sustained read/write chaos campaign: random row rewrites flow
/// through the tracked, wear-leveled write path *between* served
/// batches, so every batch exercises the incremental repack + epoch
/// swap; optional cell faults and worker panics ride on top.
///
/// Every accepted write is mirrored into an **independently replayed
/// reference** (a plain `Vec<Vec<u8>>` shadow of the logical rows), and
/// ground truth for each query is recomputed from that shadow — never
/// from the engine under test. A pure-mutation campaign
/// (`fault_rate == 0`) must answer every slot correctly; a faulted one
/// must never deliver a wrong answer unflagged.
///
/// Bit-identical for a fixed seed (given a deterministic deadline
/// policy and zero backoff), and thread-count invariant.
///
/// # Errors
///
/// Propagates configuration errors and health/repair machinery
/// failures.
pub fn run_mutation_chaos(cfg: &MutationChaosConfig) -> Result<MutationChaosReport, TdamError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let array = ResilientArray::new(cfg.array, cfg.resilience)?;
    let mut engine = ResilientEngine::wrap(array, cfg.runtime).with_chaos(ChaosInjection {
        seed: mix_seed(cfg.seed, 0x77C4),
        panic_rate: cfg.panic_rate,
    });

    let data_rows = cfg.array.rows;
    let stages = cfg.array.stages;
    let levels = cfg.array.encoding.levels();
    let mut data = Vec::with_capacity(data_rows);
    for row in 0..data_rows {
        let values: Vec<u8> = (0..stages).map(|_| rng.gen_range(0..levels)).collect();
        engine.store(row, &values)?;
        data.push(values);
    }

    let physical_rows = data_rows + cfg.resilience.spare_rows + cfg.resilience.reference_rows;
    let per_batch_rate = if cfg.batches > 0 {
        (cfg.fault_rate / cfg.batches as f64).clamp(0.0, 1.0)
    } else {
        0.0
    };

    let mut report = MutationChaosReport {
        total_queries: 0,
        answered: 0,
        timed_out: 0,
        failed: 0,
        wrong: 0,
        silent_wrong: 0,
        degraded_answers: 0,
        user_writes: 0,
        physical_writes: 0,
        wear_rotations: 0,
        refresh_rewrites: 0,
        faults_injected: 0,
        final_backend: engine.backend(),
        final_degradation: DegradationLevel::Nominal,
        stats: RuntimeStats::default(),
    };

    for _ in 0..cfg.batches {
        // Live mutation: rewrite random rows through the tracked path,
        // mirroring each accepted write into the shadow reference.
        for _ in 0..cfg.writes_per_batch {
            let row = rng.gen_range(0..data_rows);
            let values: Vec<u8> = (0..stages).map(|_| rng.gen_range(0..levels)).collect();
            engine.store(row, &values)?;
            data[row] = values;
        }

        if per_batch_rate > 0.0 {
            for row in 0..physical_rows {
                for stage in 0..stages {
                    if rng.gen_bool(per_batch_rate) {
                        let kind = if rng.gen_bool(0.5) {
                            crate::faults::FaultKind::StuckMismatch
                        } else {
                            crate::faults::FaultKind::StuckMatch
                        };
                        engine.array_mut().inject(row, stage, kind)?;
                        report.faults_injected += 1;
                    }
                }
            }
        }

        let mut batch = BatchQuery::new(stages);
        let mut targets = Vec::with_capacity(cfg.batch_size);
        for _ in 0..cfg.batch_size {
            let target = rng.gen_range(0..data_rows);
            batch.push(&data[target])?;
            targets.push(target);
        }

        let outcome = engine.serve(&batch)?;
        report.total_queries += outcome.slots.len();
        report.answered += outcome.answered();
        report.timed_out += outcome.timed_out();
        report.failed += outcome.failed();
        let flagged = outcome.degradation != DegradationLevel::Nominal
            || outcome.backend == BackendKind::DegradedMasked;
        for (slot, q) in outcome.slots.iter().enumerate() {
            let QueryOutcome::Ok(metrics) = q else {
                continue;
            };
            if flagged {
                report.degraded_answers += 1;
            }
            // Ground truth over the shadow: the query is an exact copy
            // of its target row *as of this batch*, so any true nearest
            // row of the current shadow contents is correct.
            let query = &data[targets[slot]];
            let truth: Vec<usize> = data
                .iter()
                .map(|row| row.iter().zip(query).filter(|(a, b)| a != b).count())
                .collect();
            let min_truth = *truth.iter().min().unwrap_or(&0);
            let correct = metrics.best_row.is_some_and(|r| truth[r] == min_truth);
            if !correct {
                report.wrong += 1;
                if !flagged {
                    report.silent_wrong += 1;
                }
            }
        }
        report.final_backend = outcome.backend;
        report.final_degradation = outcome.degradation;
    }
    let stats = *engine.stats();
    report.user_writes = stats.user_writes;
    report.physical_writes = stats.physical_writes;
    report.wear_rotations = stats.wear_rotations;
    report.refresh_rewrites = stats.refresh_rewrites;
    report.stats = stats;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;

    fn zero_retry_backoff() -> RetryConfig {
        RetryConfig {
            max_retries: 3,
            backoff: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }

    fn engine(rows: usize, stages: usize) -> ResilientEngine {
        let cfg = ArrayConfig::paper_default()
            .with_rows(rows)
            .with_stages(stages);
        let rt = RuntimeConfig {
            retry: zero_retry_backoff(),
            threads: Some(2),
            ..RuntimeConfig::default()
        };
        ResilientEngine::new(cfg, ResilienceConfig::default(), rt).unwrap()
    }

    fn ramp(stages: usize, phase: usize) -> Vec<u8> {
        (0..stages).map(|j| ((j + phase) % 4) as u8).collect()
    }

    fn ramp_batch(stages: usize, n: usize) -> BatchQuery {
        let rows: Vec<Vec<u8>> = (0..n).map(|k| ramp(stages, k)).collect();
        BatchQuery::from_rows(&rows).unwrap()
    }

    #[test]
    fn healthy_serving_is_bit_identical_to_bare_array() {
        let mut eng = engine(4, 16);
        for r in 0..4 {
            eng.store(r, &ramp(16, r)).unwrap();
        }
        let batch = ramp_batch(16, 6);
        let outcome = eng.serve(&batch).unwrap();
        assert_eq!(outcome.backend, BackendKind::CompiledLut);
        assert_eq!(outcome.degradation, DegradationLevel::Nominal);
        assert_eq!(outcome.availability(), 1.0);
        for (slot, q) in outcome.slots.iter().enumerate() {
            let bare = eng.array().search(batch.get(slot)).unwrap().metrics();
            assert_eq!(q, &QueryOutcome::Ok(bare), "slot {slot}");
        }
    }

    #[test]
    fn query_budget_expires_exactly_the_tail() {
        let mut eng = engine(2, 8);
        eng.store(0, &ramp(8, 0)).unwrap();
        let mut cfg = eng.cfg;
        cfg.deadline = DeadlinePolicy::QueryBudget(3);
        eng.cfg = cfg;
        let outcome = eng.serve(&ramp_batch(8, 5)).unwrap();
        assert_eq!(outcome.answered(), 3);
        assert_eq!(outcome.timed_out(), 2);
        for (slot, q) in outcome.slots.iter().enumerate() {
            if slot < 3 {
                assert!(q.is_ok(), "slot {slot} within budget must answer");
            } else {
                assert_eq!(q, &QueryOutcome::TimedOut, "slot {slot} past budget");
            }
        }
    }

    #[test]
    fn wall_clock_zero_budget_times_everything_out() {
        let mut eng = engine(2, 8);
        eng.store(0, &ramp(8, 0)).unwrap();
        eng.cfg.deadline = DeadlinePolicy::WallClock(Duration::ZERO);
        let outcome = eng.serve(&ramp_batch(8, 4)).unwrap();
        assert_eq!(outcome.timed_out(), 4);
        assert_eq!(outcome.availability(), 0.0);
    }

    #[test]
    fn injected_panics_are_retried_and_recovered() {
        let mut eng = engine(2, 8).with_chaos(ChaosInjection {
            seed: 7,
            panic_rate: 0.4,
        });
        eng.cfg.retry.max_retries = 8;
        eng.store(0, &ramp(8, 0)).unwrap();
        eng.store(1, &ramp(8, 1)).unwrap();
        // With retries keyed by attempt, a slot that panics on attempt 0
        // serves on a later attempt; 8 rounds make exhaustion (0.4^9)
        // vanishingly rare, and the fixed seed makes it deterministic.
        let mut total_retries = 0;
        for _ in 0..8 {
            let outcome = eng.serve(&ramp_batch(8, 8)).unwrap();
            assert_eq!(
                outcome.availability(),
                1.0,
                "retry must absorb injected panics"
            );
            total_retries += outcome.retries;
        }
        assert!(total_retries > 0, "chaos at 40% must have injected panics");
        assert_eq!(eng.stats().retries, total_retries);
    }

    #[test]
    fn panic_without_retry_fails_only_its_slot() {
        let mut eng = engine(2, 8).with_chaos(ChaosInjection {
            seed: 3,
            panic_rate: 0.35,
        });
        eng.cfg.retry.max_retries = 0;
        eng.store(0, &ramp(8, 0)).unwrap();
        let mut saw_failure = false;
        for _ in 0..8 {
            let outcome = eng.serve(&ramp_batch(8, 8)).unwrap();
            for q in &outcome.slots {
                match q {
                    QueryOutcome::Ok(_) => {}
                    QueryOutcome::Failed { error, class } => {
                        saw_failure = true;
                        assert_eq!(error, &TdamError::Worker);
                        assert_eq!(class, &ErrorClass::Transient);
                    }
                    QueryOutcome::TimedOut => panic!("no deadline configured"),
                }
            }
        }
        assert!(saw_failure, "35% panic rate over 64 slots must fail some");
    }

    #[test]
    fn store_invalidates_and_recompiles_the_snapshot() {
        let mut eng = engine(2, 8);
        eng.store(0, &ramp(8, 0)).unwrap();
        let batch = ramp_batch(8, 4);
        eng.serve(&batch).unwrap();
        let gen_before = eng.snapshot().unwrap().generation();
        assert_eq!(eng.stats().epoch_swaps, 1);
        // Reprogram: the published snapshot is now stale. The write went
        // through the tracked path, so the refresh is *surgical* — one
        // row repacked, published as a new epoch — never served stale
        // (its tables decode the *old* row contents).
        eng.store(0, &ramp(8, 3)).unwrap();
        let outcome = eng.serve(&batch).unwrap();
        assert_eq!(outcome.backend, BackendKind::CompiledLut);
        let snap = eng.snapshot().unwrap();
        assert!(snap.generation() > gen_before);
        assert_eq!(eng.stats().recompiles, 1);
        assert_eq!(eng.stats().incremental_repacks, 1);
        assert_eq!(eng.stats().rows_repacked, 1);
        assert_eq!(eng.stats().epoch_swaps, 2);
        // Served answer reflects the *new* contents.
        let best = outcome.slots[3].ok().unwrap().best_row;
        assert_eq!(best, Some(0));
    }

    #[test]
    fn incremental_refresh_is_bit_identical_to_full_recompile() {
        let mut eng = engine(4, 16);
        for r in 0..4 {
            eng.store(r, &ramp(16, r)).unwrap();
        }
        let batch = ramp_batch(16, 6);
        eng.serve(&batch).unwrap();
        // Rewrite two rows (one twice) through the tracked path; the
        // next serve refreshes surgically.
        eng.store(2, &ramp(16, 5)).unwrap();
        eng.store(0, &ramp(16, 6)).unwrap();
        eng.store(2, &ramp(16, 7)).unwrap();
        let outcome = eng.serve(&batch).unwrap();
        assert_eq!(eng.stats().incremental_repacks, 1);
        assert_eq!(eng.stats().rows_repacked, 2, "row 2 repacked once");
        // Judge against a from-scratch compile of the same contents.
        let fresh = eng.array().array().compile_snapshot();
        for (slot, q) in outcome.slots.iter().enumerate() {
            let want = fresh.search_packed_unchecked(batch.get(slot)).unwrap();
            let want = eng.array().resolve_outcome(&want).metrics();
            assert_eq!(q, &QueryOutcome::Ok(want), "slot {slot}");
        }
    }

    #[test]
    fn epoch_holder_pins_in_flight_readers_across_swaps() {
        let mut eng = engine(2, 8);
        eng.store(0, &ramp(8, 0)).unwrap();
        eng.serve(&ramp_batch(8, 1)).unwrap();
        let pinned = eng.snapshot().unwrap();
        let epoch_before = eng.epochs().epoch();
        assert_eq!(eng.epochs().in_flight(), 1, "our handle pins the epoch");
        // Swap: a tracked write plus a serve publishes a new epoch...
        eng.store(0, &ramp(8, 2)).unwrap();
        eng.serve(&ramp_batch(8, 1)).unwrap();
        assert_eq!(eng.epochs().epoch(), epoch_before + 1);
        assert_eq!(eng.epochs().in_flight(), 0, "new epoch has no readers");
        // ...while the pinned handle still answers frozen pre-swap
        // contents — row 0 is an exact match for the *old* query.
        let old = pinned.search_packed_unchecked(&ramp(8, 0)).unwrap();
        assert_eq!(old.rows[0].decoded_mismatches, 0);
        // The current epoch decodes the *new* contents.
        let new = eng
            .snapshot()
            .unwrap()
            .search_packed_unchecked(&ramp(8, 2))
            .unwrap();
        assert_eq!(new.rows[0].decoded_mismatches, 0);
        // The checked legacy entry refuses the stale snapshot with a
        // retryable class — a generation bump observed mid-batch is
        // transient, never a permanent failure.
        let err = pinned
            .search_packed(eng.array().array(), &ramp(8, 0))
            .unwrap_err();
        assert!(matches!(err, TdamError::StaleCompile { .. }));
        assert_eq!(err.class(), ErrorClass::Transient);
    }

    #[test]
    fn a_mid_batch_generation_bump_cannot_fail_pinned_slots() {
        let mut eng = engine(2, 8);
        eng.store(0, &ramp(8, 0)).unwrap();
        eng.serve(&ramp_batch(8, 1)).unwrap();
        let pinned = eng.snapshot().unwrap();
        // A reprogram lands while a batch is (conceptually) in flight on
        // the pinned epoch.
        eng.store(0, &ramp(8, 3)).unwrap();
        let batch = ramp_batch(8, 2);
        // The pinned epoch keeps serving: no StaleCompile, answers
        // frozen at the epoch the batch started on.
        let out = eng.serve_slot(Some(&pinned), &batch, 0, 0).unwrap();
        assert!(out.metrics().best_row.is_some());
    }

    #[test]
    fn untracked_mutations_force_a_full_recompile() {
        let mut eng = engine(2, 8);
        eng.store(0, &ramp(8, 0)).unwrap();
        eng.serve(&ramp_batch(8, 1)).unwrap();
        // The caller took direct mutable access: tracking is voided, so
        // the next refresh must not patch over unknown changes.
        let _ = eng.array_mut();
        eng.store(0, &ramp(8, 1)).unwrap();
        eng.serve(&ramp_batch(8, 1)).unwrap();
        assert_eq!(eng.stats().recompiles, 1);
        assert_eq!(eng.stats().incremental_repacks, 0);
    }

    #[test]
    fn tracked_writes_feed_wear_and_write_amplification_stats() {
        let cfg = ArrayConfig::paper_default().with_rows(2).with_stages(8);
        let res = ResilienceConfig {
            spare_rows: 4,
            wear: WearPolicy {
                rotate_after_writes: 3,
                ..WearPolicy::default()
            },
            ..ResilienceConfig::default()
        };
        let rt = RuntimeConfig {
            retry: zero_retry_backoff(),
            threads: Some(2),
            ..RuntimeConfig::default()
        };
        let mut eng = ResilientEngine::new(cfg, res, rt).unwrap();
        for k in 0..4 {
            eng.store(0, &ramp(8, k)).unwrap();
        }
        assert_eq!(eng.stats().user_writes, 4);
        assert_eq!(eng.stats().physical_writes, 4);
        assert_eq!(eng.stats().wear_rotations, 1, "4th write rotates");
        // The rotated row still serves its latest contents, surgically
        // refreshed into the snapshot.
        let outcome = eng.serve(&ramp_batch(8, 4)).unwrap();
        assert_eq!(outcome.slots[3].ok().unwrap().best_row, Some(0));
        assert_eq!(outcome.availability(), 1.0);
    }

    #[test]
    fn guarded_retry_absorbs_stale_compile() {
        struct StaleOnce {
            inner: crate::array::TdamArray,
            stale: bool,
        }
        impl SimilarityEngine for StaleOnce {
            fn name(&self) -> &str {
                "stale-once"
            }
            fn is_quantitative(&self) -> bool {
                true
            }
            fn rows(&self) -> usize {
                self.inner.rows()
            }
            fn width(&self) -> usize {
                self.inner.width()
            }
            fn bits_per_element(&self) -> u8 {
                self.inner.bits_per_element()
            }
            fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError> {
                self.inner.store(row, values)
            }
            fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
                if !self.stale {
                    self.stale = true;
                    return Err(TdamError::StaleCompile {
                        compiled: 1,
                        current: 2,
                    });
                }
                SimilarityEngine::search(&mut self.inner, query)
            }
        }
        let cfg = ArrayConfig::paper_default().with_rows(1).with_stages(8);
        let mut guarded = Guarded::new(
            StaleOnce {
                inner: crate::array::TdamArray::new(cfg).unwrap(),
                stale: false,
            },
            RuntimeConfig {
                retry: zero_retry_backoff(),
                ..RuntimeConfig::default()
            },
        );
        guarded.engine_mut().store(0, &ramp(8, 0)).unwrap();
        // A generation bump observed mid-batch classifies Transient and
        // is absorbed by retry — never surfaced as a permanent failure.
        let outcome = guarded.serve(&ramp_batch(8, 1));
        assert_eq!(outcome.answered(), 1);
        assert_eq!(outcome.retries, 1);
    }

    #[test]
    fn mutation_chaos_replays_bit_identically_with_zero_wrong() {
        let mut cfg = MutationChaosConfig::paper_default();
        cfg.batches = 6;
        cfg.batch_size = 8;
        cfg.runtime.threads = Some(2);
        let a = run_mutation_chaos(&cfg).unwrap();
        let b = run_mutation_chaos(&cfg).unwrap();
        assert_eq!(a, b, "mutation chaos must replay bit-identically");
        assert_eq!(a.wrong, 0, "pure-mutation campaign must be correct");
        assert_eq!(a.silent_wrong, 0);
        assert_eq!(a.user_writes, 16 + 6 * 4);
        assert!(
            a.stats.incremental_repacks > 0,
            "tracked writes must refresh surgically, got {:?}",
            a.stats
        );
        assert!(a.write_amplification() >= 1.0);
        // Thread-count invariance.
        let mut cfg_threads = cfg.clone();
        cfg_threads.runtime.threads = Some(1);
        assert_eq!(run_mutation_chaos(&cfg_threads).unwrap(), a);
    }

    #[test]
    fn faulted_mutation_chaos_never_corrupts_silently() {
        let mut cfg = MutationChaosConfig::paper_default().with_faults(0.01);
        cfg.batches = 6;
        cfg.batch_size = 8;
        cfg.runtime.threads = Some(2);
        let report = run_mutation_chaos(&cfg).unwrap();
        assert_eq!(report.silent_wrong, 0, "report: {report:?}");
        assert!(report.faults_injected > 0, "1% must inject something");
    }

    #[test]
    fn health_miss_demotes_then_repair_promotes() {
        let mut eng = engine(3, 16);
        for r in 0..3 {
            eng.store(r, &ramp(16, r)).unwrap();
        }
        let batch = ramp_batch(16, 3);
        assert_eq!(eng.serve(&batch).unwrap().backend, BackendKind::CompiledLut);

        // Drift a reference row out of margin: the next health probe
        // misses, the breaker (threshold 1) trips, repair re-programs the
        // reference (a fresh write erases drift), and serving returns to
        // the compiled path — all within one call.
        let ref_phys = 3 + eng.array().resilience_config().spare_rows;
        for stage in 0..16 {
            eng.array_mut()
                .inject(
                    ref_phys,
                    stage,
                    FaultKind::VthDrift {
                        window_fraction: 0.05,
                    },
                )
                .unwrap();
        }
        let outcome = eng.serve(&batch).unwrap();
        assert_eq!(outcome.backend, BackendKind::CompiledLut);
        assert_eq!(eng.stats().health_misses, 1);
        assert_eq!(eng.stats().repairs, 1);
        assert!(eng.array().check_references().unwrap());
    }

    #[test]
    fn unrepairable_damage_serves_fault_masked() {
        let mut eng = engine(3, 16);
        for r in 0..3 {
            eng.store(r, &ramp(16, r)).unwrap();
        }
        // A stuck shared column afflicts every row including references;
        // repair masks the column (references then pass), leaving the
        // array permanently degraded.
        eng.array_mut().stuck_column(5).unwrap();
        let outcome = eng.serve(&ramp_batch(16, 3)).unwrap();
        assert_eq!(outcome.backend, BackendKind::DegradedMasked);
        assert_eq!(outcome.degradation, DegradationLevel::Degraded);
        // Still answering, and correctly: masking subtracts the bias.
        assert_eq!(outcome.availability(), 1.0);
        for (slot, best) in outcome.best_rows().iter().enumerate() {
            assert_eq!(*best, Some(slot));
        }
    }

    #[test]
    fn breaker_threshold_delays_repair() {
        let mut eng = engine(2, 16);
        eng.cfg.breaker_threshold = 3;
        eng.breaker = CircuitBreaker::new(3);
        for r in 0..2 {
            eng.store(r, &ramp(16, r)).unwrap();
        }
        let ref_phys = 2 + eng.array().resilience_config().spare_rows;
        for stage in 0..16 {
            eng.array_mut()
                .inject(
                    ref_phys,
                    stage,
                    FaultKind::VthDrift {
                        window_fraction: 0.05,
                    },
                )
                .unwrap();
        }
        let batch = ramp_batch(16, 2);
        // Misses 1 and 2: demoted to behavioral, no repair yet.
        for expected_misses in 1..=2 {
            let outcome = eng.serve(&batch).unwrap();
            assert_eq!(outcome.backend, BackendKind::Behavioral);
            assert_eq!(eng.stats().health_misses, expected_misses);
            assert_eq!(eng.stats().repairs, 0);
            assert_eq!(outcome.availability(), 1.0, "behavioral still answers");
        }
        // Miss 3 trips the breaker: repair runs and serving is promoted.
        let outcome = eng.serve(&batch).unwrap();
        assert_eq!(eng.stats().repairs, 1);
        assert_eq!(outcome.backend, BackendKind::CompiledLut);
        assert_eq!(eng.stats().promotions, 1);
    }

    #[test]
    fn batch_width_mismatch_is_a_batch_level_error() {
        let mut eng = engine(2, 8);
        let err = eng.serve(&BatchQuery::new(5)).unwrap_err();
        assert_eq!(err.class(), ErrorClass::Permanent);
    }

    #[test]
    fn guarded_isolates_panics_for_any_engine() {
        struct Flaky {
            inner: crate::array::TdamArray,
            calls: usize,
        }
        impl SimilarityEngine for Flaky {
            fn name(&self) -> &str {
                "flaky"
            }
            fn is_quantitative(&self) -> bool {
                true
            }
            fn rows(&self) -> usize {
                self.inner.rows()
            }
            fn width(&self) -> usize {
                self.inner.width()
            }
            fn bits_per_element(&self) -> u8 {
                self.inner.bits_per_element()
            }
            fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError> {
                self.inner.store(row, values)
            }
            fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
                self.calls += 1;
                if self.calls.is_multiple_of(3) {
                    panic!("flaky engine");
                }
                SimilarityEngine::search(&mut self.inner, query)
            }
        }
        let cfg = ArrayConfig::paper_default().with_rows(2).with_stages(8);
        let mut guarded = Guarded::new(
            Flaky {
                inner: crate::array::TdamArray::new(cfg).unwrap(),
                calls: 0,
            },
            RuntimeConfig {
                retry: RetryConfig {
                    max_retries: 0,
                    backoff: Duration::ZERO,
                    backoff_cap: Duration::ZERO,
                },
                ..RuntimeConfig::default()
            },
        );
        guarded.engine_mut().store(0, &ramp(8, 0)).unwrap();
        let outcome = guarded.serve(&ramp_batch(8, 6));
        // Every third call panics: slots 2 and 5 fail, the rest answer.
        assert_eq!(outcome.answered(), 4);
        assert_eq!(outcome.failed(), 2);
        assert!(matches!(
            outcome.slots[2],
            QueryOutcome::Failed {
                error: TdamError::Worker,
                ..
            }
        ));
        assert!(outcome.slots[0].is_ok() && outcome.slots[3].is_ok());
    }

    #[test]
    fn guarded_retry_absorbs_transient_panics() {
        struct PanicOnce {
            inner: crate::array::TdamArray,
            panicked: bool,
        }
        impl SimilarityEngine for PanicOnce {
            fn name(&self) -> &str {
                "panic-once"
            }
            fn is_quantitative(&self) -> bool {
                true
            }
            fn rows(&self) -> usize {
                self.inner.rows()
            }
            fn width(&self) -> usize {
                self.inner.width()
            }
            fn bits_per_element(&self) -> u8 {
                self.inner.bits_per_element()
            }
            fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError> {
                self.inner.store(row, values)
            }
            fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
                if !self.panicked {
                    self.panicked = true;
                    panic!("transient hiccup");
                }
                SimilarityEngine::search(&mut self.inner, query)
            }
        }
        let cfg = ArrayConfig::paper_default().with_rows(1).with_stages(8);
        let mut guarded = Guarded::new(
            PanicOnce {
                inner: crate::array::TdamArray::new(cfg).unwrap(),
                panicked: false,
            },
            RuntimeConfig {
                retry: zero_retry_backoff(),
                ..RuntimeConfig::default()
            },
        );
        let outcome = guarded.serve(&ramp_batch(8, 1));
        assert_eq!(outcome.answered(), 1);
        assert_eq!(outcome.retries, 1);
    }

    #[test]
    fn chaos_campaign_replays_bit_identically() {
        let cfg = ChaosConfig {
            array: ArrayConfig::paper_default().with_stages(16).with_rows(4),
            resilience: ResilienceConfig {
                spare_rows: 2,
                ..ResilienceConfig::default()
            },
            runtime: RuntimeConfig {
                retry: zero_retry_backoff(),
                threads: Some(3),
                ..RuntimeConfig::default()
            },
            batches: 4,
            batch_size: 8,
            fault_rate: 0.01,
            panic_rate: 0.05,
            seed: 99,
        };
        let a = run_chaos(&cfg).unwrap();
        let b = run_chaos(&cfg).unwrap();
        assert_eq!(a, b, "chaos must replay bit-identically");
        // And thread-count invariance: the fan-out must not leak into
        // the results.
        let mut cfg_threads = cfg.clone();
        cfg_threads.runtime.threads = Some(1);
        assert_eq!(run_chaos(&cfg_threads).unwrap(), a);
    }

    #[test]
    fn circuit_breaker_counts_consecutive_misses() {
        let mut b = CircuitBreaker::new(2);
        assert!(!b.record_failure());
        b.record_success();
        assert!(!b.record_failure());
        assert!(b.record_failure());
        assert!(b.is_open());
        b.record_success();
        assert!(!b.is_open());
    }

    #[test]
    fn chaos_injection_is_pure_and_attempt_keyed() {
        let c = ChaosInjection {
            seed: 5,
            panic_rate: 0.5,
        };
        for batch in 0..4u64 {
            for slot in 0..16u64 {
                assert_eq!(
                    c.should_panic(batch, slot, 0),
                    c.should_panic(batch, slot, 0)
                );
            }
        }
        // Attempt keying: some slot that panics at attempt 0 must not
        // panic at some later attempt (otherwise retry could never help).
        let escapes = (0..64u64).any(|slot| {
            c.should_panic(0, slot, 0) && (1..4).any(|attempt| !c.should_panic(0, slot, attempt))
        });
        assert!(escapes);
        let silent = ChaosInjection {
            seed: 5,
            panic_rate: 0.0,
        };
        assert!(!silent.should_panic(0, 0, 0));
    }
}
