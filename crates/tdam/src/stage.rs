//! The variable-capacitance delay stage (paper Fig. 3(b)).
//!
//! A stage is an inverter whose output can have a load capacitor attached
//! through a PMOS switch. The switch gate is the IMC cell's match node:
//! a mismatch discharges MN to ground, turning the switch on and adding
//! `d_C` to the stage's propagation delay; a match leaves MN at `V_DD` and
//! the stage at its intrinsic delay `d_INV`.
//!
//! This module provides netlist builders for single-stage circuits (used
//! for calibration, Fig. 4 fidelity checks, and unit tests) and the
//! circuit-based calibration routine behind
//! [`StageTiming::from_circuit`](crate::timing::StageTiming::from_circuit).

use crate::cell::Cell;
use crate::config::TechParams;
use crate::timing::StageTiming;
use crate::TdamError;
use tdam_ckt::analysis::{TranConfig, Transient};
use tdam_ckt::netlist::Netlist;
use tdam_ckt::waveform::{Edge, Waveform};

/// How the match node is driven in a single-stage test circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum MnDrive {
    /// MN forced to `V_DD` (match: load capacitor detached).
    ForcedMatch,
    /// MN forced to ground (mismatch: load capacitor attached).
    ForcedMismatch,
    /// MN produced by a real 2-FeFET cell comparing `stored` against
    /// `query`.
    Cell {
        /// The cell (with its possibly perturbed thresholds).
        cell: Cell,
        /// The query element driven on the search lines.
        query: u8,
    },
}

/// Builds a single delay-stage circuit.
///
/// Topology: `in → inverter(MP/MN) → out`, with `C_load` attached to `out`
/// through PMOS switch `MSW` gated by the match node, `C_self` at `out`,
/// and a `C_gate` stand-in for the next stage's input. The input is driven
/// by `input_wave`; supply is `tech.vdd`. Node names: `"in"`, `"out"`,
/// `"mn"`, `"vdd"`, `"ctop"` (load-capacitor top plate).
///
/// # Errors
///
/// Returns [`TdamError`] for invalid capacitances or (in [`MnDrive::Cell`]
/// mode) an out-of-range query value.
pub fn build_stage_netlist(
    tech: &TechParams,
    c_load: f64,
    mn_drive: &MnDrive,
    input_wave: Waveform,
) -> Result<Netlist, TdamError> {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let inp = nl.node("in");
    let out = nl.node("out");
    let mn = nl.node("mn");
    let ctop = nl.node("ctop");

    nl.vsource("VDD", vdd, Netlist::GND, Waveform::dc(tech.vdd));
    nl.vsource("VIN", inp, Netlist::GND, input_wave);

    // The inverter.
    nl.mosfet("MP", out, inp, vdd, tech.pmos);
    nl.mosfet("MNINV", out, inp, Netlist::GND, tech.nmos);
    // Output parasitics and next-stage gate load.
    nl.capacitor("CSELF", out, Netlist::GND, tech.c_self)?;
    nl.capacitor("CGATE", out, Netlist::GND, tech.c_gate)?;
    // Load capacitor behind the PMOS switch.
    nl.mosfet(
        "MSW",
        ctop,
        mn,
        out,
        tech.pmos.with_width_multiple(tech.switch_width_mult),
    );
    nl.capacitor("CLOAD", ctop, Netlist::GND, c_load)?;

    match mn_drive {
        MnDrive::ForcedMatch => {
            nl.vsource("VMN", mn, Netlist::GND, Waveform::dc(tech.vdd));
        }
        MnDrive::ForcedMismatch => {
            nl.vsource("VMN", mn, Netlist::GND, Waveform::dc(0.0));
        }
        MnDrive::Cell { cell, query } => {
            cell.encoding().validate(&[*query])?;
            let sla = nl.node("sla");
            let slb = nl.node("slb");
            let pre = nl.node("pre");
            let levels = cell.encoding().levels();
            let v_sl_a = cell.ladder().vsl(*query);
            let v_sl_b = cell.ladder().vsl(levels - 1 - *query);
            // Precharge 0..0.5 ns, search lines assert at 0.6 ns.
            nl.vsource(
                "VPRE",
                pre,
                Netlist::GND,
                Waveform::Pwl(vec![(0.0, 0.0), (0.5e-9, 0.0), (0.55e-9, tech.vdd)]),
            );
            nl.vsource(
                "VSLA",
                sla,
                Netlist::GND,
                Waveform::Pwl(vec![(0.0, 0.0), (0.6e-9, 0.0), (0.65e-9, v_sl_a)]),
            );
            nl.vsource(
                "VSLB",
                slb,
                Netlist::GND,
                Waveform::Pwl(vec![(0.0, 0.0), (0.6e-9, 0.0), (0.65e-9, v_sl_b)]),
            );
            nl.mosfet("MPRE", mn, pre, vdd, tech.pmos);
            let (vth_a, vth_b) = cell.vth_actual();
            nl.mosfet("FA", mn, sla, Netlist::GND, tech.nmos.with_vth(vth_a));
            nl.mosfet("FB", mn, slb, Netlist::GND, tech.nmos.with_vth(vth_b));
            nl.capacitor("CMN", mn, Netlist::GND, tech.c_mn)?;
        }
    }
    Ok(nl)
}

/// Measured single-stage propagation behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageMeasurement {
    /// Input-to-output 50% propagation delay, seconds.
    pub delay: f64,
    /// Energy delivered by the supply over the run, joules.
    pub supply_energy: f64,
}

/// Simulates one stage through a full pulse cycle and measures the
/// *active-edge* propagation delay and the total supply energy.
///
/// In the 2-step operation scheme an active stage always receives a
/// **rising** input edge (the propagating edge arrives after an even
/// number of inversions), so its own output makes the **falling**,
/// load-capacitor-gated transition — that is the edge whose 50% delay is
/// measured here. The input then falls again so the output (and the load
/// capacitor, on a mismatch) recharges, which is what makes the measured
/// supply energy a full-cycle `C·V²` figure.
///
/// # Errors
///
/// Propagates circuit failures; returns [`TdamError::InvalidConfig`] if
/// the output never crosses 50% (e.g. broken stage).
pub fn measure_stage(
    tech: &TechParams,
    c_load: f64,
    mn_drive: &MnDrive,
    t_stop: f64,
) -> Result<StageMeasurement, TdamError> {
    let vdd = tech.vdd;
    // Rising input edge at 2 ns (after any cell compute phase settles);
    // the pulse stays high long enough for the loaded falling output to
    // settle, then returns low to recharge.
    let t_edge = 2.0e-9;
    let width = (t_stop - t_edge) * 0.55 - 20e-12;
    let input = Waveform::pulse_once(0.0, vdd, t_edge, 20e-12, width.max(100e-12));
    let nl = build_stage_netlist(tech, c_load, mn_drive, input)?;
    let res = Transient::new(&nl, TranConfig::until(t_stop).with_max_step(2e-12)).run()?;
    let t_in = res
        .trace("in")?
        .first_crossing(vdd / 2.0, Edge::Rising)
        .ok_or(TdamError::InvalidConfig {
            what: "input edge not found",
        })?;
    let t_out = res
        .trace("out")?
        .first_crossing(vdd / 2.0, Edge::Falling)
        .ok_or(TdamError::InvalidConfig {
            what: "stage output never switched",
        })?;
    let supply_energy = res.delivered_energy("VDD")?;
    Ok(StageMeasurement {
        delay: t_out - t_in,
        supply_energy,
    })
}

/// Calibrates a [`StageTiming`] from circuit simulation: measures the
/// stage in forced-match and forced-mismatch configuration and fills the
/// energy terms from the same analytic switched-capacitance expressions
/// used by [`StageTiming::analytic`] (supply-energy integration of the
/// match/mismatch difference cross-checks `e_c` in tests).
///
/// # Errors
///
/// Propagates circuit failures.
pub fn calibrate_from_circuit(tech: &TechParams, c_load: f64) -> Result<StageTiming, TdamError> {
    // Window long enough for the slowest (large C, low VDD) cases: the
    // analytic estimate bounds the real delay to well within 10x.
    let est = StageTiming::analytic(tech, c_load)?;
    let t_stop = 2.0e-9 + (20.0 * (est.d_c + 4.0 * est.d_inv)).max(2.0e-9);
    let m_match = measure_stage(tech, c_load, &MnDrive::ForcedMatch, t_stop)?;
    let m_mis = measure_stage(tech, c_load, &MnDrive::ForcedMismatch, t_stop)?;
    let analytic = StageTiming::analytic(tech, c_load)?;
    Ok(StageTiming {
        d_inv: m_match.delay,
        d_c: (m_mis.delay - m_match.delay).max(0.0),
        ..analytic
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::encoding::Encoding;

    fn tech() -> TechParams {
        TechParams::nominal_40nm()
    }

    #[test]
    fn mismatch_slower_than_match() {
        let t = tech();
        let m = measure_stage(&t, 6e-15, &MnDrive::ForcedMatch, 6e-9).unwrap();
        let x = measure_stage(&t, 6e-15, &MnDrive::ForcedMismatch, 6e-9).unwrap();
        assert!(
            x.delay > m.delay * 2.0,
            "mismatch {:.3e} should be much slower than match {:.3e}",
            x.delay,
            m.delay
        );
    }

    #[test]
    fn bigger_cap_bigger_penalty() {
        let t = tech();
        let a = calibrate_from_circuit(&t, 6e-15).unwrap();
        let b = calibrate_from_circuit(&t, 24e-15).unwrap();
        let ratio = b.d_c / a.d_c;
        assert!(
            (2.5..6.0).contains(&ratio),
            "4x cap should give roughly 4x penalty, got {ratio}"
        );
    }

    #[test]
    fn circuit_vs_analytic_same_ballpark() {
        let t = tech();
        let circuit = calibrate_from_circuit(&t, 6e-15).unwrap();
        let analytic = StageTiming::analytic(&t, 6e-15).unwrap();
        let ratio = circuit.d_c / analytic.d_c;
        assert!(
            (0.3..3.0).contains(&ratio),
            "circuit d_c {:.3e} vs analytic {:.3e}",
            circuit.d_c,
            analytic.d_c
        );
    }

    #[test]
    fn mismatch_consumes_more_energy() {
        let t = tech();
        let m = measure_stage(&t, 6e-15, &MnDrive::ForcedMatch, 6e-9).unwrap();
        let x = measure_stage(&t, 6e-15, &MnDrive::ForcedMismatch, 6e-9).unwrap();
        // The rising output charges C_load through the switch: ~C·V² more
        // supply energy.
        let extra = x.supply_energy - m.supply_energy;
        let cv2 = 6e-15 * t.vdd * t.vdd;
        assert!(
            extra > 0.5 * cv2 && extra < 1.5 * cv2,
            "extra supply energy {extra:e} should be near C·V² = {cv2:e}"
        );
    }

    #[test]
    fn cell_driven_stage_matches_forced_behaviour() {
        let t = tech();
        let enc = Encoding::paper_default();
        // Match: stored 2, query 2 → behaves like ForcedMatch.
        let cell = Cell::new(2, enc).unwrap();
        let m_cell = measure_stage(&t, 6e-15, &MnDrive::Cell { cell, query: 2 }, 6e-9).unwrap();
        let m_forced = measure_stage(&t, 6e-15, &MnDrive::ForcedMatch, 6e-9).unwrap();
        assert!(
            (m_cell.delay - m_forced.delay).abs() < 0.3 * m_forced.delay.max(1e-12),
            "cell-match {:.3e} vs forced-match {:.3e}",
            m_cell.delay,
            m_forced.delay
        );
        // Mismatch: stored 2, query 3 → like ForcedMismatch.
        let cell = Cell::new(2, enc).unwrap();
        let x_cell = measure_stage(&t, 6e-15, &MnDrive::Cell { cell, query: 3 }, 6e-9).unwrap();
        let x_forced = measure_stage(&t, 6e-15, &MnDrive::ForcedMismatch, 6e-9).unwrap();
        assert!(
            (x_cell.delay - x_forced.delay).abs() < 0.3 * x_forced.delay,
            "cell-mismatch {:.3e} vs forced {:.3e}",
            x_cell.delay,
            x_forced.delay
        );
    }

    #[test]
    fn low_vdd_stage_still_functions() {
        let t = tech().with_vdd(0.6);
        let m = measure_stage(&t, 6e-15, &MnDrive::ForcedMatch, 20e-9).unwrap();
        let x = measure_stage(&t, 6e-15, &MnDrive::ForcedMismatch, 20e-9).unwrap();
        assert!(x.delay > m.delay);
        // And it is slower than at nominal supply.
        let m_hi = measure_stage(&tech(), 6e-15, &MnDrive::ForcedMatch, 6e-9).unwrap();
        assert!(m.delay > m_hi.delay);
    }
}
