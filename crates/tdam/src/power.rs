//! Static (leakage) power analysis.
//!
//! A core argument for time-domain IMC (paper Sec. I) is avoiding the DC
//! currents of voltage/current-domain designs. This module quantifies the
//! TD-AM's remaining *static* dissipation — subthreshold leakage of idle
//! cells — so it can be compared against the crossbar baseline's
//! evaluation-time DC current and checked across temperature (leakage is
//! exponential in `T`).

use crate::cell::Cell;
use crate::config::{ArrayConfig, TechParams};
use crate::TdamError;
use serde::{Deserialize, Serialize};
use tdam_fefet::mosfet::ids;

/// Static-power breakdown of an idle TD-AM array, watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticPower {
    /// FeFET subthreshold leakage through the cells (MN held at `V_DD`,
    /// search lines grounded).
    pub cell_leakage: f64,
    /// Inverter leakage (one device off per inverter at either rail).
    pub inverter_leakage: f64,
    /// Precharge/switch PMOS leakage.
    pub switch_leakage: f64,
}

impl StaticPower {
    /// Total static power, watts.
    pub fn total(&self) -> f64 {
        self.cell_leakage + self.inverter_leakage + self.switch_leakage
    }
}

/// Computes the idle static power of an array.
///
/// Idle state: search lines at 0 V (all FeFET gates grounded), match
/// nodes precharged to `V_DD`, chain inputs low (odd inverter outputs
/// high). Every leakage path is evaluated through the same EKV device
/// model used for dynamic analysis.
///
/// # Errors
///
/// Returns [`TdamError::InvalidConfig`] for invalid configurations.
pub fn static_power(config: &ArrayConfig) -> Result<StaticPower, TdamError> {
    config.validate()?;
    let tech = &config.tech;
    let vdd = tech.vdd;
    let cells = (config.rows * config.stages) as f64;

    // Cell leakage: a representative stored value (middle state); both
    // FeFETs off with V_DS = V_DD.
    let cell = Cell::new(1, config.encoding)?;
    let i_cell = idle_cell_leakage(&cell, tech)?;

    // Inverter: whichever device is off leaks VDD across it.
    let i_n_off = ids(&tech.nmos, 0.0, vdd).id;
    let i_p_off = ids(&tech.pmos, 0.0, -vdd).id.abs();
    let i_inv = 0.5 * (i_n_off + i_p_off);

    // Precharge PMOS (gate high, source VDD, drain at VDD → no V_DS, no
    // leak) plus the load switch (gate at VDD, off, V_DS up to VDD).
    let i_sw = ids(
        &tech.pmos.with_width_multiple(tech.switch_width_mult),
        0.0,
        -vdd,
    )
    .id
    .abs();

    Ok(StaticPower {
        cell_leakage: cells * i_cell * vdd,
        inverter_leakage: cells * i_inv * vdd,
        switch_leakage: cells * i_sw * vdd,
    })
}

/// Leakage current of one idle cell (both search lines at 0 V, MN at
/// `V_DD`), amperes.
///
/// # Errors
///
/// Propagates element-range errors (none for valid cells).
pub fn idle_cell_leakage(cell: &Cell, tech: &TechParams) -> Result<f64, TdamError> {
    // Idle = deactivated stage: SLs at the lowest ladder level.
    let (vth_a, vth_b) = cell.vth_actual();
    let i_a = ids(&tech.nmos.with_vth(vth_a), 0.0, tech.vdd).id;
    let i_b = ids(&tech.nmos.with_vth(vth_b), 0.0, tech.vdd).id;
    Ok(i_a + i_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoding;

    fn cfg() -> ArrayConfig {
        ArrayConfig::paper_default().with_stages(64).with_rows(16)
    }

    #[test]
    fn idle_power_is_tiny() {
        let p = static_power(&cfg()).expect("power");
        // A 16x64 array should idle in the nanowatt class at 40 nm — the
        // "no DC current" TD-IMC selling point.
        assert!(
            p.total() < 1e-6,
            "idle power {:.3e} W should be sub-µW",
            p.total()
        );
        assert!(p.total() > 0.0);
    }

    #[test]
    fn leakage_scales_with_array_size() {
        let small = static_power(&cfg()).expect("power");
        let big = static_power(&cfg().with_rows(32)).expect("power");
        let ratio = big.total() / small.total();
        assert!(
            (ratio - 2.0).abs() < 0.01,
            "2x rows → 2x leakage, got {ratio}"
        );
    }

    #[test]
    fn hot_silicon_leaks_more() {
        let nominal = static_power(&cfg()).expect("power");
        let hot_cfg = ArrayConfig {
            tech: cfg().tech.at_temperature(398.0),
            ..cfg()
        };
        let hot = static_power(&hot_cfg).expect("power");
        assert!(
            hot.total() > 10.0 * nominal.total(),
            "125C leakage {:.3e} should dwarf 25C {:.3e}",
            hot.total(),
            nominal.total()
        );
    }

    #[test]
    fn low_vth_states_leak_more() {
        let tech = cfg().tech;
        let enc = Encoding::paper_default();
        // Stored 3: F_A at the highest vth, F_B at the lowest (reversed
        // ladder) — the worst-leakage stored value.
        let worst = idle_cell_leakage(&Cell::new(3, enc).expect("cell"), &tech).expect("leak");
        // Stored values 1/2 keep both devices at mid thresholds.
        let mid = idle_cell_leakage(&Cell::new(1, enc).expect("cell"), &tech).expect("leak");
        assert!(worst > mid, "worst {worst:e} vs mid {mid:e}");
    }

    #[test]
    fn static_beats_crossbar_dc_by_orders() {
        // The crossbar's evaluation-time DC current for a 16x64 array with
        // ~10% mismatches: 16*6.4 cells × 2 µA × 0.8 V ≈ 164 µW while
        // evaluating. The idle TD-AM should be orders below that.
        let p = static_power(&cfg()).expect("power");
        let crossbar_eval_power = 16.0 * 6.4 * 2e-6 * 0.8;
        assert!(p.total() < crossbar_eval_power / 100.0);
    }
}
