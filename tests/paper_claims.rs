//! The paper's headline claims, asserted end-to-end against the built
//! system. Each test names the claim it guards.

use fetdam::fefet::VthVariation;
use fetdam::num::LinearFit;
use fetdam::tdam::chain::DelayChain;
use fetdam::tdam::config::ArrayConfig;
use fetdam::tdam::monte_carlo::{run, McConfig};

/// Sec. III-B / Fig. 4(c): "the total delay is linearly related to the
/// number of mismatched stages, thus our design supports quantitative SC."
#[test]
fn claim_delay_linear_in_hamming_distance() {
    let stages = 64;
    let chain = DelayChain::new(
        &vec![1u8; stages],
        &ArrayConfig::paper_default().with_stages(stages),
    )
    .expect("chain");
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for n_mis in 0..=stages {
        let mut q = vec![1u8; stages];
        for item in q.iter_mut().take(n_mis) {
            *item = 2;
        }
        xs.push(n_mis as f64);
        ys.push(chain.evaluate(&q).expect("evaluate").total_delay);
    }
    let fit = LinearFit::fit(&xs, &ys).expect("fit");
    assert!(fit.r_squared > 0.999, "R² = {}", fit.r_squared);
}

/// Sec. IV-A: "the maximum energy efficiency achieved by our design was
/// recorded as 0.159 fJ/bit" — our best case must land in the same
/// decade.
#[test]
fn claim_best_case_energy_per_bit_near_paper() {
    let cfg = ArrayConfig::paper_default().with_stages(64).with_vdd(0.6);
    let chain = DelayChain::new(&[1u8; 64], &cfg).expect("chain");
    let r = chain.evaluate(&[1u8; 64]).expect("full match");
    let epb = r.energy.total() / cfg.bits_per_row() as f64;
    assert!(
        (0.05e-15..0.5e-15).contains(&epb),
        "best-case energy/bit {epb:e} should be near the paper's 0.159 fJ"
    );
}

/// Fig. 5: "energy and delay are proportional to the product of the load
/// capacitor value and number of mismatch stages."
#[test]
fn claim_energy_delay_proportional_to_c_times_mismatches() {
    let base = ArrayConfig::paper_default().with_stages(32);
    let eval = |c_load: f64, n_mis: usize| {
        let cfg = base.with_c_load(c_load);
        let chain = DelayChain::new(&[1u8; 32], &cfg).expect("chain");
        let mut q = vec![1u8; 32];
        for item in q.iter_mut().take(n_mis) {
            *item = 2;
        }
        let r = chain.evaluate(&q).expect("evaluate");
        (r.energy.load_caps, r.total_delay)
    };
    // Doubling C at half the mismatches keeps the cap energy constant.
    let (e1, _) = eval(12e-15, 16);
    let (e2, _) = eval(24e-15, 8);
    assert!(
        (e1 - e2).abs() / e1 < 0.15,
        "cap energy should depend on C x N_mis: {e1:e} vs {e2:e}"
    );
    // Delay: the mismatch-induced excess should likewise be ~invariant.
    let base_delay = |c: f64| eval(c, 0).1;
    let (_, d1) = eval(12e-15, 16);
    let (_, d2) = eval(24e-15, 8);
    let ex1 = d1 - base_delay(12e-15);
    let ex2 = d2 - base_delay(24e-15);
    assert!(
        (ex1 - ex2).abs() / ex1 < 0.15,
        "excess delay should depend on C x N_mis: {ex1:e} vs {ex2:e}"
    );
}

/// Fig. 6: "even when considering FeFET V_TH variation up to 60 mV, the
/// delays of the vast majority of Monte Carlo runs remain within the
/// sensing margin", and the experimentally fitted model is robust.
#[test]
fn claim_robust_to_vth_variation() {
    let array = ArrayConfig::paper_default().with_stages(64);
    let experimental = run(&McConfig::worst_case(
        array,
        VthVariation::experimental(),
        400,
        0x60D,
    ))
    .expect("MC");
    assert!(
        experimental.within_margin > 0.95,
        "experimental-variation margin pass rate {}",
        experimental.within_margin
    );
    let sigma60 = run(&McConfig::worst_case(
        array,
        VthVariation::uniform(60e-3),
        400,
        0x60D,
    ))
    .expect("MC");
    assert!(
        sigma60.within_margin > 0.80,
        "60 mV margin pass rate {} (paper: vast majority)",
        sigma60.within_margin
    );
    // And spread ordering: 60 mV must be visibly worse than experimental.
    assert!(sigma60.summary.std_dev > experimental.summary.std_dev);
}

/// Table I: quantitative ordering of the compared designs.
#[test]
fn claim_table1_ordering() {
    let rows = fetdam::baselines::comparison_table(60, 0x7AB1E).expect("table");
    let epb = |needle: &str| {
        rows.iter()
            .find(|r| r.design.contains(needle))
            .unwrap_or_else(|| panic!("{needle} missing"))
            .energy_per_bit
    };
    let ours = epb("This work");
    // The paper's ordering: TIMAQ >> 16T > 2FeFET CAM > [24] > ours > Fe-FinFET.
    assert!(epb("TIMAQ") > 4.0 * ours);
    assert!(epb("16T") > ours);
    assert!(epb("Nat. Electron.") > ours);
    assert!(epb("[24]") > ours);
    assert!(epb("Fe-FinFET") < ours);
}

/// Sec. II-C / III: the variable-capacitance structure is far more robust
/// to V_TH variation than putting the FeFET in the signal path.
#[test]
fn claim_vc_beats_vr_on_variation() {
    use fetdam::baselines::fefinfet::{FeFinFet, FeFinFetParams};
    let vr = FeFinFet::new(1, 8, FeFinFetParams::default());
    // ±45 mV (the worst experimental state sigma) on the VR stage:
    let nominal = vr.stage_delay_with_vth_shift(0.0);
    let vr_swing = (vr.stage_delay_with_vth_shift(45e-3) - vr.stage_delay_with_vth_shift(-45e-3))
        .abs()
        / nominal;

    // The same variation on the VC chain, per stage:
    let array = ArrayConfig::paper_default().with_stages(32);
    let mc = run(&McConfig::worst_case(
        array,
        VthVariation::uniform(45e-3),
        300,
        0x5C,
    ))
    .expect("MC");
    let vc_swing = 6.0 * mc.summary.std_dev / (32f64.sqrt()) / (mc.summary.mean / 32.0);
    assert!(
        vr_swing > 5.0 * vc_swing,
        "VR relative swing {vr_swing} should dwarf VC {vc_swing}"
    );
}
