//! Batched-search determinism: for every similarity engine, batched
//! serving must return the same *decision* (same `best_row`, same
//! per-row distances) as a sequential loop of single-query
//! [`SimilarityEngine::search`] calls, across seeds and worker-thread
//! counts. The baseline engines additionally pin bitwise-equal energy
//! and latency; the TD-AM's batched path serves the bit-sliced packed
//! kernel (`tdam::packed`), whose reconstructed delays agree with the
//! behavioral model to ulps rather than bit-for-bit — its analog figures
//! are compared within the documented bound, and its thread-count
//! invariance is still exact (packed vs. packed).
//!
//! The property is written as explicit seeded loops rather than a
//! `proptest!` block so it exercises the same cases under any proptest
//! backend.

use fetdam::baselines::crossbar::{CrossbarCam, CrossbarParams};
use fetdam::baselines::fecam::{Fecam, FecamParams};
use fetdam::baselines::fefinfet::{FeFinFet, FeFinFetParams};
use fetdam::baselines::homogeneous::{HomogeneousTd, HomogeneousTdParams};
use fetdam::baselines::tcam16t::{Tcam16t, Tcam16tParams};
use fetdam::baselines::timaq::{Timaq, TimaqParams};
use fetdam::tdam::array::TdamArray;
use fetdam::tdam::config::ArrayConfig;
use fetdam::tdam::engine::{BatchQuery, SimilarityEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 6;
const WIDTH: usize = 16;
const BATCH: usize = 9;
const SEEDS: [u64; 3] = [0, 0xBEEF, 0x5EED_CAFE];

/// Fills `engine` with seeded random rows and returns a same-seeded
/// random batch of queries.
fn store_rows_and_batch(engine: &mut dyn SimilarityEngine, seed: u64) -> BatchQuery {
    let mut rng = StdRng::seed_from_u64(seed);
    let levels = 1u32 << engine.bits_per_element();
    let width = engine.width();
    for row in 0..engine.rows() {
        let values: Vec<u8> = (0..width).map(|_| rng.gen_range(0..levels) as u8).collect();
        engine.store(row, &values).expect("store row");
    }
    let mut batch = BatchQuery::new(width);
    for _ in 0..BATCH {
        let q: Vec<u8> = (0..width).map(|_| rng.gen_range(0..levels) as u8).collect();
        batch.push(&q).expect("push query");
    }
    batch
}

/// Relative f64 agreement far tighter than any physical margin but loose
/// enough for the packed path's count-indexed delay reconstruction.
fn ulp_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs())
}

/// The property itself: sequential loop first, batched second. `exact`
/// engines are compared field-for-field with bitwise f64 equality;
/// otherwise the decision is exact and the analog figures ulp-bounded.
fn assert_batch_matches_sequential(engine: &mut dyn SimilarityEngine, seed: u64, exact: bool) {
    let batch = store_rows_and_batch(engine, seed);
    let sequential: Vec<_> = batch
        .iter()
        .map(|q| engine.search(q).expect("sequential search"))
        .collect();
    let batched = engine.search_batch(&batch).expect("batched search");
    assert_eq!(batched.len(), BATCH, "{}: batch length", engine.name());
    for (i, (b, s)) in batched.queries.iter().zip(&sequential).enumerate() {
        if exact {
            assert_eq!(
                b,
                s,
                "{}: batched query {i} diverged from sequential (seed {seed:#x})",
                engine.name()
            );
        } else {
            let ctx = format!(
                "{}: batched query {i} vs sequential (seed {seed:#x})",
                engine.name()
            );
            assert_eq!(b.best_row, s.best_row, "{ctx}: winner");
            assert_eq!(b.distances, s.distances, "{ctx}: distances");
            assert!(ulp_close(b.energy, s.energy), "{ctx}: energy");
            assert!(ulp_close(b.latency, s.latency), "{ctx}: latency");
        }
    }
}

#[test]
fn every_engine_batches_deterministically() {
    for &seed in &SEEDS {
        let cfg = ArrayConfig::paper_default()
            .with_stages(WIDTH)
            .with_rows(ROWS);
        // (engine, exact): the TD-AM's batched path is the packed kernel
        // (decision-exact, analog ulp-bounded); every baseline's batched
        // path must stay bit-identical to its sequential loop.
        let mut engines: Vec<(Box<dyn SimilarityEngine>, bool)> = vec![
            (Box::new(TdamArray::new(cfg).expect("tdam array")), false),
            (
                Box::new(Tcam16t::new(ROWS, WIDTH, Tcam16tParams::default())),
                true,
            ),
            (
                Box::new(Fecam::new(ROWS, WIDTH, FecamParams::default())),
                true,
            ),
            (
                Box::new(FeFinFet::new(ROWS, WIDTH, FeFinFetParams::default())),
                true,
            ),
            (
                Box::new(HomogeneousTd::new(
                    ROWS,
                    WIDTH,
                    HomogeneousTdParams::default(),
                )),
                true,
            ),
            (
                Box::new(CrossbarCam::new(ROWS, WIDTH, CrossbarParams::default())),
                true,
            ),
            (
                Box::new(Timaq::new(ROWS, WIDTH, TimaqParams::default())),
                true,
            ),
        ];
        for (engine, exact) in &mut engines {
            assert_batch_matches_sequential(engine.as_mut(), seed, *exact);
        }
    }
}

#[test]
fn compiled_tdam_batches_identically_for_every_thread_count() {
    for &seed in &SEEDS {
        let cfg = ArrayConfig::paper_default()
            .with_stages(WIDTH)
            .with_rows(ROWS);
        let mut am = TdamArray::new(cfg).expect("tdam array");
        let batch = store_rows_and_batch(&mut am, seed);
        let reference: Vec<_> = batch
            .iter()
            .map(|q| TdamArray::search(&am, q).expect("reference search"))
            .collect();
        let compiled = am.compile();
        assert!(compiled.fully_compiled(), "nominal rows must all compile");
        assert_eq!(compiled.packed_rows(), ROWS, "nominal rows must all pack");

        // The scalar LUT tier stays bit-identical to the behavioral model.
        let lut = compiled
            .search_batch_lut(&batch, Some(1))
            .expect("LUT batch");
        for (i, (got, want)) in lut.iter().zip(&reference).enumerate() {
            assert_eq!(got, want, "LUT batch query {i} diverged (seed {seed:#x})");
        }

        // The packed tier: exact decision vs. the behavioral reference,
        // and **bitwise** thread-count invariance against itself.
        let packed_one = compiled.search_batch(&batch, Some(1)).expect("packed");
        for (i, (got, want)) in packed_one.iter().zip(&reference).enumerate() {
            assert_eq!(
                got.best_row(),
                want.best_row(),
                "packed winner {i} diverged (seed {seed:#x})"
            );
            assert_eq!(
                got.decoded(),
                want.decoded(),
                "packed decode {i} diverged (seed {seed:#x})"
            );
        }
        // The decision-only tier: same exact decisions, bitwise
        // thread-count invariant (all-integer output).
        let decide_one = compiled.decide_batch(&batch, Some(1)).expect("decide");
        for (i, (got, want)) in decide_one.iter().zip(&reference).enumerate() {
            assert_eq!(
                got.best_row,
                want.best_row(),
                "decision winner {i} diverged (seed {seed:#x})"
            );
            assert_eq!(
                got.distances,
                want.decoded(),
                "decision distances {i} diverged (seed {seed:#x})"
            );
        }

        for threads in [Some(2), Some(5), None] {
            let outcomes = compiled
                .search_batch(&batch, threads)
                .expect("compiled batch");
            for (i, (got, want)) in outcomes.iter().zip(&packed_one).enumerate() {
                assert_eq!(
                    got, want,
                    "packed batch query {i} not thread-count invariant \
                     (seed {seed:#x}, threads {threads:?})"
                );
            }
            assert_eq!(
                compiled.decide_batch(&batch, threads).expect("decide"),
                decide_one,
                "decision batch not thread-count invariant \
                 (seed {seed:#x}, threads {threads:?})"
            );
        }
    }
}
