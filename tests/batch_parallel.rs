//! Batched-search determinism: for every similarity engine, batched
//! serving must return results **bit-identical** to a sequential loop of
//! single-query [`SimilarityEngine::search`] calls — same `best_row`,
//! same per-row distances, same energy and latency f64 bits — across
//! seeds and worker-thread counts.
//!
//! The property is written as explicit seeded loops rather than a
//! `proptest!` block so it exercises the same cases under any proptest
//! backend.

use fetdam::baselines::crossbar::{CrossbarCam, CrossbarParams};
use fetdam::baselines::fecam::{Fecam, FecamParams};
use fetdam::baselines::fefinfet::{FeFinFet, FeFinFetParams};
use fetdam::baselines::homogeneous::{HomogeneousTd, HomogeneousTdParams};
use fetdam::baselines::tcam16t::{Tcam16t, Tcam16tParams};
use fetdam::baselines::timaq::{Timaq, TimaqParams};
use fetdam::tdam::array::TdamArray;
use fetdam::tdam::config::ArrayConfig;
use fetdam::tdam::engine::{BatchQuery, SimilarityEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 6;
const WIDTH: usize = 16;
const BATCH: usize = 9;
const SEEDS: [u64; 3] = [0, 0xBEEF, 0x5EED_CAFE];

/// Fills `engine` with seeded random rows and returns a same-seeded
/// random batch of queries.
fn store_rows_and_batch(engine: &mut dyn SimilarityEngine, seed: u64) -> BatchQuery {
    let mut rng = StdRng::seed_from_u64(seed);
    let levels = 1u32 << engine.bits_per_element();
    let width = engine.width();
    for row in 0..engine.rows() {
        let values: Vec<u8> = (0..width).map(|_| rng.gen_range(0..levels) as u8).collect();
        engine.store(row, &values).expect("store row");
    }
    let mut batch = BatchQuery::new(width);
    for _ in 0..BATCH {
        let q: Vec<u8> = (0..width).map(|_| rng.gen_range(0..levels) as u8).collect();
        batch.push(&q).expect("push query");
    }
    batch
}

/// The property itself: sequential loop first, batched second, compared
/// field-for-field with exact (bitwise f64) equality.
fn assert_batch_matches_sequential(engine: &mut dyn SimilarityEngine, seed: u64) {
    let batch = store_rows_and_batch(engine, seed);
    let sequential: Vec<_> = batch
        .iter()
        .map(|q| engine.search(q).expect("sequential search"))
        .collect();
    let batched = engine.search_batch(&batch).expect("batched search");
    assert_eq!(batched.len(), BATCH, "{}: batch length", engine.name());
    for (i, (b, s)) in batched.queries.iter().zip(&sequential).enumerate() {
        assert_eq!(
            b,
            s,
            "{}: batched query {i} diverged from sequential (seed {seed:#x})",
            engine.name()
        );
    }
}

#[test]
fn every_engine_batches_deterministically() {
    for &seed in &SEEDS {
        let cfg = ArrayConfig::paper_default()
            .with_stages(WIDTH)
            .with_rows(ROWS);
        let mut engines: Vec<Box<dyn SimilarityEngine>> = vec![
            Box::new(TdamArray::new(cfg).expect("tdam array")),
            Box::new(Tcam16t::new(ROWS, WIDTH, Tcam16tParams::default())),
            Box::new(Fecam::new(ROWS, WIDTH, FecamParams::default())),
            Box::new(FeFinFet::new(ROWS, WIDTH, FeFinFetParams::default())),
            Box::new(HomogeneousTd::new(
                ROWS,
                WIDTH,
                HomogeneousTdParams::default(),
            )),
            Box::new(CrossbarCam::new(ROWS, WIDTH, CrossbarParams::default())),
            Box::new(Timaq::new(ROWS, WIDTH, TimaqParams::default())),
        ];
        for engine in &mut engines {
            assert_batch_matches_sequential(engine.as_mut(), seed);
        }
    }
}

#[test]
fn compiled_tdam_batches_identically_for_every_thread_count() {
    for &seed in &SEEDS {
        let cfg = ArrayConfig::paper_default()
            .with_stages(WIDTH)
            .with_rows(ROWS);
        let mut am = TdamArray::new(cfg).expect("tdam array");
        let batch = store_rows_and_batch(&mut am, seed);
        let reference: Vec<_> = batch
            .iter()
            .map(|q| TdamArray::search(&am, q).expect("reference search"))
            .collect();
        let compiled = am.compile();
        assert!(compiled.fully_compiled(), "nominal rows must all compile");
        for threads in [Some(1), Some(2), Some(5), None] {
            let outcomes = compiled
                .search_batch(&batch, threads)
                .expect("compiled batch");
            for (i, (got, want)) in outcomes.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got, want,
                    "compiled batch query {i} diverged (seed {seed:#x}, threads {threads:?})"
                );
            }
        }
    }
}
