//! End-to-end pipeline integration: dataset → encoder → training →
//! quantization → TD-AM hardware deployment, verified layer against
//! layer.

use fetdam::hdc::datasets::{Dataset, DatasetKind};
use fetdam::hdc::encoder::IdLevelEncoder;
use fetdam::hdc::mapping::TdamHdcInference;
use fetdam::hdc::quantize::QuantizedModel;
use fetdam::hdc::train::HdcModel;

fn pipeline(
    kind: DatasetKind,
    dims: usize,
    bits: u8,
) -> (
    Dataset,
    IdLevelEncoder,
    HdcModel,
    QuantizedModel,
    TdamHdcInference,
) {
    let ds = Dataset::generate(kind, 30, 10, 99);
    let enc = IdLevelEncoder::new(dims, ds.features(), 32, (0.0, 1.0), 3).expect("encoder");
    let model = HdcModel::train(&enc, &ds.train, ds.classes(), 2).expect("training");
    let quant = QuantizedModel::from_model(&model, bits).expect("quantization");
    let hw = TdamHdcInference::new(&quant, 128, 0.6).expect("deployment");
    (ds, enc, model, quant, hw)
}

#[test]
fn hardware_inference_matches_software_exactly() {
    let (ds, enc, _, quant, hw) = pipeline(DatasetKind::Face, 1024, 2);
    for (x, _) in ds.test.iter().take(20) {
        let h = enc.encode(x).expect("encode");
        let q = quant.quantize_query(&h).expect("quantize");
        let (sw_class, sw_dist) = quant.classify_quantized(&q).expect("software classify");
        let hw_result = hw.classify(&q).expect("hardware classify");
        assert_eq!(hw_result.class, sw_class);
        assert_eq!(hw_result.distance, sw_dist);
    }
}

#[test]
fn hardware_accuracy_close_to_full_precision() {
    let (ds, enc, model, quant, hw) = pipeline(DatasetKind::Face, 1024, 2);
    let full_acc = model.accuracy(&enc, &ds.test).expect("accuracy");
    let mut correct = 0usize;
    for (x, label) in &ds.test {
        let h = enc.encode(x).expect("encode");
        let q = quant.quantize_query(&h).expect("quantize");
        if hw.classify(&q).expect("hardware classify").class == *label {
            correct += 1;
        }
    }
    let hw_acc = correct as f64 / ds.test.len() as f64;
    assert!(
        hw_acc > full_acc - 0.12,
        "hardware accuracy {hw_acc} vs full-precision {full_acc}"
    );
    assert!(
        hw_acc > 0.75,
        "absolute hardware accuracy too low: {hw_acc}"
    );
}

#[test]
fn inference_cost_scales_with_model_size() {
    let (ds, enc, _, quant, hw) = pipeline(DatasetKind::Face, 512, 2);
    let (ds2, enc2, _, quant2, hw2) = pipeline(DatasetKind::Face, 2048, 2);

    let q = quant
        .quantize_query(&enc.encode(&ds.test[0].0).expect("encode"))
        .expect("quantize");
    let q2 = quant2
        .quantize_query(&enc2.encode(&ds2.test[0].0).expect("encode"))
        .expect("quantize");
    let r = hw.classify(&q).expect("classify");
    let r2 = hw2.classify(&q2).expect("classify");

    // 4x the dimensionality → 4x the tiles → ~4x latency and energy.
    let lat_ratio = r2.latency / r.latency;
    let e_ratio = r2.energy.total() / r.energy.total();
    assert!((3.0..5.5).contains(&lat_ratio), "latency ratio {lat_ratio}");
    assert!((2.5..6.0).contains(&e_ratio), "energy ratio {e_ratio}");
}

#[test]
fn every_precision_deploys_and_stays_consistent() {
    for bits in 1..=4u8 {
        // 3-bit needs dims divisible by 3: use 768·bits-compatible 1536.
        let dims = match bits {
            3 => 1536,
            _ => 1024,
        };
        let (ds, enc, _, quant, hw) = pipeline(DatasetKind::Ucihar, dims, bits);
        assert_eq!(quant.dims(), dims / bits as usize);
        let h = enc.encode(&ds.test[0].0).expect("encode");
        let q = quant.quantize_query(&h).expect("quantize");
        let (sw_class, _) = quant.classify_quantized(&q).expect("software");
        let hw_result = hw.classify(&q).expect("hardware");
        assert_eq!(hw_result.class, sw_class, "bits={bits}");
    }
}
