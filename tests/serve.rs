//! Acceptance suite for the sharded serving front-end
//! ([`tdam::serve`]): the scatter-gather top-k must be **bit-identical**
//! to brute force over the unsharded corpus across shard geometries;
//! admission control must shed explicitly (never hang, never silently
//! serve late); warm-standby failover must be gated on known-answer
//! probes; and the end-to-end TCP chaos campaign must report zero
//! silent wrong answers.

use std::sync::Arc;
use std::time::Duration;

use fetdam::tdam::config::ArrayConfig;
use fetdam::tdam::engine::BatchQuery;
use fetdam::tdam::resilience::ResilienceConfig;
use fetdam::tdam::runtime::{DeadlinePolicy, QueryOutcome, ResilientEngine, RuntimeConfig};
use fetdam::tdam::serve::{
    brute_force_topk, run_serve_chaos, seeded_corpus, FrontEnd, ServeChaosConfig, ServeClient,
    ServeConfig, ServeError, ShardedService, ShedReason,
};

/// A serving config sized for tests: 16-stage vectors, small shards.
fn test_config(rows_per_shard: usize) -> ServeConfig {
    let mut cfg = ServeConfig::paper_default();
    cfg.array = ArrayConfig::paper_default().with_stages(16);
    cfg.resilience = ResilienceConfig {
        spare_rows: 2,
        ..ResilienceConfig::default()
    };
    cfg.rows_per_shard = rows_per_shard;
    cfg
}

fn test_corpus(rows: usize) -> Vec<Vec<u8>> {
    let levels = ArrayConfig::paper_default().encoding.levels();
    seeded_corpus(rows, 16, levels, 41)
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tdam-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

const GENEROUS: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------------
// Tentpole invariant: sharded == brute force, bit for bit
// ---------------------------------------------------------------------------

#[test]
fn sharded_topk_is_bit_identical_to_brute_force_across_geometries() {
    let corpus = test_corpus(40);
    let encoding = ArrayConfig::paper_default().encoding;
    // Shard sizes spanning one-row shards, ragged last shards, and the
    // degenerate single-shard case (40 % 7 != 0 exercises the runt).
    for rows_per_shard in [1, 7, 16, 40] {
        let cfg = test_config(rows_per_shard);
        let service = ShardedService::new(&cfg, &corpus, None).expect("service");
        let queries = seeded_corpus(12, 16, 4, 97);
        for q in &queries {
            for k in [1, 3, 10, 40, 64] {
                let got = service.search_topk(q, k, GENEROUS).expect("search");
                assert!(!got.partial && !got.degraded, "healthy service");
                assert_eq!(got.shards_answered, service.map().shards());
                let want = brute_force_topk(&corpus, encoding, q, k).expect("brute force");
                assert_eq!(
                    got.neighbors, want,
                    "shard size {rows_per_shard}, k={k}: sharded top-k must be \
                     bit-identical to unsharded brute force"
                );
            }
        }
    }
}

#[test]
fn exact_queries_rank_their_own_row_first() {
    let corpus = test_corpus(30);
    let service = ShardedService::new(&test_config(8), &corpus, None).expect("service");
    for (row, stored) in corpus.iter().enumerate() {
        let got = service.search_topk(stored, 1, GENEROUS).expect("search");
        assert_eq!(got.neighbors[0].1, row, "row {row} must win its own query");
        assert_eq!(got.neighbors[0].0, 0, "exact match is distance zero");
    }
}

// ---------------------------------------------------------------------------
// Admission control and deadline edges
// ---------------------------------------------------------------------------

#[test]
fn zero_deadline_is_shed_whole_not_hung() {
    let corpus = test_corpus(20);
    let service = ShardedService::new(&test_config(10), &corpus, None).expect("service");
    let err = service
        .search_topk(&corpus[0], 3, Duration::ZERO)
        .expect_err("zero budget must be rejected");
    assert!(
        matches!(err, ServeError::Overloaded(ShedReason::DeadlineExpired)),
        "got {err:?}"
    );
}

#[test]
fn mid_scatter_expiry_returns_completed_shards_as_partial() {
    let corpus = test_corpus(20);
    let mut cfg = test_config(10);
    // The breaker must not trip during this test: one timeout is the
    // measurement, not the failure mode under test.
    cfg.shard_breaker_threshold = 100;
    let service = ShardedService::new(&cfg, &corpus, None).expect("service");
    // Shard 1 sleeps far longer than the whole budget, so the scatter
    // reaches it, burns out, and must still return shard 0's rows.
    service.inject_slow(1, Some(Duration::from_millis(80)));
    let got = service
        .search_topk(&corpus[0], 20, Duration::from_millis(15))
        .expect("partial answer, not an error");
    assert!(got.partial, "expiry mid-scatter must be flagged partial");
    assert_eq!(got.shards_answered, 1);
    // The completed slots are exactly shard 0's rows (global 0..10).
    assert!(got.neighbors.iter().all(|&(_, row)| row < 10));
    assert_eq!(got.neighbors[0], (0, 0), "row 0 still wins at distance 0");
}

#[test]
fn runtime_deadline_zero_budget_rejects_whole_batch_without_hanging() {
    // Satellite: DeadlinePolicy edge cases at the runtime layer.
    let array = ArrayConfig::paper_default().with_stages(8).with_rows(4);
    let corpus = seeded_corpus(4, 8, 4, 11);
    for policy in [
        DeadlinePolicy::WallClock(Duration::ZERO),
        DeadlinePolicy::QueryBudget(0),
    ] {
        let cfg = RuntimeConfig {
            deadline: policy,
            ..RuntimeConfig::default()
        };
        let mut engine =
            ResilientEngine::new(array, ResilienceConfig::default(), cfg).expect("engine");
        for (row, values) in corpus.iter().enumerate() {
            engine.store(row, values).expect("store");
        }
        let batch = BatchQuery::from_rows(&corpus).expect("batch");
        let outcome = engine.serve(&batch).expect("serve returns, not hangs");
        assert!(
            outcome
                .slots
                .iter()
                .all(|s| matches!(s, QueryOutcome::TimedOut)),
            "a zero budget must time out every slot explicitly ({policy:?})"
        );
        assert_eq!(outcome.answered(), 0);
    }
}

#[test]
fn runtime_mid_batch_expiry_keeps_completed_slots() {
    let array = ArrayConfig::paper_default().with_stages(8).with_rows(4);
    let corpus = seeded_corpus(4, 8, 4, 12);
    let cfg = RuntimeConfig {
        // Enough budget for exactly two of the four queries.
        deadline: DeadlinePolicy::QueryBudget(2),
        threads: Some(1),
        ..RuntimeConfig::default()
    };
    let mut engine = ResilientEngine::new(array, ResilienceConfig::default(), cfg).expect("engine");
    for (row, values) in corpus.iter().enumerate() {
        engine.store(row, values).expect("store");
    }
    let batch = BatchQuery::from_rows(&corpus).expect("batch");
    let outcome = engine.serve(&batch).expect("serve");
    assert_eq!(outcome.answered(), 2, "completed slots survive expiry");
    assert_eq!(
        outcome.timed_out(),
        2,
        "unstarted slots time out explicitly"
    );
    for (slot, result) in outcome.slots.iter().enumerate().take(2) {
        let metrics = result.ok().expect("first two slots answered");
        assert_eq!(metrics.best_row, Some(slot), "answers land in their slots");
    }
}

// ---------------------------------------------------------------------------
// Failover: probe-gated standby promotion
// ---------------------------------------------------------------------------

#[test]
fn crashed_shard_fails_over_to_probed_standby() {
    let corpus = test_corpus(30);
    let dir = scratch_dir("failover");
    let cfg = test_config(10);
    let service = ShardedService::new(&cfg, &corpus, Some(&dir)).expect("service");
    let encoding = ArrayConfig::paper_default().encoding;

    service.inject_crash(1);
    assert!(service.is_down(1));
    // The very next request triggers failover; the probe-gated standby
    // restores full, bit-identical coverage.
    let got = service
        .search_topk(&corpus[15], 30, GENEROUS)
        .expect("search");
    assert!(!got.partial, "promoted standby restores full coverage");
    let want = brute_force_topk(&corpus, encoding, &corpus[15], 30).expect("brute force");
    assert_eq!(got.neighbors, want, "post-failover answers stay exact");
    assert!(!service.is_down(1));
    let stats = service.service_stats();
    assert_eq!(stats.failovers, 1);
    assert_eq!(stats.probe_failures, 0);
    assert!(stats.restocks >= 1, "standby restocked after promotion");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_standby_is_not_promoted() {
    let corpus = test_corpus(30);
    let dir = scratch_dir("probe-gate");
    let service = ShardedService::new(&test_config(10), &corpus, Some(&dir)).expect("service");

    // Corrupt shard 1's live standby, then crash shard 1. The probes
    // must refuse the corrupt candidate; the *restocked* standby (from
    // the uncorrupted checkpoint generation) may then be promoted on a
    // later attempt — but never the corrupt one.
    service
        .inject_standby_fault(1, 3)
        .expect("standby fault injection");
    service.inject_crash(1);
    let got = service
        .search_topk(&corpus[0], 30, GENEROUS)
        .expect("search");
    let stats = service.service_stats();
    assert!(
        stats.probe_failures >= 1,
        "corrupt standby must flunk probes"
    );
    if got.partial {
        // Not yet failed over: shard 1's rows must be absent, not wrong.
        assert!(got
            .neighbors
            .iter()
            .all(|&(_, row)| !(10..20).contains(&row)));
    } else {
        // Promoted from a restock: answers must be exact.
        let encoding = ArrayConfig::paper_default().encoding;
        let want = brute_force_topk(&corpus, encoding, &corpus[0], 30).expect("brute force");
        assert_eq!(got.neighbors, want);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crashed_shard_without_standby_stays_down_and_partial() {
    let corpus = test_corpus(30);
    let service = ShardedService::new(&test_config(10), &corpus, None).expect("service");
    service.inject_crash(0);
    let got = service
        .search_topk(&corpus[25], 30, GENEROUS)
        .expect("search");
    assert!(got.partial, "no standby: the gap must be flagged");
    assert_eq!(got.shards_answered, 2);
    assert!(got.neighbors.iter().all(|&(_, row)| row >= 10));
    assert!(service.is_down(0), "nothing to promote");
}

#[test]
fn all_shards_down_is_unavailable_not_empty() {
    let corpus = test_corpus(20);
    let service = ShardedService::new(&test_config(10), &corpus, None).expect("service");
    service.inject_crash(0);
    service.inject_crash(1);
    let err = service
        .search_topk(&corpus[0], 3, GENEROUS)
        .expect_err("no shard can answer");
    assert!(matches!(err, ServeError::Unavailable), "got {err:?}");
}

// ---------------------------------------------------------------------------
// TCP front-end
// ---------------------------------------------------------------------------

#[test]
fn tcp_round_trip_serves_exact_topk_stats_and_info() {
    let corpus = test_corpus(30);
    let cfg = test_config(10);
    let service = Arc::new(ShardedService::new(&cfg, &corpus, None).expect("service"));
    let mut front = FrontEnd::start(Arc::clone(&service), &cfg, "127.0.0.1:0").expect("front-end");
    let encoding = ArrayConfig::paper_default().encoding;

    let mut client = ServeClient::connect(front.addr()).expect("connect");
    let info = client.info().expect("info");
    assert_eq!(info.stages, 16);
    assert_eq!(info.rows, 30);
    assert_eq!(info.shards, 3);

    for q in &seeded_corpus(8, 16, 4, 5) {
        let got = client.query(q, 7, GENEROUS).expect("query");
        assert!(got.complete());
        let want = brute_force_topk(&corpus, encoding, q, 7).expect("brute force");
        assert_eq!(got.neighbors, want, "wire answers equal brute force");
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.front.received, 8);
    assert_eq!(stats.front.answered, 8);
    assert_eq!(stats.service.requests, 8);
    assert_eq!(stats.service.complete, 8);
    assert_eq!(stats.shards.len(), 3);
    assert!(stats.shards.iter().all(|s| !s.down));
    // The stats endpoint surfaces per-shard engine runtime counters.
    assert!(stats.shards.iter().all(|s| s.stats.queries >= 8));
    assert!(stats.shards.iter().all(|s| s.stats.failed == 0));
    front.shutdown();
}

#[test]
fn malformed_query_over_tcp_is_an_error_reply_not_a_hang() {
    let corpus = test_corpus(20);
    let cfg = test_config(10);
    let service = Arc::new(ShardedService::new(&cfg, &corpus, None).expect("service"));
    let mut front = FrontEnd::start(Arc::clone(&service), &cfg, "127.0.0.1:0").expect("front-end");
    let mut client = ServeClient::connect(front.addr()).expect("connect");
    // Wrong width: 4 elements against a 16-stage corpus.
    let err = client
        .query(&[0, 1, 2, 3], 3, GENEROUS)
        .expect_err("shape mismatch must be rejected");
    assert!(matches!(err, ServeError::Protocol(_)), "got {err:?}");
    // The connection survives: a good query still works.
    let ok = client.query(&corpus[0], 1, GENEROUS).expect("query");
    assert_eq!(ok.neighbors[0], (0, 0));
    front.shutdown();
}

#[test]
fn overload_sheds_explicitly_with_queue_full_or_deadline() {
    let corpus = test_corpus(20);
    let mut cfg = test_config(10);
    // One worker, one queue slot, and a slow shard: concurrent clients
    // must overflow admission and surface *explicit* sheds.
    cfg.workers = 1;
    cfg.queue_capacity = 1;
    cfg.shard_breaker_threshold = 1_000_000; // keep shards in rotation
    let service = Arc::new(ShardedService::new(&cfg, &corpus, None).expect("service"));
    service.inject_slow(0, Some(Duration::from_millis(20)));
    let mut front = FrontEnd::start(Arc::clone(&service), &cfg, "127.0.0.1:0").expect("front-end");
    let addr = front.addr();

    let sheds: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let mut sheds = 0usize;
                    for q in &seeded_corpus(4, 16, 4, 3) {
                        match client.query(q, 3, Duration::from_millis(40)) {
                            Ok(_) => {}
                            Err(ServeError::Overloaded(_)) => sheds += 1,
                            Err(e) => panic!("only explicit sheds allowed, got {e:?}"),
                        }
                    }
                    sheds
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    assert!(sheds > 0, "overload must shed explicitly");
    let front_stats = front.front_stats();
    assert_eq!(
        front_stats.shed_queue + front_stats.shed_deadline,
        sheds,
        "every client-observed shed is accounted at the front-end"
    );
    front.shutdown();
}

// ---------------------------------------------------------------------------
// End-to-end chaos campaign
// ---------------------------------------------------------------------------

#[test]
fn serve_chaos_campaign_has_zero_silent_wrong_answers() {
    let dir = scratch_dir("chaos");
    let cfg = ServeChaosConfig::quick(Some(dir.clone()));
    let report = run_serve_chaos(&cfg).expect("campaign");
    assert_eq!(report.phases.len(), 5);
    assert_eq!(
        report.silent_wrong(),
        0,
        "an answer claiming to be complete must equal brute force: {report:?}"
    );
    // Failures were injected, so recovery machinery must have engaged.
    assert!(
        report.service.failovers >= 1,
        "crash/slow phases must drive standby promotion: {:?}",
        report.service
    );
    let steady = &report.phases[0];
    assert_eq!(
        steady.answered, steady.requests,
        "steady phase all answered"
    );
    assert_eq!(steady.silent_wrong + steady.flagged_mismatch, 0);
    let recovered = report.phases.last().expect("phases");
    assert!(
        recovered.answered >= recovered.requests * 9 / 10,
        "post-recovery service must be healthy: {recovered:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
