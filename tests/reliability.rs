//! Reliability integration: faults and aging against the application
//! layer — does the TD-AM's quantitative search keep the HDC workload
//! alive when hardware degrades?

use fetdam::fefet::retention::Lifetime;
use fetdam::hdc::datasets::{Dataset, DatasetKind};
use fetdam::hdc::encoder::IdLevelEncoder;
use fetdam::hdc::quantize::QuantizedModel;
use fetdam::hdc::train::HdcModel;
use fetdam::tdam::array::TdamArray;
use fetdam::tdam::config::ArrayConfig;
use fetdam::tdam::encoding::Encoding;
use fetdam::tdam::engine::SimilarityEngine;
use fetdam::tdam::faults::{build_faulty_array, FaultKind, FaultMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Classifies the test set through manually-tiled arrays so faults/aging
/// can be injected per tile.
fn hw_accuracy_with(
    quant: &QuantizedModel,
    enc: &IdLevelEncoder,
    test: &[(Vec<f64>, usize)],
    mutate_tile: impl Fn(usize, &mut TdamArray),
) -> f64 {
    let stages = 128;
    let dims = quant.dims();
    let chunks = dims.div_ceil(stages);
    let cfg = ArrayConfig::paper_default()
        .with_stages(stages)
        .with_rows(quant.classes())
        .with_encoding(Encoding::new(quant.bits()).expect("encoding"))
        .with_vdd(0.6);
    let mut tiles = Vec::new();
    for chunk in 0..chunks {
        let mut tile = TdamArray::new(cfg).expect("tile");
        for (row, hv) in quant.class_hvs().iter().enumerate() {
            let mut slice = vec![0u8; stages];
            let start = chunk * stages;
            let end = (start + stages).min(dims);
            slice[..end - start].copy_from_slice(&hv.levels()[start..end]);
            tile.store(row, &slice).expect("store");
        }
        mutate_tile(chunk, &mut tile);
        tiles.push(tile);
    }
    let mut correct = 0usize;
    for (x, label) in test {
        let h = enc.encode(x).expect("encode");
        let q = quant.quantize_query(&h).expect("quantize");
        let mut distances = vec![0usize; quant.classes()];
        for (chunk, tile) in tiles.iter().enumerate() {
            let mut slice = vec![0u8; stages];
            let start = chunk * stages;
            let end = (start + stages).min(dims);
            slice[..end - start].copy_from_slice(&q.levels()[start..end]);
            let outcome = TdamArray::search(tile, &slice).expect("search");
            for (r, row) in outcome.rows.iter().enumerate() {
                distances[r] += row.decoded_mismatches;
            }
        }
        let best = distances
            .iter()
            .enumerate()
            .min_by_key(|(_, &d)| d)
            .map(|(i, _)| i)
            .expect("classes");
        if best == *label {
            correct += 1;
        }
    }
    correct as f64 / test.len() as f64
}

fn setup() -> (Dataset, IdLevelEncoder, QuantizedModel) {
    let ds = Dataset::generate(DatasetKind::Ucihar, 30, 12, 404);
    let enc = IdLevelEncoder::new(2048, ds.features(), 32, (0.0, 1.0), 9).expect("encoder");
    let model = HdcModel::train(&enc, &ds.train, ds.classes(), 2).expect("train");
    let quant = QuantizedModel::from_model(&model, 2).expect("quantize");
    (ds, enc, quant)
}

#[test]
fn hdc_survives_scattered_faults() {
    let (ds, enc, quant) = setup();
    let clean = hw_accuracy_with(&quant, &enc, &ds.test, |_, _| {});
    // 1% of all cells stuck, randomly.
    let faulty = hw_accuracy_with(&quant, &enc, &ds.test, |chunk, tile| {
        let mut rng = StdRng::seed_from_u64(chunk as u64);
        let rows = quant.classes();
        let mut faults = FaultMap::new();
        for _ in 0..(rows * 128 / 100) {
            let kind = if rng.gen_bool(0.5) {
                FaultKind::StuckMismatch
            } else {
                FaultKind::StuckMatch
            };
            faults.inject(rng.gen_range(0..rows), rng.gen_range(0..128), kind);
        }
        // Rebuild the tile with faults applied to its stored content.
        let stored: Vec<Vec<u8>> = (0..rows).map(|r| tile.stored(r).expect("stored")).collect();
        *tile = build_faulty_array(tile.config(), &stored, &faults).expect("faulty array");
    });
    assert!(
        faulty >= clean - 0.08,
        "1% stuck cells should barely dent HDC accuracy: clean {clean:.3} vs faulty {faulty:.3}"
    );
    assert!(clean > 0.6, "baseline accuracy sanity: {clean}");
}

#[test]
fn hdc_survives_ten_year_retention() {
    let (ds, enc, quant) = setup();
    let clean = hw_accuracy_with(&quant, &enc, &ds.test, |_, _| {});
    let mut decade = Lifetime::fresh();
    decade.seconds = 3.15e8;
    decade.cycles = 1e6;
    let aged = hw_accuracy_with(&quant, &enc, &ds.test, |_, tile| {
        tile.age(&decade).expect("aging");
    });
    assert!(
        (aged - clean).abs() < 0.05,
        "10-year-aged accuracy {aged:.3} should match fresh {clean:.3}"
    );
}

#[test]
fn hdc_collapses_at_end_of_life() {
    let (ds, enc, quant) = setup();
    let mut dead = Lifetime::fresh();
    dead.cycles = 1e13; // far past fatigue
    let aged = hw_accuracy_with(&quant, &enc, &ds.test, |_, tile| {
        tile.age(&dead).expect("aging");
    });
    // With the window gone every cell reads the same; accuracy collapses
    // toward chance. (Guards that aging actually propagates to search.)
    assert!(
        aged < 0.5,
        "end-of-life hardware should not classify well: {aged:.3}"
    );
}
