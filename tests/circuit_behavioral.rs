//! Cross-layer agreement: the transient circuit simulator, the
//! circuit-extracted timing calibration, and the behavioral chain model
//! must tell one consistent story.

use fetdam::tdam::chain::DelayChain;
use fetdam::tdam::chain_circuit::CircuitChain;
use fetdam::tdam::config::{ArrayConfig, TechParams};
use fetdam::tdam::timing::StageTiming;

#[test]
fn circuit_calibrated_behavioral_tracks_full_circuit() {
    let cfg = ArrayConfig::paper_default().with_stages(8);
    let timing = StageTiming::from_circuit(&cfg.tech, cfg.c_load).expect("calibration");
    let behavioral = DelayChain::with_timing(&[1; 8], &cfg, timing).expect("chain");
    let circuit = CircuitChain::new(&[1; 8], &cfg).expect("circuit chain");

    for n_mis in [0usize, 4, 8] {
        let mut q = vec![1u8; 8];
        for item in q.iter_mut().take(n_mis) {
            *item = 2;
        }
        let d_beh = behavioral.evaluate(&q).expect("behavioral").total_delay;
        let d_ckt = circuit.evaluate(&q, false).expect("circuit").total_delay();
        let err = (d_beh - d_ckt).abs() / d_ckt;
        assert!(
            err < 0.30,
            "n_mis={n_mis}: behavioral {d_beh:.3e} vs circuit {d_ckt:.3e} ({:.0}% off)",
            err * 100.0
        );
    }
}

#[test]
fn analytic_timing_within_2x_of_circuit_extraction() {
    for vdd in [0.7, 0.9, 1.1] {
        let tech = TechParams::nominal_40nm().with_vdd(vdd);
        let analytic = StageTiming::analytic(&tech, 6e-15).expect("analytic");
        let circuit = StageTiming::from_circuit(&tech, 6e-15).expect("circuit");
        let ratio = circuit.d_c / analytic.d_c;
        assert!(
            (0.5..2.0).contains(&ratio),
            "V_DD={vdd}: circuit d_C {:.3e} vs analytic {:.3e}",
            circuit.d_c,
            analytic.d_c
        );
    }
}

#[test]
fn mismatch_penalty_tracks_load_capacitor_in_circuit() {
    // Quadrupling C_load should ~quadruple the circuit-extracted d_C.
    let tech = TechParams::nominal_40nm();
    let small = StageTiming::from_circuit(&tech, 6e-15).expect("6 fF");
    let big = StageTiming::from_circuit(&tech, 24e-15).expect("24 fF");
    let ratio = big.d_c / small.d_c;
    assert!(
        (3.0..5.5).contains(&ratio),
        "4x C_load should give ~4x d_C, got {ratio}"
    );
}

#[test]
fn two_step_total_equals_sum_of_step_delays() {
    let cfg = ArrayConfig::paper_default().with_stages(6);
    let circuit = CircuitChain::new(&[1; 6], &cfg).expect("chain");
    let q = [2u8, 1, 2, 1, 2, 1]; // mismatches on even stages only
    let r = circuit.evaluate(&q, false).expect("evaluate");
    assert!(
        (r.total_delay() - (r.rising.delay + r.falling.delay)).abs() < 1e-18,
        "total must be the sum of both step delays"
    );
    // All mismatches are on even stages → the rising step carries them.
    assert!(r.rising.delay > r.falling.delay);
}
