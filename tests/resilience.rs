//! Resilience integration: fault campaigns, write-verify repair, and
//! graceful HDC degradation exercised end-to-end through the public API.

use fetdam::fefet::programming::{
    program_vth_with_retry, ProgramConfig, ProgramError, RetryPolicy,
};
use fetdam::fefet::{Fefet, FefetParams};
use fetdam::hdc::datasets::{Dataset, DatasetKind};
use fetdam::hdc::encoder::IdLevelEncoder;
use fetdam::hdc::mapping::TdamHdcInference;
use fetdam::hdc::quantize::QuantizedModel;
use fetdam::hdc::train::HdcModel;
use fetdam::tdam::config::ArrayConfig;
use fetdam::tdam::faults::{FaultKind, FaultMap};
use fetdam::tdam::resilience::{
    run_campaign, CampaignConfig, CampaignFault, ResilienceConfig, ResilientArray,
};

/// The headline acceptance point: at a 1% hard-fault rate, spare-row
/// repair restores >= 99% exact-decode accuracy while the unprotected
/// array measurably degrades.
#[test]
fn repair_restores_decode_accuracy_at_one_percent_hard_faults() {
    let mut cfg = CampaignConfig::paper_default();
    cfg.array = cfg.array.with_rows(8);
    // Spares take cell faults at the swept rate too; two per data row
    // keeps the probability of the pool running dry negligible.
    cfg.resilience.spare_rows = 16;
    cfg.kinds = vec![CampaignFault::StuckMismatch];
    cfg.fault_rates = vec![0.01];
    cfg.trials = 12;
    cfg.queries = 24;

    cfg.repair = false;
    let raw = run_campaign(&cfg).expect("unrepaired campaign").points[0];
    cfg.repair = true;
    let rep = run_campaign(&cfg).expect("repaired campaign").points[0];

    assert!(
        rep.decode_accuracy >= 0.99,
        "repaired decode accuracy {:.3} below 0.99",
        rep.decode_accuracy
    );
    assert!(
        raw.decode_accuracy < 0.97,
        "unrepaired decode accuracy {:.3} should measurably degrade",
        raw.decode_accuracy
    );
    assert!(rep.decode_accuracy > raw.decode_accuracy);
}

/// Write-verify retries are provably bounded: a reachable target uses at
/// most `max_attempts`, and an unreachable target fails with
/// `VerifyFailed` instead of looping.
#[test]
fn write_verify_retry_is_bounded() {
    let policy = RetryPolicy {
        max_attempts: 3,
        amplitude_step: 0.5,
        max_amplitude: 6.5,
    };
    let cfg = ProgramConfig::default();

    let mut dev = Fefet::new(FefetParams::default());
    let target = cfg.vth_targets[1];
    let report = program_vth_with_retry(&mut dev, target, &cfg, &policy).expect("reachable target");
    assert!(
        (1..=policy.max_attempts).contains(&report.attempts),
        "attempts {} outside 1..={}",
        report.attempts,
        policy.max_attempts
    );

    // 10 V is far outside any achievable threshold: every escalated
    // attempt must fail verify and the flow must terminate with an error.
    let mut dev = Fefet::new(FefetParams::default());
    let err = program_vth_with_retry(&mut dev, 10.0, &cfg, &policy).unwrap_err();
    assert!(matches!(err, ProgramError::VerifyFailed { .. }), "{err:?}");
}

/// End-to-end detect → repair → search on a wrapped array: a stuck
/// shared-SL column and a broken chain are found by the reference rows,
/// the column is masked out digitally, the severed row moves to a spare,
/// and exact decoding comes back.
#[test]
fn detection_and_repair_recover_column_and_chain_faults() {
    let cfg = ArrayConfig::paper_default().with_stages(16).with_rows(4);
    let res = ResilienceConfig {
        spare_rows: 2,
        ..ResilienceConfig::default()
    };
    let mut arr = ResilientArray::new(cfg, res).expect("resilient array");
    let patterns: Vec<Vec<u8>> = (0..4)
        .map(|i| (0..16).map(|j| ((i + j) % 4) as u8).collect())
        .collect();
    for (i, p) in patterns.iter().enumerate() {
        arr.store(i, p).expect("store");
    }
    arr.stuck_column(5).expect("stuck column");
    arr.break_stage(arr.physical_row(2).expect("phys"), 9)
        .expect("broken stage");

    let detection = arr.check().expect("check");
    assert!(!detection.all_clear());
    assert!(detection.suspect_stages.contains(&5), "{detection:?}");

    arr.repair(&detection).expect("repair");
    assert!(arr.masked_stages().contains(&5));

    for (i, p) in patterns.iter().enumerate() {
        let outcome = arr.search(p).expect("search");
        assert_eq!(
            outcome.rows[i].decoded, 0,
            "row {i} should exact-match its own pattern after repair"
        );
        assert_eq!(outcome.best_row(), Some(i));
    }
    let summary = arr.degradation();
    assert!(summary.remapped_rows >= 1, "{summary:?}");
}

/// Hard faults on a deployed HDC tile corrupt the hardware Hamming
/// metric; masking the faulty dimensions restores exact fidelity to the
/// software metric over the surviving dimensions, and accuracy stays
/// close to the fault-free deployment.
#[test]
fn hdc_dimension_masking_recovers_metric_fidelity() {
    let ds = Dataset::generate(DatasetKind::Face, 30, 12, 77);
    let enc = IdLevelEncoder::new(512, ds.features(), 32, (0.0, 1.0), 8).expect("encoder");
    let model = HdcModel::train(&enc, &ds.train, ds.classes(), 2).expect("train");
    let quant = QuantizedModel::from_model(&model, 2).expect("quantize");

    let accuracy = |hw: &TdamHdcInference| {
        let mut correct = 0usize;
        for (x, label) in &ds.test {
            let h = enc.encode(x).expect("encode");
            let q = quant.quantize_query(&h).expect("quantize query");
            if hw.classify(&q).expect("classify").class == *label {
                correct += 1;
            }
        }
        correct as f64 / ds.test.len() as f64
    };
    // Software Hamming distance over the non-excluded packed dimensions.
    let sw_distance = |row: usize, q: &[u8], excluded: &[usize]| {
        quant.class_hvs()[row]
            .levels()
            .iter()
            .zip(q)
            .enumerate()
            .filter(|(i, (s, q))| !excluded.contains(i) && s != q)
            .count()
    };

    let baseline = accuracy(&TdamHdcInference::new(&quant, 128, 0.6).expect("hw"));

    let mut hw = TdamHdcInference::new(&quant, 128, 0.6).expect("hw");
    let mut faults = FaultMap::new();
    for k in 0..40 {
        faults.inject(0, k * 3, FaultKind::StuckMismatch);
    }
    hw.inject_tile_faults(0, &faults).expect("inject");

    // Faults inflate row 0's hardware distance above the true metric.
    let mut inflation = 0usize;
    for (x, _) in ds.test.iter().take(10) {
        let h = enc.encode(x).expect("encode");
        let q = quant.quantize_query(&h).expect("quantize query");
        let hw_d = hw.classify(&q).expect("classify").distances[0];
        let sw_d = sw_distance(0, q.levels(), &[]);
        assert!(hw_d >= sw_d, "stuck-mismatch can only add distance");
        inflation += hw_d - sw_d;
    }
    assert!(
        inflation > 0,
        "40 stuck-mismatch cells must corrupt the metric"
    );

    let dims = hw.faulty_dimensions();
    assert_eq!(dims.len(), 40);
    hw.apply_dimension_mask(&dims).expect("mask");
    assert_eq!(hw.masked_dimensions(), 40);
    assert!(hw.degradation_fraction() > 0.0);

    // After masking, every row's hardware distance equals the software
    // metric restricted to the surviving dimensions — exactly.
    for (x, _) in ds.test.iter().take(10) {
        let h = enc.encode(x).expect("encode");
        let q = quant.quantize_query(&h).expect("quantize query");
        let result = hw.classify(&q).expect("classify");
        for row in 0..quant.classes() {
            assert_eq!(
                result.distances[row],
                sw_distance(row, q.levels(), &dims),
                "masked hardware metric must match software over surviving dims"
            );
        }
    }

    let masked = accuracy(&hw);
    assert!(
        masked >= baseline - 0.1,
        "masked accuracy {masked:.3} should stay near baseline {baseline:.3}"
    );
}
