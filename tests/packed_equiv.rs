//! Equivalence acceptance suite for the bit-sliced packed serving kernel
//! (`tdam::packed`): across every encoding width, ragged (non-multiple-
//! of-64) stage counts, and seeded random contents, the packed path's
//! mismatch counts, TDC counts, decoded distances, and winners must be
//! **exactly identical** to the behavioral model, its per-row energies
//! bitwise equal, and its reconstructed delays within the documented ulp
//! bound. Fault-masked and spare-remapped resilient arrays must keep the
//! same contract through `resolve_outcome`, and a `ResilientEngine`
//! checkpoint/restore round trip must come back serving the packed
//! compiled tier.

use fetdam::tdam::array::TdamArray;
use fetdam::tdam::config::ArrayConfig;
use fetdam::tdam::encoding::Encoding;
use fetdam::tdam::engine::{BatchQuery, SimilarityEngine};
use fetdam::tdam::faults::FaultKind;
use fetdam::tdam::packed::PackedKernel;
use fetdam::tdam::resilience::{ResilienceConfig, ResilientArray};
use fetdam::tdam::runtime::{BackendKind, ResilientEngine, RuntimeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The documented reconstruction bound: both the behavioral and packed
/// delay figures are correctly-rounded sums of the same `N + k ≤ 1.5·N`
/// positive terms (`k` mismatches out of up to `N/2` per step), replayed
/// in different orders, so they agree to `2·(1.5·N + 2)·ε` relative.
fn delay_close(a: f64, b: f64, stages: usize) -> bool {
    let bound = 2.0 * (1.5 * stages as f64 + 2.0) * f64::EPSILON * a.abs().max(b.abs());
    (a - b).abs() <= bound
}

fn seeded_array(bits: u8, stages: usize, rows: usize, seed: u64) -> (TdamArray, StdRng) {
    let cfg = ArrayConfig::paper_default()
        .with_encoding(Encoding::new(bits).expect("encoding"))
        .with_stages(stages)
        .with_rows(rows);
    let levels = cfg.encoding.levels() as u32;
    let mut am = TdamArray::new(cfg).expect("array");
    let mut rng = StdRng::seed_from_u64(seed);
    for row in 0..rows {
        let values: Vec<u8> = (0..stages)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        am.store(row, &values).expect("store");
    }
    (am, rng)
}

/// Core randomized property: every encoding × ragged widths × random
/// contents/queries — exact decisions, bitwise row energies, ulp-bounded
/// delays.
#[test]
fn packed_counts_winners_and_energies_match_behavioral() {
    const ROWS: usize = 8;
    const QUERIES: usize = 12;
    for bits in 1..=4u8 {
        for stages in [5usize, 63, 64, 65, 127, 130] {
            let seed = 0x9ACC_ED00 ^ ((bits as u64) << 32) ^ stages as u64;
            let (am, mut rng) = seeded_array(bits, stages, ROWS, seed);
            let levels = 1u32 << bits;
            let compiled = am.compile();
            assert_eq!(
                compiled.packed_rows(),
                ROWS,
                "{bits}-bit {stages}-stage: all nominal rows pack"
            );
            for _ in 0..QUERIES {
                let q: Vec<u8> = (0..stages)
                    .map(|_| rng.gen_range(0..levels) as u8)
                    .collect();
                let reference = TdamArray::search(&am, &q).expect("behavioral");
                let packed = compiled.search_packed(&q).expect("packed");
                let ctx = format!("{bits}-bit {stages}-stage seed {seed:#x}");

                // The decision layer: exactly identical.
                assert_eq!(packed.best_row(), reference.best_row(), "{ctx}: winner");
                assert_eq!(packed.decoded(), reference.decoded(), "{ctx}: decode");
                for (row, (p, r)) in packed.rows.iter().zip(&reference.rows).enumerate() {
                    assert_eq!(
                        p.chain.mismatches, r.chain.mismatches,
                        "{ctx} row {row}: mismatches"
                    );
                    assert_eq!(
                        p.chain.even_mismatches, r.chain.even_mismatches,
                        "{ctx} row {row}: even"
                    );
                    assert_eq!(
                        p.chain.odd_mismatches, r.chain.odd_mismatches,
                        "{ctx} row {row}: odd"
                    );
                    assert_eq!(p.count, r.count, "{ctx} row {row}: TDC count");
                    // Per-row energies follow the same repeated-addition
                    // discipline in both paths: bitwise equal.
                    assert_eq!(p.chain.energy, r.chain.energy, "{ctx} row {row}: energy");
                    // Reconstructed delays: ulp-bounded, never exact by
                    // construction (position-dependent f64 sums).
                    for (d_p, d_r) in [
                        (p.chain.rising_delay, r.chain.rising_delay),
                        (p.chain.falling_delay, r.chain.falling_delay),
                        (p.chain.total_delay, r.chain.total_delay),
                    ] {
                        assert!(
                            delay_close(d_p, d_r, stages),
                            "{ctx} row {row}: delay {d_p:e} vs {d_r:e}"
                        );
                    }
                }
                assert!(
                    delay_close(packed.latency, reference.latency, stages),
                    "{ctx}: latency"
                );
                assert_eq!(
                    packed.energy, reference.energy,
                    "{ctx}: array energy (identical counts ⇒ identical TDC energies)"
                );
            }
        }
    }
}

/// Batched serving (the `SimilarityEngine` override) carries the same
/// contract as the single-query packed path, for every thread count.
#[test]
fn packed_batch_decisions_match_behavioral_for_any_thread_count() {
    let (am, mut rng) = seeded_array(2, 100, 6, 0x0BA7_C0DE);
    let mut batch = BatchQuery::new(100);
    for _ in 0..17 {
        let q: Vec<u8> = (0..100).map(|_| rng.gen_range(0..4u32) as u8).collect();
        batch.push(&q).expect("push");
    }
    let reference: Vec<_> = batch
        .iter()
        .map(|q| TdamArray::search(&am, q).expect("behavioral"))
        .collect();
    let compiled = am.compile();
    let one = compiled.search_batch(&batch, Some(1)).expect("packed");
    for (i, (got, want)) in one.iter().zip(&reference).enumerate() {
        assert_eq!(got.best_row(), want.best_row(), "query {i}: winner");
        assert_eq!(got.decoded(), want.decoded(), "query {i}: decode");
    }
    // The decision-only path carries the same exactness, and is bitwise
    // thread-count invariant (it is all-integer output).
    let decisions = compiled.decide_batch(&batch, Some(1)).expect("decide");
    for (i, (got, want)) in decisions.iter().zip(&reference).enumerate() {
        assert_eq!(got.best_row, want.best_row(), "decision {i}: winner");
        assert_eq!(got.distances, want.decoded(), "decision {i}: distances");
    }
    for threads in [Some(2), Some(3), Some(7), None] {
        assert_eq!(
            compiled.search_batch(&batch, threads).expect("packed"),
            one,
            "thread-count invariance ({threads:?})"
        );
        assert_eq!(
            compiled.decide_batch(&batch, threads).expect("decide"),
            decisions,
            "decision thread-count invariance ({threads:?})"
        );
    }
}

/// A variation-perturbed row falls back to the behavioral model inside
/// the packed batch path and stays bit-identical there.
#[test]
fn perturbed_rows_fall_back_inside_packed_path() {
    let (mut am, mut rng) = seeded_array(2, 70, 5, 0xFA11_BACC);
    let cells = (0..70)
        .map(|_| {
            fetdam::tdam::cell::Cell::with_vth(1, am.config().encoding, 0.63, 1.02).expect("cell")
        })
        .collect();
    am.store_cells(2, cells).expect("store_cells");
    let compiled = am.compile();
    assert_eq!(compiled.packed_rows(), 4, "perturbed row must not pack");
    let mut batch = BatchQuery::new(70);
    for _ in 0..6 {
        let q: Vec<u8> = (0..70).map(|_| rng.gen_range(0..4u32) as u8).collect();
        let reference = TdamArray::search(&am, &q).expect("behavioral");
        let packed = compiled.search_packed(&q).expect("packed");
        assert_eq!(packed.best_row(), reference.best_row());
        assert_eq!(packed.decoded(), reference.decoded());
        // The fallback row is served by the same behavioral arithmetic:
        // bit-identical, not just ulp-close.
        assert_eq!(packed.rows[2], reference.rows[2]);
        batch.push(&q).expect("push");
    }
    // The decision-only path routes the perturbed row through the same
    // behavioral fallback.
    for (decision, q) in compiled
        .decide_batch(&batch, Some(1))
        .expect("decide")
        .iter()
        .zip(batch.iter())
    {
        let reference = TdamArray::search(&am, q).expect("behavioral");
        assert_eq!(decision.best_row, reference.best_row());
        assert_eq!(decision.distances, reference.decoded());
    }
}

/// Every rung of the dispatch ladder — plain scalar, hand-unrolled, and
/// the wide SIMD rung when the build and CPU offer it — produces
/// bit-identical outcomes, winners, and distances, for every thread
/// count. The scalar rung is first pinned against the behavioral model,
/// then each wider rung is pinned against the scalar rung's exact
/// output.
#[test]
fn dispatch_ladder_rungs_are_bit_identical_across_thread_counts() {
    const STAGES: usize = 130; // ragged: exercises the partial last word
    let (am, mut rng) = seeded_array(3, STAGES, 40, 0x1ADD_E200);
    let mut batch = BatchQuery::new(STAGES);
    // 29 queries: not a multiple of the 8-query tile, so the ragged tail
    // tile is exercised on every rung.
    for _ in 0..29 {
        let q: Vec<u8> = (0..STAGES).map(|_| rng.gen_range(0..8u32) as u8).collect();
        batch.push(&q).expect("push");
    }
    let mut compiled = am.compile();
    assert!(
        compiled.force_kernel(PackedKernel::Scalar),
        "the scalar rung is always available"
    );
    let outcomes = compiled.search_batch(&batch, Some(1)).expect("search");
    let decisions = compiled.decide_batch(&batch, Some(1)).expect("decide");
    for (i, (got, q)) in outcomes.iter().zip(batch.iter()).enumerate() {
        let want = TdamArray::search(&am, q).expect("behavioral");
        assert_eq!(got.best_row(), want.best_row(), "scalar query {i}: winner");
        assert_eq!(got.decoded(), want.decoded(), "scalar query {i}: decode");
    }
    for rung in [PackedKernel::Unrolled, PackedKernel::Simd] {
        if !compiled.force_kernel(rung) {
            // Only the SIMD rung may be absent (feature off, or no wide
            // CPU path); a refused force must leave the ladder serving.
            assert_eq!(rung, PackedKernel::Simd, "unrolled is always available");
            continue;
        }
        for threads in [Some(1), Some(3), None] {
            assert_eq!(
                compiled.search_batch(&batch, threads).expect("search"),
                outcomes,
                "{rung:?} ({threads:?}): outcomes must be bit-identical to scalar"
            );
            assert_eq!(
                compiled.decide_batch(&batch, threads).expect("decide"),
                decisions,
                "{rung:?} ({threads:?}): decisions must be bit-identical to scalar"
            );
        }
    }
}

/// The same ladder pin through the owned-snapshot drivers (the serving
/// runtime's tier), plus the single-query packed path on each rung.
#[test]
fn snapshot_dispatch_ladder_matches_scalar_rung() {
    const STAGES: usize = 64;
    let (am, mut rng) = seeded_array(2, STAGES, 24, 0x5A95_0FF0);
    let queries: Vec<Vec<u8>> = (0..9)
        .map(|_| (0..STAGES).map(|_| rng.gen_range(0..4u32) as u8).collect())
        .collect();
    let mut batch = BatchQuery::new(STAGES);
    for q in &queries {
        batch.push(q).expect("push");
    }
    let mut snap = am.compile_snapshot();
    assert!(snap.force_kernel(PackedKernel::Scalar));
    let outcomes = snap.search_batch(&am, &batch, Some(1)).expect("search");
    let decisions = snap.decide_batch(&am, &batch, Some(1)).expect("decide");
    for rung in [PackedKernel::Unrolled, PackedKernel::Simd] {
        if !snap.force_kernel(rung) {
            continue;
        }
        assert_eq!(snap.kernel(), rung, "forced rung must be reported back");
        assert_eq!(
            snap.search_batch(&am, &batch, None).expect("search"),
            outcomes,
            "{rung:?}: snapshot batch"
        );
        assert_eq!(
            snap.decide_batch(&am, &batch, None).expect("decide"),
            decisions,
            "{rung:?}: snapshot decisions"
        );
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                snap.search_packed(&am, q).expect("single"),
                outcomes[i],
                "{rung:?}: single-query path, query {i}"
            );
        }
    }
}

/// Online mutation equivalence: after a random sequence of row rewrites,
/// a snapshot surgically refreshed with `refresh_rows` must be
/// bit-identical to a from-scratch `compile_snapshot` — counts, winners,
/// decisions, and energies — on every rung of the dispatch ladder and
/// for every thread count. This is the incremental-repack contract the
/// serving runtime leans on: a repacked snapshot is indistinguishable
/// from a full recompile.
#[test]
fn incrementally_repacked_snapshots_match_recompile_on_every_rung() {
    const STAGES: usize = 130; // ragged: repack must refill the partial word
    const ROWS: usize = 12;
    for (bits, seed) in [(1u8, 0xD127_0000u64), (2, 0xD127_0001), (4, 0xD127_0004)] {
        let (mut am, mut rng) = seeded_array(bits, STAGES, ROWS, seed);
        let levels = 1u32 << bits;
        let mut snap = am.compile_snapshot();

        // A random write sequence: repeated rewrites, including rows hit
        // more than once, interleaved across three refresh rounds so the
        // snapshot is surgically patched from several distinct baselines.
        for round in 0..3 {
            let mut touched = std::collections::BTreeSet::new();
            for _ in 0..6 {
                let row = rng.gen_range(0..ROWS);
                let values: Vec<u8> = (0..STAGES)
                    .map(|_| rng.gen_range(0..levels) as u8)
                    .collect();
                am.store(row, &values).expect("store");
                touched.insert(row);
            }
            let repacked = snap.refresh_rows(&am, touched.iter().copied());
            assert_eq!(
                repacked,
                touched.len(),
                "round {round}: every touched row repacks exactly once"
            );
        }

        let mut fresh = am.compile_snapshot();
        let mut batch = BatchQuery::new(STAGES);
        for _ in 0..11 {
            let q: Vec<u8> = (0..STAGES)
                .map(|_| rng.gen_range(0..levels) as u8)
                .collect();
            batch.push(&q).expect("push");
        }
        for rung in [
            PackedKernel::Scalar,
            PackedKernel::Unrolled,
            PackedKernel::Simd,
        ] {
            if !snap.force_kernel(rung) {
                assert_eq!(rung, PackedKernel::Simd, "only SIMD may be absent");
                continue;
            }
            assert!(fresh.force_kernel(rung), "rung parity between snapshots");
            assert_eq!(
                snap.search_batch(&am, &batch, Some(1)).expect("refreshed"),
                fresh
                    .search_batch(&am, &batch, Some(1))
                    .expect("recompiled"),
                "{bits}-bit {rung:?}: repacked outcomes must be bit-identical"
            );
            for threads in [Some(3), None] {
                assert_eq!(
                    snap.decide_batch(&am, &batch, threads).expect("refreshed"),
                    fresh
                        .decide_batch(&am, &batch, threads)
                        .expect("recompiled"),
                    "{bits}-bit {rung:?} ({threads:?}): repacked decisions"
                );
            }
            for (i, q) in batch.iter().enumerate() {
                assert_eq!(
                    snap.search_packed(&am, q).expect("refreshed"),
                    fresh.search_packed(&am, q).expect("recompiled"),
                    "{bits}-bit {rung:?}: single-query path, query {i}"
                );
            }
        }
    }
}

fn resilient(stages: usize, data_rows: usize, seed: u64) -> (ResilientArray, StdRng) {
    let cfg = ArrayConfig::paper_default()
        .with_stages(stages)
        .with_rows(data_rows);
    let res = ResilienceConfig {
        spare_rows: 2,
        reference_rows: 2,
        ..Default::default()
    };
    let mut ra = ResilientArray::new(cfg, res).expect("resilient array");
    let mut rng = StdRng::seed_from_u64(seed);
    for row in 0..data_rows {
        let values: Vec<u8> = (0..stages).map(|_| rng.gen_range(0..4u32) as u8).collect();
        ra.store(row, &values).expect("store");
    }
    (ra, rng)
}

/// A stuck column is detected, masked by repair, and the masked packed
/// view then (a) readmits every row to the kernel and (b) reproduces the
/// decode-corrected distances of the behavioral resilient path exactly.
#[test]
fn masked_columns_serve_packed_with_identical_corrected_decode() {
    const STAGES: usize = 66; // ragged: masked stage in the second word
    const DATA: usize = 5;
    let (mut ra, mut rng) = resilient(STAGES, DATA, 0x057A_CC01);
    ra.stuck_column(65).expect("stuck column");
    let detection = ra.check().expect("check");
    assert!(
        !detection.suspect_stages.is_empty(),
        "stuck column must be localized"
    );
    ra.repair(&detection).expect("repair");
    assert_eq!(ra.masked_stages(), vec![65], "column must be masked");

    // Unmasked packing refuses the faulted rows; the masked view packs
    // every row again.
    let unmasked = ra.array().compile().packed_rows();
    assert_eq!(unmasked, 0, "stuck column poisons every physical row");
    let packed = ra.packed_view();
    let mut scratch = packed.scratch();
    assert_eq!(
        packed.packed_rows(),
        ra.array().config().rows,
        "masking the stuck column readmits every row"
    );

    for _ in 0..8 {
        let q: Vec<u8> = (0..STAGES).map(|_| rng.gen_range(0..4u32) as u8).collect();
        let behavioral = ra.search(&q).expect("resilient search");
        packed.expand_query(&q, &mut scratch);
        for logical in 0..DATA {
            let phys = ra.physical_row(logical).expect("phys");
            let (even, odd) = packed.row_mismatches(phys, &scratch);
            assert_eq!(
                even + odd,
                behavioral.rows[logical].decoded,
                "logical row {logical}: masked packed count must equal the \
                 decode-corrected behavioral distance"
            );
        }
    }
}

/// After repair remaps damaged rows onto spares, the packed physical
/// path + `resolve_outcome` reproduces the behavioral resilient search's
/// decisions exactly.
#[test]
fn spare_remapped_rows_resolve_identically_through_packed_path() {
    const STAGES: usize = 40;
    const DATA: usize = 4;
    let (mut ra, mut rng) = resilient(STAGES, DATA, 0x5BA2E);
    // Concentrated damage on logical row 1: enough stuck cells that
    // write-verify cannot heal it and repair reaches for a spare.
    for stage in 0..6 {
        ra.inject(1, stage * 3, FaultKind::StuckMismatch)
            .expect("inject");
    }
    let detection = ra.check().expect("check");
    ra.repair(&detection).expect("repair");
    let remapped = ra.physical_row(1).expect("phys");
    assert!(
        remapped >= DATA,
        "row 1 must be remapped onto a spare (got physical {remapped})"
    );

    let snap = ra.array().compile_snapshot();
    for _ in 0..8 {
        let q: Vec<u8> = (0..STAGES).map(|_| rng.gen_range(0..4u32) as u8).collect();
        let behavioral = ra.search(&q).expect("behavioral resilient");
        let physical = snap.search_packed(ra.array(), &q).expect("packed");
        let resolved = ra.resolve_outcome(&physical);
        for (logical, (got, want)) in resolved.rows.iter().zip(&behavioral.rows).enumerate() {
            assert_eq!(
                got.decoded, want.decoded,
                "logical row {logical}: packed+resolve decode"
            );
            assert_eq!(got.count, want.count, "logical row {logical}: TDC count");
            assert_eq!(got.health, want.health, "logical row {logical}: health");
        }
    }
}

/// The serving runtime round trip: an engine serving the packed compiled
/// tier is checkpointed, restored (conservatively on the behavioral
/// backend), re-promoted by its first health probe, and then serves the
/// packed tier again with identical decisions.
#[test]
fn resilient_engine_serves_packed_through_checkpoint_restore() {
    const STAGES: usize = 24;
    const DATA: usize = 5;
    let cfg = ArrayConfig::paper_default()
        .with_stages(STAGES)
        .with_rows(DATA);
    let res = ResilienceConfig {
        spare_rows: 1,
        reference_rows: 2,
        ..Default::default()
    };
    let mut engine = ResilientEngine::new(cfg, res, RuntimeConfig::default()).expect("engine");
    let mut rng = StdRng::seed_from_u64(0xC4EC_409E);
    let mut stored = Vec::new();
    for row in 0..DATA {
        let values: Vec<u8> = (0..STAGES).map(|_| rng.gen_range(0..4u32) as u8).collect();
        engine.store(row, &values).expect("store");
        stored.push(values);
    }
    let mut batch = BatchQuery::new(STAGES);
    for values in &stored {
        let mut q = values.clone();
        q[3] ^= 1;
        batch.push(&q).expect("push");
    }

    let before = engine.serve(&batch).expect("serve before checkpoint");
    assert_eq!(before.backend, BackendKind::CompiledLut);
    let state = engine.checkpoint();

    let mut restored = ResilientEngine::restore(&state, RuntimeConfig::default()).expect("restore");
    // Restore is conservative: behavioral until a probe passes. The first
    // serve runs that probe and re-promotes.
    let first = restored.serve(&batch).expect("first serve after restore");
    assert_eq!(first.best_rows(), before.best_rows());
    let second = restored.serve(&batch).expect("second serve after restore");
    assert_eq!(
        second.backend,
        BackendKind::CompiledLut,
        "restored engine must re-promote to the packed compiled tier"
    );
    assert_eq!(second.best_rows(), before.best_rows());
    for (slot, outcome) in second.slots.iter().enumerate() {
        let metrics = outcome.ok().expect("answered slot");
        // Near-match batches have one flipped element: the winner is the
        // matching stored row at distance 1.
        assert_eq!(metrics.best_row, Some(slot), "slot {slot}");
    }
}
