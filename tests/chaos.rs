//! Chaos acceptance suite for the fault-tolerant serving runtime
//! ([`tdam::runtime`]): seeded campaigns of injected persistent cell
//! faults plus worker panics must keep ≥ 99% of query traffic answered
//! with **zero** silent wrong answers, replay bit-identically for a fixed
//! seed, honor deadline budgets with partial results in the right slots,
//! and — on a healthy backend — serve answers bit-identical to the bare
//! engine.

use fetdam::tdam::config::ArrayConfig;
use fetdam::tdam::engine::BatchQuery;
use fetdam::tdam::resilience::{ResilienceConfig, ResilientArray};
use fetdam::tdam::runtime::{
    run_chaos, BackendKind, ChaosConfig, DeadlinePolicy, QueryOutcome, ResilientEngine,
    RuntimeConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Silences the default panic hook for the duration of a closure, so the
/// chaos campaigns' *caught* injected panics don't spray backtraces over
/// the test output. Returns the closure's value.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    let _ = std::panic::take_hook();
    out
}

/// A populated runtime engine plus the ground-truth rows it stores.
fn seeded_engine(
    rows: usize,
    stages: usize,
    cfg: RuntimeConfig,
    seed: u64,
) -> (ResilientEngine, Vec<Vec<u8>>) {
    let array = ArrayConfig::paper_default()
        .with_stages(stages)
        .with_rows(rows);
    let resilience = ResilienceConfig {
        spare_rows: 4,
        ..ResilienceConfig::default()
    };
    let mut engine = ResilientEngine::new(array, resilience, cfg).expect("engine");
    let levels = ArrayConfig::paper_default().encoding.levels();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(rows);
    for row in 0..rows {
        let values: Vec<u8> = (0..stages).map(|_| rng.gen_range(0..levels)).collect();
        engine.store(row, &values).expect("store");
        data.push(values);
    }
    (engine, data)
}

#[test]
fn chaos_campaign_sustains_availability_with_no_silent_wrong() {
    // The acceptance point: 1% cumulative cell faults drip-fed across the
    // campaign plus 2% per-attempt worker panics.
    let cfg = ChaosConfig::paper_default();
    assert_eq!(cfg.fault_rate, 0.01);
    assert_eq!(cfg.panic_rate, 0.02);
    let report = quiet_panics(|| run_chaos(&cfg)).expect("chaos campaign");
    assert_eq!(report.total_queries, cfg.batches * cfg.batch_size);
    assert!(
        report.availability() >= 0.99,
        "availability {:.4} under 1% faults + panics",
        report.availability()
    );
    assert_eq!(
        report.silent_wrong, 0,
        "a wrong answer was served without a degradation flag"
    );
    // The campaign actually injected damage — this is not a vacuous pass.
    assert!(report.faults_injected > 0);
}

#[test]
fn chaos_campaign_replays_bit_identically_for_a_fixed_seed() {
    let mut cfg = ChaosConfig::paper_default();
    cfg.batches = 10;
    cfg.batch_size = 16;
    let (first, second) = quiet_panics(|| (run_chaos(&cfg), run_chaos(&cfg)));
    let first = first.expect("first run");
    assert_eq!(first, second.expect("second run"), "same seed must replay");

    // Thread count is part of the schedule, not the result.
    let mut threaded = cfg.clone();
    threaded.runtime.threads = Some(3);
    let third = quiet_panics(|| run_chaos(&threaded)).expect("threaded run");
    assert_eq!(first, third, "thread count changed the outcome");

    // A different seed must actually change something (the injected fault
    // sites if nothing else), or the determinism test proves nothing.
    let mut reseeded = cfg;
    reseeded.seed ^= 0xDEAD_BEEF;
    let fourth = quiet_panics(|| run_chaos(&reseeded)).expect("reseeded run");
    assert_ne!(first, fourth, "campaign ignores its seed");
}

#[test]
fn deadline_expiry_returns_partial_results_in_the_right_slots() {
    let budget = 5;
    let cfg = RuntimeConfig {
        deadline: DeadlinePolicy::QueryBudget(budget),
        ..RuntimeConfig::default()
    };
    let (mut engine, data) = seeded_engine(8, 16, cfg, 0x0DD5);
    let batch = BatchQuery::from_rows(&data).expect("batch");
    let outcome = engine.serve(&batch).expect("serve");
    assert_eq!(outcome.slots.len(), data.len());
    for (slot, outcome) in outcome.slots.iter().enumerate() {
        match outcome {
            QueryOutcome::Ok(m) if slot < budget => {
                // Exact-match queries in slot order: slot i's best row is i.
                assert_eq!(m.best_row, Some(slot), "answered slot {slot}");
            }
            QueryOutcome::TimedOut if slot >= budget => {}
            other => panic!("slot {slot}: unexpected outcome {other:?}"),
        }
    }
    assert_eq!(outcome.answered(), budget);
    assert_eq!(outcome.timed_out(), data.len() - budget);
}

#[test]
fn healthy_runtime_is_bit_identical_to_the_bare_engine() {
    let (mut engine, data) = seeded_engine(6, 24, RuntimeConfig::default(), 0xB17);

    // The bare reference: the same resilient array, searched directly.
    let array = ArrayConfig::paper_default().with_stages(24).with_rows(6);
    let mut bare = ResilientArray::new(
        array,
        ResilienceConfig {
            spare_rows: 4,
            ..ResilienceConfig::default()
        },
    )
    .expect("bare array");
    for (row, values) in data.iter().enumerate() {
        bare.store(row, values).expect("store");
    }

    let mut rng = StdRng::seed_from_u64(0x9001);
    let mut batch = BatchQuery::new(24);
    let levels = ArrayConfig::paper_default().encoding.levels();
    for _ in 0..12 {
        let q: Vec<u8> = (0..24).map(|_| rng.gen_range(0..levels)).collect();
        batch.push(&q).expect("push");
    }

    let outcome = engine.serve(&batch).expect("serve");
    assert_eq!(outcome.backend, BackendKind::CompiledLut);
    assert_eq!(outcome.availability(), 1.0);
    for (i, slot) in outcome.slots.iter().enumerate() {
        let served = slot.ok().expect("answered");
        let reference = bare.search(batch.get(i)).expect("bare search").metrics();
        assert_eq!(served, &reference, "slot {i} diverged from the bare engine");
    }
}
