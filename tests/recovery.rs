//! Durable-state acceptance suite for [`fetdam::tdam::store`]: a clean
//! checkpoint → restore → `search_batch` must be bit-identical to the
//! pre-restart engine; journaled post-checkpoint mutations must replay
//! after a simulated crash; aged arrays must round-trip their decode
//! exactly; a restore must invalidate stale compiled snapshots; damaged
//! files must be detected and recovery must fall back to the last good
//! generation; and the full seeded crash-injection campaign (≥ 1000
//! scenarios) must report zero silent corruptions.

use fetdam::tdam::config::ArrayConfig;
use fetdam::tdam::engine::BatchQuery;
use fetdam::tdam::faults::FaultKind;
use fetdam::tdam::resilience::ResilienceConfig;
use fetdam::tdam::runtime::{BackendKind, ResilientEngine, RetryConfig, RuntimeConfig};
use fetdam::tdam::store::{
    run_crash_chaos, CheckpointStore, CrashChaosConfig, DurableEngine, StoreError,
};
use fetdam::tdam::TdamError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use tdam_fefet::retention::Lifetime;

const STAGES: usize = 12;
const DATA_ROWS: usize = 6;

fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("recovery-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig {
        retry: RetryConfig {
            max_retries: 2,
            backoff: std::time::Duration::ZERO,
            backoff_cap: std::time::Duration::ZERO,
        },
        ..RuntimeConfig::default()
    }
}

/// A populated engine plus the rows it stores, both derived from `seed`.
fn seeded_engine(seed: u64) -> (ResilientEngine, Vec<Vec<u8>>) {
    let cfg = ArrayConfig::paper_default()
        .with_stages(STAGES)
        .with_rows(DATA_ROWS);
    let levels = cfg.encoding.levels() as usize;
    let resilience = ResilienceConfig {
        spare_rows: 2,
        reference_rows: 2,
        ..Default::default()
    };
    let mut engine = ResilientEngine::new(cfg, resilience, runtime_config()).expect("engine");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stored = Vec::new();
    for row in 0..DATA_ROWS {
        let values: Vec<u8> = (0..STAGES)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        engine.store(row, &values).expect("store");
        stored.push(values);
    }
    (engine, stored)
}

/// A near-match query batch: one query per stored row, each one element
/// off, so best-row resolution is non-trivial but deterministic.
fn near_match_batch(stored: &[Vec<u8>]) -> BatchQuery {
    let mut batch = BatchQuery::new(STAGES);
    for values in stored {
        let mut q = values.clone();
        q[0] ^= 1;
        batch.push(&q).expect("push");
    }
    batch
}

#[test]
fn clean_checkpoint_restore_is_bit_identical() {
    let dir = scratch("clean");
    let (engine, stored) = seeded_engine(0xAB5E);
    let batch = near_match_batch(&stored);

    let store = CheckpointStore::open(&dir).expect("open");
    let mut durable = DurableEngine::new(store, engine).expect("durable");
    let before = durable.serve(&batch).expect("serve live");
    durable.checkpoint().expect("checkpoint");
    drop(durable);

    let (mut recovered, report) = DurableEngine::recover(&dir, runtime_config()).expect("recover");
    assert!(!report.corruption_detected);
    assert!(!report.fell_back);
    assert_eq!(report.ops_replayed, 0);
    let after = recovered.serve(&batch).expect("serve recovered");

    // The acceptance pin: slot-for-slot identical answers.
    assert_eq!(before.slots, after.slots);
    // The warm start revalidated through the known-answer probes and
    // promoted back to compiled-LUT serving.
    assert_eq!(recovered.engine().backend(), BackendKind::CompiledLut);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journaled_mutations_survive_a_crash() {
    let dir_crash = scratch("wal-crash");
    let dir_flush = scratch("wal-flush");
    let mutate = |durable: &mut DurableEngine| {
        durable.store(0, &[3; STAGES]).expect("store");
        durable
            .inject(1, STAGES / 2, FaultKind::StuckMismatch)
            .expect("inject");
        durable.repair_now().expect("repair");
    };

    // Reference: same mutations, properly checkpointed before "restart".
    let (engine, stored) = seeded_engine(0xC8A5);
    let store = CheckpointStore::open(&dir_flush).expect("open");
    let mut flushed = DurableEngine::new(store, engine).expect("durable");
    mutate(&mut flushed);
    flushed.checkpoint().expect("checkpoint");
    drop(flushed);

    // Crashed: identical mutations live only in the write-ahead journal.
    let (engine, _) = seeded_engine(0xC8A5);
    let store = CheckpointStore::open(&dir_crash).expect("open");
    let mut crashed = DurableEngine::new(store, engine).expect("durable");
    mutate(&mut crashed);
    drop(crashed); // no checkpoint: simulated kill

    let (mut a, report_a) = DurableEngine::recover(&dir_flush, runtime_config()).expect("flush");
    let (mut b, report_b) = DurableEngine::recover(&dir_crash, runtime_config()).expect("crash");
    assert_eq!(report_a.ops_replayed, 0);
    assert_eq!(report_b.ops_replayed, 3);
    assert_eq!(report_b.ops_skipped, 0);

    let batch = near_match_batch(&stored);
    let out_a = a.serve(&batch).expect("serve flushed");
    let out_b = b.serve(&batch).expect("serve crashed");
    assert_eq!(out_a.slots, out_b.slots);
    std::fs::remove_dir_all(&dir_crash).ok();
    std::fs::remove_dir_all(&dir_flush).ok();
}

#[test]
fn aged_array_roundtrips_decode_bit_identically() {
    let dir = scratch("aged");
    let (engine, stored) = seeded_engine(0xA6ED);
    let store = CheckpointStore::open(&dir).expect("open");
    let mut durable = DurableEngine::new(store, engine).expect("durable");

    // Age the deployment (journaled), then checkpoint the aged state.
    let mut lifetime = Lifetime::fresh();
    lifetime.cycles = 1e8;
    lifetime.seconds = 3.15e8; // ten years of retention decay
    durable.age(&lifetime).expect("age");
    durable.checkpoint().expect("checkpoint");

    let aged_rows: Vec<Vec<u8>> = (0..DATA_ROWS)
        .map(|r| {
            let phys = durable.engine().array().physical_row(r).expect("row");
            durable
                .engine()
                .array()
                .array()
                .stored(phys)
                .expect("decode")
        })
        .collect();
    let before = durable
        .serve(&near_match_batch(&stored))
        .expect("serve aged");
    drop(durable);

    let (mut recovered, _) = DurableEngine::recover(&dir, runtime_config()).expect("recover");
    for (r, expected) in aged_rows.iter().enumerate() {
        let phys = recovered.engine().array().physical_row(r).expect("row");
        let decoded = recovered
            .engine()
            .array()
            .array()
            .stored(phys)
            .expect("decode");
        assert_eq!(&decoded, expected, "aged decode of row {r} changed");
    }
    let after = recovered
        .serve(&near_match_batch(&stored))
        .expect("serve recovered");
    assert_eq!(before.slots, after.slots);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restore_invalidates_stale_compiled_snapshots() {
    let (engine, stored) = seeded_engine(0x57A1);
    let snapshot = engine.array().array().compile_snapshot();
    assert!(snapshot.is_fresh(engine.array().array()));

    let state = engine.checkpoint();
    let restored = ResilientEngine::restore(&state, runtime_config()).expect("restore");

    // The restore bumped the generation counter past the snapshot's.
    assert!(!snapshot.is_fresh(restored.array().array()));
    assert!(matches!(
        snapshot.search(restored.array().array(), &stored[0]),
        Err(TdamError::StaleCompile { .. })
    ));
}

#[test]
fn damaged_generation_is_detected_quarantined_and_skipped() {
    let dir = scratch("damage");
    let (engine, stored) = seeded_engine(0xDA4A);
    let batch = near_match_batch(&stored);
    let store = CheckpointStore::open(&dir).expect("open");
    let mut durable = DurableEngine::new(store, engine).expect("durable");
    let before = durable.serve(&batch).expect("serve");
    durable.checkpoint().expect("checkpoint 2");
    drop(durable);

    // Flip one bit in the newest checkpoint's payload.
    let newest = dir.join("ckpt-00000002.tdam");
    let mut bytes = std::fs::read(&newest).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&newest, &bytes).expect("damage");

    let (mut recovered, report) = DurableEngine::recover(&dir, runtime_config()).expect("recover");
    assert!(report.corruption_detected);
    assert!(report.fell_back);
    assert_eq!(report.generation, 1);
    assert!(dir.join("ckpt-00000002.tdam.quarantined").exists());
    // Generation 1 + its journal reproduce the same serving state.
    let after = recovered.serve(&batch).expect("serve recovered");
    assert_eq!(before.slots, after.slots);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_without_checkpoints_is_refused() {
    let dir = scratch("none");
    std::fs::create_dir_all(&dir).expect("mkdir");
    assert!(matches!(
        DurableEngine::recover(&dir, runtime_config()),
        Err(StoreError::NoCheckpoint)
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_crash_campaign_reports_zero_silent_corruptions() {
    let dir = scratch("campaign");
    let report = run_crash_chaos(&CrashChaosConfig::paper_default(), &dir).expect("campaign");
    assert!(
        report.scenarios >= 1000,
        "acceptance requires >= 1000 scenarios, got {}",
        report.scenarios
    );
    assert_eq!(report.silent_corruptions, 0, "{report:?}");
    assert_eq!(report.failed_recoveries, 0, "{report:?}");
    assert_eq!(report.false_alarms, 0, "{report:?}");
    assert!(report.detected > 0, "{report:?}");
    assert!(report.fallbacks > 0, "{report:?}");
    std::fs::remove_dir_all(&dir).ok();
}
