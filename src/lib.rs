//! Meta-crate for the FeFET time-domain associative memory workspace.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use fetdam::...`. See the crate-level docs of the
//! members for details:
//!
//! - [`fefet`] — multi-domain Preisach FeFET device model
//! - [`ckt`] — transient circuit simulator
//! - [`tdam`] — the TD-AM itself (cell, chain, array, Monte Carlo)
//! - [`baselines`] — comparison designs and GPU cost model
//! - [`hdc`] — hyperdimensional computing application layer
//! - [`num`] — numeric utilities

#![forbid(unsafe_code)]

pub use tdam;
pub use tdam_baselines as baselines;
pub use tdam_ckt as ckt;
pub use tdam_fefet as fefet;
pub use tdam_hdc as hdc;
pub use tdam_num as num;
