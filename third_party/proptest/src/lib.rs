//! Offline vendored subset of the `proptest` API.
//!
//! The hermetic build environment has no registry access, so the
//! workspace vendors the slice of proptest it uses: the `proptest!`
//! test macro with `pat in strategy` bindings, `prop_assert!` /
//! `prop_assert_eq!`, numeric-range and `any::<T>()` strategies, and
//! `prop::collection::{vec, btree_set}`.
//!
//! Differences from upstream: cases are drawn from a fixed per-test
//! seed (derived from the test name), so every run replays the same
//! inputs, and there is **no shrinking** — a failing case reports the
//! sampled inputs as-is via the panic message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};
use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, Standard};

/// Per-`proptest!` block configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` sampled inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the hermetic suite quick
        // while still exercising each property across a spread of inputs.
        Self { cases: 64 }
    }
}

/// A source of sampled values for one `pat in strategy` binding.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: Copy + PartialOrd> Strategy for Range<T>
where
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: Copy + PartialOrd> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// One unit of a string pattern: the set of characters it can produce
/// plus its repetition bounds.
#[derive(Debug, Clone)]
struct PatternAtom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the regex subset this workspace's string strategies use:
/// literal characters, `.` (printable ASCII), character classes with
/// ranges (`[a-z0-9.]`), `\\`-escapes, and the repetitions `{m}`,
/// `{m,n}`, `?`, `*`, `+` (the unbounded forms cap at 8).
fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let printable: Vec<char> = (0x20u8..=0x7E).map(char::from).collect();
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices = match c {
            '.' => printable.clone(),
            '\\' => vec![chars.next().unwrap_or('\\')],
            '[' => {
                let mut set = Vec::new();
                let mut class: Vec<char> = Vec::new();
                for c in chars.by_ref() {
                    if c == ']' {
                        break;
                    }
                    class.push(c);
                }
                let mut i = 0;
                while i < class.len() {
                    if i + 2 < class.len() && class[i + 1] == '-' {
                        let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        i += 3;
                    } else {
                        set.push(class[i]);
                        i += 1;
                    }
                }
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                set
            }
            other => vec![other],
        };
        let (min, max) = match chars.peek() {
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                let parts: Vec<&str> = spec.splitn(2, ',').collect();
                let lo: usize = parts[0].trim().parse().expect("repetition bound");
                let hi: usize = match parts.get(1) {
                    Some(s) => s.trim().parse().expect("repetition bound"),
                    None => lo,
                };
                (lo, hi)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad repetition in pattern {pattern:?}");
        atoms.push(PatternAtom { choices, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
            }
        }
        out
    }
}

/// Strategy returned by [`any`]: uniform over the whole type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Uniform strategy over every value of `T` (primitives only).
pub fn any<T: Standard>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{BTreeSet, Range, RangeInclusive, StdRng, Strategy};
    use rand::Rng;

    /// A collection size specification: a fixed length or a range of
    /// lengths (the stand-in for upstream's `SizeRange`).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi_exclusive {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi_exclusive)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                lo: len,
                hi_exclusive: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Samples vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Samples ordered sets whose elements come from `element` and whose
    /// size is uniform in `size` (best-effort: duplicate draws are
    /// retried a bounded number of times, matching upstream semantics of
    /// "up to" the requested size for narrow element domains).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 16 + 16 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Namespace alias matching `proptest::prop`, e.g.
/// `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Any, ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Stable per-test seed: FNV-1a over the test's name, so each
    /// property replays the same case sequence on every run.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Defines seeded property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))] // optional
///
///     /// Doc comments and attributes pass through.
///     #[test]
///     fn property(x in 0..10u8, v in prop::collection::vec(any::<bool>(), 1..8)) {
///         prop_assert!(v.len() < 8);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        // Like upstream proptest, generated property bodies suppress
        // style lints that the sampling rewrite makes unavoidable.
        #[allow(unused_parens, clippy::needless_range_loop)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), ::std::string::String> =
                    (|| { $body; ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(msg) = outcome {
                    ::core::panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, msg
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body, failing the sampled
/// case (with an optional formatted message) instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_and_collections(
            x in 1u8..=4,
            f in 0.0f64..1.5,
            v in prop::collection::vec(0..100u32, 1..20),
            s in prop::collection::btree_set(0..8u8, 0..5),
            b in any::<bool>(),
        ) {
            prop_assert!((1..=4).contains(&x));
            prop_assert!((0.0..1.5).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|e| *e < 100));
            prop_assert!(s.len() < 5);
            prop_assert_eq!(u8::from(b) <= 1, true);
        }
    }

    #[test]
    fn failing_property_panics_with_context() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0..10u8) {
                    prop_assert!(x > 200, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"), "missing test name: {msg}");
        assert!(msg.contains("x was"), "missing formatted detail: {msg}");
    }
}
