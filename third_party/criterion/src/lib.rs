//! Offline vendored facade over the `criterion` API surface this
//! workspace's benches use (`Criterion::bench_function`, `Bencher::iter`,
//! `black_box`, `criterion_group!`, `criterion_main!`).
//!
//! The hermetic build environment cannot fetch the real criterion, and
//! rigorous statistics are the job of the `ext_*` benchmark binaries in
//! `crates/bench` anyway (which hand-roll their own timing and archive
//! results under `results/`). This facade keeps `cargo bench` working:
//! each benchmark runs a short warm-up plus a timed window and prints a
//! mean per-iteration time, with no outlier analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Runs one benchmark body repeatedly and accumulates elapsed time.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a warm-up pass and a fixed measurement
    /// window, recording the mean per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..3 {
            black_box(routine());
        }
        let window = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < window {
            black_box(routine());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters.max(1);
    }
}

/// Registry/driver for a group of benchmarks (vendored facade).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `routine` as a named benchmark and prints its mean
    /// per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters);
        println!(
            "bench {name:<48} {per_iter:>12} ns/iter ({} iters)",
            bencher.iters
        );
        self
    }
}

/// Bundles benchmark functions into a callable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
