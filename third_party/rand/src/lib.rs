//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository is hermetic (no network, no
//! crates-io mirror), so the workspace vendors the small slice of `rand`
//! it actually uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through a
//! SplitMix64 expansion — deterministic, portable, and statistically
//! strong enough for seeded test campaigns and benchmark corpora. It is
//! **not** the upstream ChaCha12 stream, so seeded sequences differ from
//! crates-io `rand`; everything in this repository derives its
//! expectations from the generated data rather than from pinned stream
//! constants, which keeps results self-consistent under either backend.
//! It is not cryptographically secure and must not be used for secrets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it into a full seed
    /// with SplitMix64 so nearby integer seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] without extra
/// parameters (the stand-in for upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if it is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % width) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128 % width) as i128;
                (start as i128 + offset) as $t
            }
        }
    )+};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )+};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (the subset of upstream `Rng` this workspace uses).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`. Panics on an empty range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256**.
    ///
    /// Deterministic for a fixed seed, `Clone` for replay, and cheap
    /// enough to sit on every worker thread. Not cryptographically
    /// secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro's state must not be all zero; the SplitMix64
            // constant keeps the all-zero seed usable.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_replays() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        let zs: Vec<u64> = (0..32).map(|_| c.gen::<u64>()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u8);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "gen_bool(0.25) gave {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn full_width_int_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(13);
        let _ = rng.gen_range(0..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = rng.gen_range(u64::MAX - 1..u64::MAX);
    }
}
