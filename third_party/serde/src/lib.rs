//! Offline vendored serde facade.
//!
//! Exposes `Serialize`/`Deserialize` as marker traits plus (behind the
//! `derive` feature) the matching no-op derive macros, so the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compile
//! hermetically. Nothing in-tree serializes through serde — durable
//! state goes through the hand-rolled checksummed codec in `tdam::store`
//! — so the traits carry no methods.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for serde's `Serialize` trait.
pub trait Serialize {}

/// Marker stand-in for serde's `Deserialize` trait.
pub trait Deserialize<'de>: Sized {}
