//! Offline vendored no-op `Serialize`/`Deserialize` derive macros.
//!
//! This workspace decorates its model types with serde derives for
//! downstream consumers, but nothing in-tree actually serializes through
//! serde (all persistence is the hand-rolled checkpoint codec in
//! `tdam::store`). In the hermetic build environment the derives expand
//! to nothing, which keeps the annotations compiling without pulling
//! `syn`/`quote` or the real `serde_derive` from a registry.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
